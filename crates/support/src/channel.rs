//! A bounded multi-producer multi-consumer channel.
//!
//! Replaces the `crossbeam::channel::bounded` usage in the dedup pipeline:
//! both [`Sender`] and [`Receiver`] are cloneable, `recv` blocks until a
//! message arrives or every sender is gone, and `send` blocks while the
//! queue is full (failing only when every receiver is gone). Built on a
//! mutex + two condvars; the pipeline moves multi-kilobyte chunks per
//! message, so queue transfer cost is not the bottleneck.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::sync::{Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when all receivers are gone; gives the
/// unsent message back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// The sending half of a bounded channel.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half of a bounded channel.
pub struct Receiver<T>(Arc<Shared<T>>);

/// Create a bounded channel with room for `capacity` in-flight messages.
/// `capacity` is clamped to at least 1.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity: capacity.max(1),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

impl<T> Sender<T> {
    /// Number of messages currently queued (racy snapshot — by the time the
    /// caller looks at it the queue may have moved; fine for telemetry).
    pub fn len(&self) -> usize {
        self.0.queue.lock().items.len()
    }

    /// Whether the queue is empty right now (same caveat as [`Sender::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Send a message, blocking while the queue is full. Fails (returning
    /// the message) only when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.0.queue.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.items.len() < self.0.capacity {
                st.items.push_back(value);
                drop(st);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            self.0.not_full.wait(&mut st);
        }
    }
}

impl<T> Receiver<T> {
    /// Receive a message, blocking while the queue is empty. Fails only when
    /// the queue is empty *and* every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.0.queue.lock();
        loop {
            if let Some(v) = st.items.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            self.0.not_empty.wait(&mut st);
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.queue.lock().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.queue.lock().receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.0.queue.lock();
            st.senders -= 1;
            st.senders
        };
        if remaining == 0 {
            // Unblock receivers so they observe the disconnect.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.0.queue.lock();
            st.receivers -= 1;
            st.receivers
        };
        if remaining == 0 {
            self.0.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap();
    }

    #[test]
    fn mpmc_all_messages_arrive_once() {
        let (tx, rx) = bounded(8);
        let total: u64 = 1000;
        let mut senders = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            senders.push(std::thread::spawn(move || {
                for i in 0..total / 4 {
                    tx.send(t * 1_000_000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut receivers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            receivers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for s in senders {
            s.join().unwrap();
        }
        let mut all: Vec<u64> = receivers
            .into_iter()
            .flat_map(|r| r.join().unwrap())
            .collect();
        assert_eq!(all.len() as u64, total);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u64, total, "duplicate delivery");
    }
}
