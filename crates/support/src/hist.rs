//! Log-bucketed concurrent latency histograms.
//!
//! A vendored, dependency-free stand-in for `hdrhistogram`: values (in
//! nanoseconds) are binned into power-of-two octaves, each split into
//! `SUB_BUCKETS` (16) linear sub-buckets, giving a worst-case relative
//! quantile error of `1/SUB_BUCKETS` (6.25%) across the full `u64` range.
//! Recording is a single relaxed `fetch_add` on an atomic bucket counter —
//! safe to call concurrently from every worker thread on a measurement
//! path — plus relaxed updates of count/sum/max.
//!
//! This backs the `ad-stm` observability layer: commit latency, quiescence
//! wait, retry backoff, and deferred-op queue-to-completion distributions
//! (see `OBSERVABILITY.md` at the repo root).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave.
const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = 4; // log2(SUB_BUCKETS)

/// Values below `2^SUB_BITS` get exact unit buckets; everything above is
/// binned as (octave, sub-bucket).
const EXACT: usize = 1 << SUB_BITS;

/// Octaves covering `u64`: values in `[2^k, 2^(k+1))` for k in
/// `SUB_BITS..64`.
const OCTAVES: usize = 64 - SUB_BITS as usize;

/// Total bucket count.
const BUCKETS: usize = EXACT + OCTAVES * SUB_BUCKETS;

/// Map a value to its bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < EXACT as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (octave - SUB_BITS)) as usize & (SUB_BUCKETS - 1);
    EXACT + (octave - SUB_BITS) as usize * SUB_BUCKETS + sub
}

/// Inclusive lower bound of a bucket.
fn bucket_lower(i: usize) -> u64 {
    if i < EXACT {
        return i as u64;
    }
    let rel = i - EXACT;
    let octave = rel / SUB_BUCKETS + SUB_BITS as usize;
    let sub = rel % SUB_BUCKETS;
    (1u64 << octave) + ((sub as u64) << (octave - SUB_BITS as usize))
}

/// Exclusive upper bound of a bucket (saturating at `u64::MAX`).
fn bucket_upper(i: usize) -> u64 {
    if i + 1 < BUCKETS {
        bucket_lower(i + 1)
    } else {
        u64::MAX
    }
}

/// A concurrent log-bucketed histogram of `u64` samples (nanoseconds by
/// convention).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free; all orderings relaxed (the histogram
    /// is diagnostics, not synchronization).
    ///
    /// Kept to two RMWs — `record` runs per traced commit, so it is part
    /// of the tracing-on overhead budget. The sample count is derived from
    /// the buckets at snapshot time (each sample is exactly one bucket
    /// increment), and the max update short-circuits to a plain load in
    /// steady state, where most samples don't exceed the current max.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if v > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Copy the counters out into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (between benchmark phases).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (exact, not bucketed). 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples. 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Value at quantile `q` in `[0, 1]` — the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, i.e. an
    /// upper estimate with ≤ 6.25% relative error. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report beyond the observed max.
                return bucket_upper(i).saturating_sub(1).min(self.max);
            }
        }
        self.max
    }

    /// The samples recorded between `earlier` and `self` (two snapshots of
    /// the *same* histogram, `earlier` taken first): per-bucket counts,
    /// `count` and `sum` are subtracted (saturating, so a reset between the
    /// snapshots degrades to zeros rather than wrapping). `max` is not
    /// derivable from two cumulative snapshots — the reported value is the
    /// whole-run max, an upper bound for the interval.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter())
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Fold another snapshot into this one (per-runtime → aggregate).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Iterate the non-empty buckets as `(lower_inclusive, upper_exclusive,
    /// count)` — the machine-readable distribution behind the JSON export.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (bucket_lower(i), bucket_upper(i), c))
    }

    /// Render as a stable-schema JSON object:
    /// `{"count":..,"sum":..,"max":..,"mean":..,"p50":..,"p90":..,"p99":..,
    ///   "buckets":[[lo,hi,count],..]}` (non-empty buckets only).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str(&format!(
            "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
            self.count,
            self.sum,
            self.max,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        ));
        for (i, (lo, hi, c)) in self.nonzero_buckets().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("[{lo}, {hi}, {c}]"));
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for HistogramSnapshot {
    /// Human summary: `n=<count> mean=<..> p50=<..> p99=<..> max=<..>`,
    /// durations scaled to the most readable unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ns(v: u64) -> String {
            match v {
                0..=9_999 => format!("{v}ns"),
                10_000..=9_999_999 => format!("{:.1}us", v as f64 / 1e3),
                10_000_000..=9_999_999_999 => format!("{:.1}ms", v as f64 / 1e6),
                _ => format!("{:.2}s", v as f64 / 1e9),
            }
        }
        write!(
            f,
            "n={} mean={} p50={} p99={} max={}",
            self.count,
            ns(self.mean()),
            ns(self.quantile(0.5)),
            ns(self.quantile(0.99)),
            ns(self.max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_in_range() {
        let mut values: Vec<u64> = (0..64)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(i >= last, "bucket index not monotonic at {v}");
            last = i;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456_789, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
            assert!(
                v < bucket_upper(i) || bucket_upper(i) == u64::MAX,
                "upper({i}) <= {v}"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 16);
        assert_eq!(s.sum(), (0..16).sum::<u64>());
        for (lo, hi, c) in s.nonzero_buckets() {
            assert_eq!(hi - lo, 1, "sub-16 buckets must be unit-width");
            assert_eq!(c, 1);
        }
    }

    #[test]
    fn quantiles_bound_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((4_700..=5_400).contains(&p50), "p50 = {p50}");
        assert!((9_400..=10_000).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 10_000);
        assert_eq!(s.max(), 10_000);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let h = Histogram::new();
        h.record(1_000_003);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 1_000_003);
        assert_eq!(s.quantile(0.999), 1_000_003);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.nonzero_buckets().count(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1_000);
        b.record(2_000);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.count(), 3);
        assert_eq!(sa.sum(), 3_010);
        assert_eq!(sa.max(), 2_000);
    }

    #[test]
    fn reset_zeroes() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn json_has_stable_schema() {
        let h = Histogram::new();
        h.record(100);
        h.record(200);
        let j = h.snapshot().to_json();
        for key in [
            "\"count\"",
            "\"sum\"",
            "\"max\"",
            "\"mean\"",
            "\"p50\"",
            "\"p90\"",
            "\"p99\"",
            "\"buckets\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record(t * 1_000 + i % 997);
                }
            }));
        }
        for x in handles {
            x.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn delta_since_isolates_the_interval() {
        let h = Histogram::new();
        h.record(100);
        h.record(2_000);
        let warmup = h.snapshot();
        h.record(2_000);
        h.record(40_000);
        h.record(40_000);
        let total = h.snapshot();
        let steady = total.delta_since(&warmup);
        assert_eq!(steady.count(), 3);
        assert_eq!(steady.sum(), 82_000);
        // Buckets subtract too: the 100ns sample belongs to warm-up only.
        let bucket_sum: u64 = steady.nonzero_buckets().map(|(_, _, c)| c).sum();
        assert_eq!(bucket_sum, 3);
        // max is the whole-run upper bound, documented as such.
        assert_eq!(steady.max(), 40_000);
        // A reset between snapshots saturates instead of wrapping.
        h.reset();
        let after_reset = h.snapshot().delta_since(&total);
        assert_eq!(after_reset.count(), 0);
        assert_eq!(after_reset.sum(), 0);
    }

    #[test]
    fn display_scales_units() {
        let h = Histogram::new();
        h.record(5);
        let s = format!("{}", h.snapshot());
        assert!(s.contains("n=1"));
        assert!(s.contains("ns"));
        let h2 = Histogram::new();
        h2.record(50_000_000);
        assert!(format!("{}", h2.snapshot()).contains("ms"));
    }
}
