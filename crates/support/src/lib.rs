//! # ad-support — in-tree stand-ins for external dependencies
//!
//! The build environment for this workspace has no crates.io access, so
//! every external dependency must be vendored, stubbed, or replaced. This
//! crate provides the small, well-understood subsets the workspace actually
//! uses:
//!
//! * [`sync`] — `Mutex`, `RwLock`, and `Condvar` with the `parking_lot`
//!   calling convention (no poisoning, `lock()` returns the guard directly),
//!   implemented over `std::sync`.
//! * [`channel`] — a bounded MPMC channel with `crossbeam_channel`-style
//!   cloneable senders *and* receivers and disconnect semantics.
//! * [`prng`] — a seedable SplitMix64 generator replacing the small part of
//!   `rand` the corpus generator and the randomized tests need.
//! * [`crit`] — a miniature Criterion-compatible benchmark harness
//!   (`criterion_group!` / `criterion_main!`, `bench_function`,
//!   `iter`/`iter_custom`, benchmark groups) that prints per-iteration
//!   timings and can emit machine-readable JSON.
//! * [`hist`] — concurrent log-bucketed latency histograms (an
//!   `hdrhistogram` stand-in) backing the `ad-stm` observability layer.
//! * [`crc32`] — table-driven CRC-32 (IEEE), the `ad-kv` WAL record
//!   checksum (a `crc32fast` stand-in).
//! * [`model`] — a vendored loom-style concurrency model checker (token
//!   scheduler, instrumented primitives, poison registry) backing the
//!   `--cfg loom` face of [`sync`] and the `verify` model suites.
//! * [`pool`] — a bounded-queue worker pool (blocking submit, panic
//!   isolation, drain), the execution substrate for the `ad-stm` `Pool`
//!   deferred-op executor. Not built under `--cfg loom`: it spawns real OS
//!   threads, and the executor models exercise the hand-off protocol
//!   directly with model threads instead.
//! * [`tsc`] — a coarse, cheap monotonic nanosecond source (calibrated
//!   x86 `rdtsc` with an `Instant` fallback) for hot-path trace
//!   timestamps (a `quanta`-style stand-in).
//!
//! Everything except the lock internals of [`model`] and the two
//! register-read intrinsics in [`tsc`] is safe Rust with no dependencies,
//! so it can never be the thing that breaks an offline build.
//!
//! ## The `loom` cfg
//!
//! Building the workspace with `RUSTFLAGS="--cfg loom"` swaps the [`sync`]
//! primitives (including [`sync::atomic`]) from thin `std` passthroughs to
//! the instrumented [`model`] versions, so the `verify` model suites in
//! `ad-stm`/`ad-defer` can explore interleavings of the real production
//! code. Release builds without the cfg compile the facade away entirely.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod channel;
pub mod crc32;
pub mod crit;
pub mod hist;
pub mod model;
#[cfg(not(loom))]
pub mod pool;
pub mod prng;
pub mod sync;
pub mod tsc;
