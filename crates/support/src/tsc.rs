//! Coarse, cheap monotonic timestamps for hot-path tracing.
//!
//! The `ad-stm` observability layer stamps every trace event and measures
//! per-attempt latency. With `std::time::Instant` that is a `clock_gettime`
//! call per stamp (~20-25 ns via the vDSO), which on a ~200 ns transaction
//! turns tracing-on into a ~2× slowdown — the two attempt-boundary stamps
//! alone are ~40-50 ns of added work. This module provides [`now_ns`], a
//! drop-in nanosecond source backed by the x86 time-stamp counter
//! (`rdtsc`, ~6-10 ns) behind a one-time calibration against `Instant`.
//!
//! ## Accuracy contract
//!
//! These timestamps are for *tracing*, not timekeeping:
//!
//! * **Coarse**: the cycles→ns conversion uses a multiplier calibrated
//!   once over a short window (~0.1 % relative error). Absolute durations
//!   derived from trace timestamps inherit that error.
//! * **Monotone per core, near-monotone across cores**: the fast path is
//!   used only on CPUs advertising an invariant TSC (CPUID leaf
//!   `0x8000_0007`, `EDX` bit 8), where the counter runs at a constant
//!   rate across P-states and is synchronized across packages by hardware.
//!   Tiny cross-core skew can still surface; consumers ordering events
//!   across threads must use the per-thread sequence numbers, not
//!   timestamps — which the `ad-stm` trace merge already does.
//! * **Fallback**: non-x86_64 targets, model (`--cfg loom`) builds, and
//!   CPUs without an invariant TSC use `Instant` and behave exactly as
//!   before.
//!
//! [`source`] reports which backend is active so benchmarks and docs can
//! record it.

use std::time::Instant;

/// Nanoseconds of monotonic time since this module's process-local epoch
/// (first use). Cheap enough to call twice per ~200 ns transaction.
#[inline]
pub fn now_ns() -> u64 {
    imp::now_ns()
}

/// Name of the active timestamp backend: `"rdtsc"` (calibrated invariant
/// TSC fast path) or `"instant"` (the `std::time::Instant` fallback).
pub fn source() -> &'static str {
    imp::source()
}

#[cfg(all(target_arch = "x86_64", not(loom)))]
// SAFETY boundary: the only unsafe operations are `_rdtsc` and `__cpuid`,
// both side-effect-free register reads available on every x86_64 CPU
// (cpuid gates the *invariant* flag, not the instruction's existence).
#[allow(unsafe_code)]
mod imp {
    use super::*;
    use std::sync::OnceLock;

    /// Fixed-point shift for the cycles→ns multiplier. 2^24 keeps three
    /// decimal digits of the calibrated rate; the conversion multiplies in
    /// u128, so there is no overflow horizon within a process lifetime.
    const SHIFT: u32 = 24;

    /// Spin length of the calibration window. Long enough that `Instant`'s
    /// own resolution contributes ≪ 0.1 % error, short enough to be an
    /// invisible one-time cost at first use.
    const CALIBRATE_NS: u64 = 500_000;

    enum Backend {
        /// `ns = ((rdtsc - tsc0) * mult) >> SHIFT`.
        Tsc { tsc0: u64, mult: u64 },
        /// No invariant TSC: fall back to `Instant` from `epoch`.
        Instant { epoch: Instant },
    }

    static BACKEND: OnceLock<Backend> = OnceLock::new();

    /// Flattened copy of the `Tsc` backend parameters, so the hot path is
    /// two relaxed loads + `rdtsc` + one widening multiply — no `OnceLock`
    /// acquire/branch/deref. `MULT == 0` means "not (yet) on the TSC fast
    /// path": both before calibration and forever on the `Instant`
    /// fallback, where `now_ns` takes the slow path below.
    static MULT: AtomicU64 = AtomicU64::new(0);
    static TSC0: AtomicU64 = AtomicU64::new(0);

    use std::sync::atomic::{AtomicU64, Ordering};

    #[inline]
    fn rdtsc() -> u64 {
        // SAFETY: `_rdtsc` reads the time-stamp counter; no memory access,
        // no side effects, valid on all x86_64.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    fn invariant_tsc() -> bool {
        // `__cpuid` is a safe register-only query on x86_64.
        let max_ext = core::arch::x86_64::__cpuid(0x8000_0000).eax;
        if max_ext < 0x8000_0007 {
            return false;
        }
        let power = core::arch::x86_64::__cpuid(0x8000_0007);
        power.edx & (1 << 8) != 0
    }

    fn calibrate() -> Backend {
        if !invariant_tsc() {
            return Backend::Instant {
                epoch: Instant::now(),
            };
        }
        let start = Instant::now();
        let tsc0 = rdtsc();
        let mut elapsed;
        loop {
            elapsed = start.elapsed().as_nanos() as u64;
            if elapsed >= CALIBRATE_NS {
                break;
            }
            std::hint::spin_loop();
        }
        let cycles = rdtsc().wrapping_sub(tsc0);
        if cycles == 0 {
            // A TSC that did not move over 500 µs is not usable.
            return Backend::Instant {
                epoch: Instant::now(),
            };
        }
        let mult = ((elapsed as u128) << SHIFT) / cycles as u128;
        Backend::Tsc {
            tsc0,
            mult: mult as u64,
        }
    }

    #[inline]
    pub(super) fn now_ns() -> u64 {
        let mult = MULT.load(Ordering::Acquire);
        if mult != 0 {
            let cycles = rdtsc().wrapping_sub(TSC0.load(Ordering::Relaxed));
            ((cycles as u128 * mult as u128) >> SHIFT) as u64
        } else {
            now_ns_slow()
        }
    }

    /// First call (runs calibration, publishing the fast-path statics) and
    /// every call on the `Instant` fallback backend.
    #[cold]
    fn now_ns_slow() -> u64 {
        match BACKEND.get_or_init(calibrate) {
            Backend::Tsc { tsc0, mult } => {
                // Publish for the fast path: TSC0 first, then MULT with
                // release, paired with the fast path's acquire load of
                // MULT — a reader that sees the nonzero MULT also sees the
                // matching TSC0. A reader that races ahead of the release
                // sees MULT == 0 and comes back through this slow path.
                TSC0.store(*tsc0, Ordering::Relaxed);
                MULT.store(*mult, Ordering::Release);
                let cycles = rdtsc().wrapping_sub(*tsc0);
                ((cycles as u128 * *mult as u128) >> SHIFT) as u64
            }
            Backend::Instant { epoch } => epoch.elapsed().as_nanos() as u64,
        }
    }

    pub(super) fn source() -> &'static str {
        match BACKEND.get_or_init(calibrate) {
            Backend::Tsc { .. } => "rdtsc",
            Backend::Instant { .. } => "instant",
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", not(loom))))]
mod imp {
    use super::*;
    use std::sync::OnceLock;

    static EPOCH: OnceLock<Instant> = OnceLock::new();

    #[inline]
    pub(super) fn now_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    pub(super) fn source() -> &'static str {
        "instant"
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let a = now_ns();
        let mut b = now_ns();
        // Same-thread reads must never go backwards.
        assert!(b >= a, "clock went backwards: {a} -> {b}");
        for _ in 0..10_000 {
            let c = now_ns();
            assert!(c >= b);
            b = c;
        }
    }

    #[test]
    fn tracks_wall_time_coarsely() {
        let w0 = Instant::now();
        let t0 = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let dt = now_ns() - t0;
        let dw = w0.elapsed().as_nanos() as u64;
        // 25 % tolerance: sleep jitter dwarfs calibration error, and the
        // assertion only needs to catch a mis-calibrated multiplier (which
        // would be off by an integer factor, not a quarter).
        let lo = dw - dw / 4;
        let hi = dw + dw / 4;
        assert!(
            (lo..=hi).contains(&dt),
            "tsc delta {dt} ns vs wall delta {dw} ns (backend {})",
            source()
        );
    }

    #[test]
    fn source_is_stable() {
        let s = source();
        assert!(s == "rdtsc" || s == "instant");
        assert_eq!(s, source());
    }
}
