//! A miniature Criterion-compatible benchmark harness.
//!
//! The real `criterion` crate is unavailable offline, so this module
//! provides the API subset the workspace's benches use — `Criterion` with
//! `sample_size`/`measurement_time`/`warm_up_time` builders,
//! `bench_function`, benchmark groups, `Bencher::iter` / `iter_custom`, and
//! the [`criterion_group!`]/[`criterion_main!`] macros — over a simple
//! median-of-samples measurement loop.
//!
//! Output: one line per benchmark,
//! `name  time: [min median max]` (per iteration), mirroring Criterion's
//! format closely enough for eyeballs and grep. Setting the
//! `AD_BENCH_JSON` environment variable to a path additionally appends one
//! JSON object per benchmark to that file (`{"name": .., "ns_per_iter":
//! ..}`), which is how the PR-over-PR baseline tracker consumes benches.

use std::hint::black_box;
use std::time::{Duration, Instant};

pub use crate::{criterion_group, criterion_main};

/// Top-level harness state: measurement configuration plus the output sink.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Time spent warming up (and estimating iteration cost).
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Benchmark `f` under `name`.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher {
            cfg: MeasureCfg {
                sample_size: self.sample_size,
                measurement_time: self.measurement_time,
                warm_up_time: self.warm_up_time,
            },
            result: None,
        };
        f(&mut b);
        if let Some(r) = b.result {
            report(&name, &r);
        }
        self
    }

    /// Open a named group; benchmark names are prefixed `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` under `prefix/name`.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.into());
        self.c.bench_function(full, f);
        self
    }

    /// Finish the group (report flushing is immediate, so this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

#[derive(Clone, Copy)]
struct MeasureCfg {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

struct MeasureResult {
    min_ns: f64,
    median_ns: f64,
    max_ns: f64,
}

/// Passed to the benchmark closure; drives the measurement loop.
pub struct Bencher {
    cfg: MeasureCfg,
    result: Option<MeasureResult>,
}

impl Bencher {
    /// Measure `f` per call. The return value is passed through
    /// [`black_box`] so the computation cannot be optimized away.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        self.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed()
        });
    }

    /// Measure with a caller-controlled timing loop: `f` receives an
    /// iteration count and returns the elapsed time for that many
    /// iterations.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        // Warm-up doubles as iteration-cost estimation.
        let mut iters = 1u64;
        let mut est_per_iter;
        let warm_start = Instant::now();
        loop {
            let t = f(iters);
            est_per_iter = t
                .checked_div(iters as u32)
                .unwrap_or(Duration::from_nanos(1));
            if warm_start.elapsed() >= self.cfg.warm_up_time {
                break;
            }
            iters = (iters * 2).min(1 << 24);
        }

        let per_sample = self.cfg.measurement_time.as_nanos() as u64 / self.cfg.sample_size as u64;
        let sample_iters = (per_sample / est_per_iter.as_nanos().max(1) as u64).clamp(1, 1 << 28);

        let mut samples: Vec<f64> = Vec::with_capacity(self.cfg.sample_size);
        for _ in 0..self.cfg.sample_size {
            let t = f(sample_iters);
            samples.push(t.as_nanos() as f64 / sample_iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(MeasureResult {
            min_ns: samples[0],
            median_ns: samples[samples.len() / 2],
            max_ns: samples[samples.len() - 1],
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, r: &MeasureResult) {
    println!(
        "{name:<44} time: [{} {} {}]",
        fmt_ns(r.min_ns),
        fmt_ns(r.median_ns),
        fmt_ns(r.max_ns)
    );
    if let Ok(path) = std::env::var("AD_BENCH_JSON") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"name\":\"{}\",\"ns_per_iter\":{:.2},\"ns_min\":{:.2},\"ns_max\":{:.2}}}",
                name.replace('"', "'"),
                r.median_ns,
                r.min_ns,
                r.max_ns
            );
        }
    }
}

/// Mirror of `criterion::criterion_group!`: bundles target functions into a
/// single runner function with a shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::crit::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion::criterion_main!`: emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_a_result() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        c.bench_function("selftest/add", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("selftest");
        g.bench_function("sub", |b| b.iter(|| 2u64 - 1));
        g.finish();
    }

    #[test]
    fn iter_custom_is_supported() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("selftest/custom", |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for i in 0..iters {
                    black_box(i);
                }
                start.elapsed()
            })
        });
    }
}
