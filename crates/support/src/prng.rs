//! A small seedable PRNG (SplitMix64) for corpus generation and randomized
//! tests.
//!
//! Replaces the subset of `rand` the workspace used: seed-from-u64
//! construction, uniform integer ranges, booleans with a given probability,
//! and raw words. SplitMix64 passes BigCrush, is 3 instructions per word,
//! and — critically for reproducible corpora and tests — is fully
//! deterministic for a given seed on every platform.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit word.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform `usize` in `[range.start, range.end)`. Panics on an empty
    /// range. Uses Lemire-style multiply-shift rejection-free mapping; the
    /// modulo bias is < 2^-32 for the range sizes used here, which is
    /// irrelevant for test-input generation.
    pub fn random_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (((self.next_u64() as u128 * span as u128) >> 64) as u64) as usize
    }

    /// Uniform `i64` in `[range.start, range.end)`.
    pub fn random_range_i64(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start + (((self.next_u64() as u128 * span as u128) >> 64) as u64) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w = r.random_range_i64(-50..50);
            assert!((-50..50).contains(&w));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = Rng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn extreme_bool_probabilities() {
        let mut r = Rng::seed_from_u64(4);
        assert!(!(0..1000).any(|_| r.random_bool(0.0)));
        assert!((0..1000).all(|_| r.random_bool(1.0)));
    }
}
