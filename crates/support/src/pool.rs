//! A small bounded-queue worker pool.
//!
//! This is the execution substrate for the `ad-stm` `Pool` deferred-op
//! executor: the committing thread hands a post-commit batch to the pool and
//! returns immediately; a worker runs the batch (and releases its `TxLock`s
//! on completion — the two-phase-locking shrinking phase happens on the
//! worker, which is safe because 2PL cares about *who holds which locks*,
//! never about which OS thread executes the critical work).
//!
//! Design points:
//!
//! * **Bounded queue with two submit flavors.** [`Pool::submit`] blocks
//!   while the queue is full; [`Pool::try_submit`] hands the job back
//!   instead. Either way the backpressure is load-bearing: a committer
//!   that produces deferred work faster than the workers can retire it
//!   degrades gracefully toward inline execution cost instead of queueing
//!   unbounded memory (and unbounded lock-hold time).
//! * **Panic isolation.** A panicking job is caught with `catch_unwind`,
//!   counted, and the worker keeps serving. Callers that need lock-release
//!   on panic must arrange it *inside* the job (`ad-defer` does).
//! * **Self-drop safety.** The pool may be dropped *from one of its own
//!   workers* (the last `Runtime` handle can die inside a queued job). Drop
//!   joins every worker except the current thread, which is detached —
//!   joining yourself would deadlock.
//! * **Autoscaling (optional).** [`Pool::with_limits`] bounds the worker
//!   count to `[min, max]` instead of fixing it: a submit that finds jobs
//!   queued and every worker busy spawns one more worker (queue-depth
//!   feedback — the same signal `defer_queue_wait_ns` integrates over
//!   time), and a worker idle past the configured timeout with the queue
//!   empty retires itself down to `min`. [`Pool::new`] is the degenerate
//!   `min == max` pool, which never scales and never takes a timed wait.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::sync::{Condvar, Mutex};

thread_local! {
    /// Identity of the pool this thread serves as a worker (the `Shared`
    /// allocation's address), or 0 for threads that are not pool workers.
    /// Set once at worker startup, before the first job runs; a thread
    /// serves at most one pool for its whole life, so no save/restore.
    static WORKER_OF: Cell<usize> = const { Cell::new(0) };
}

/// A unit of work. Jobs must be `Send` (they hop to a worker thread) and
/// `'static` (the pool outlives any borrow the submitter could prove).
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    queue: VecDeque<Job>,
    /// Jobs submitted but not yet completed (queued + running).
    pending: usize,
    shutdown: bool,
    /// Worker threads currently alive (spawned and not yet retired).
    live: usize,
    /// Workers parked in `work.wait` right now. Scale-up triggers when a
    /// submit leaves jobs queued with nobody parked — every live worker is
    /// mid-job, so depth can only shrink by growing the pool.
    idle_workers: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: queue non-empty or shutdown.
    work: Condvar,
    /// Signals submitters: queue has room.
    room: Condvar,
    /// Signals drainers: pending hit zero.
    idle: Condvar,
    capacity: usize,
    /// Worker-count floor: scale-down never retires below this.
    min_workers: usize,
    /// Worker-count ceiling: scale-up never spawns above this.
    max_workers: usize,
    /// How long a surplus worker (live > min) idles before retiring.
    /// Irrelevant when `min == max` — fixed pools use untimed waits.
    idle_timeout: Duration,
    panics: AtomicU64,
}

impl Shared {
    fn autoscales(&self) -> bool {
        self.min_workers != self.max_workers
    }
}

/// A worker pool over a bounded FIFO job queue. Fixed-size via
/// [`Pool::new`], or autoscaling within `[min, max]` via
/// [`Pool::with_limits`].
pub struct Pool {
    shared: Arc<Shared>,
    /// Join handles of every worker ever spawned (retired ones join
    /// instantly at drop). Guarded: autoscale submits push new handles
    /// through `&self`.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Spawn `workers` threads (clamped to at least 1) serving a queue with
    /// room for `queue_cap` waiting jobs (clamped to at least 1). The
    /// worker count stays fixed for the pool's lifetime.
    pub fn new(workers: usize, queue_cap: usize) -> Pool {
        let n = workers.max(1);
        Pool::with_limits(n, n, queue_cap, Duration::from_millis(100))
    }

    /// Spawn an autoscaling pool: `min_workers` (clamped to at least 1)
    /// start immediately; saturation — a submit that leaves jobs queued
    /// while every live worker is busy — grows the pool one worker at a
    /// time up to `max_workers`; a worker idle for `idle_timeout` with an
    /// empty queue retires itself back down to `min_workers`.
    pub fn with_limits(
        min_workers: usize,
        max_workers: usize,
        queue_cap: usize,
        idle_timeout: Duration,
    ) -> Pool {
        let min = min_workers.max(1);
        let max = max_workers.max(min);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                pending: 0,
                shutdown: false,
                live: min,
                idle_workers: 0,
            }),
            work: Condvar::new(),
            room: Condvar::new(),
            idle: Condvar::new(),
            capacity: queue_cap.max(1),
            min_workers: min,
            max_workers: max,
            idle_timeout,
            panics: AtomicU64::new(0),
        });
        let workers = (0..min)
            .map(|i| spawn_worker(&shared, i))
            .collect::<Vec<_>>();
        Pool {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Scale-up check, called after a job lands in the queue: if queued
    /// jobs outnumber the workers parked to receive them, some job will
    /// sit until a busy worker finishes — spawn one more (up to the
    /// ceiling). `st` is the state lock, still held; `live` is bumped
    /// under it so concurrent submits cannot overshoot `max_workers`.
    fn maybe_grow(&self, st: &mut crate::sync::MutexGuard<'_, State>) {
        if !self.shared.autoscales()
            || st.queue.len() <= st.idle_workers
            || st.live >= self.shared.max_workers
        {
            return;
        }
        st.live += 1;
        let id = st.live - 1;
        let handle = spawn_worker(&self.shared, id);
        self.workers.lock().push(handle);
    }

    /// Queue a job, blocking while the queue is at capacity. Returns the
    /// queue depth *before* this job was added (telemetry for the
    /// `DeferOffload` trace event).
    pub fn submit(&self, job: Job) -> usize {
        let mut st = self.shared.state.lock();
        while st.queue.len() >= self.shared.capacity {
            self.shared.room.wait(&mut st);
        }
        let depth = st.queue.len();
        st.queue.push_back(job);
        st.pending += 1;
        self.maybe_grow(&mut st);
        drop(st);
        self.shared.work.notify_one();
        depth
    }

    /// Queue a job without blocking. If the queue is at capacity the job is
    /// handed back in `Err`, so the caller can degrade to running it inline
    /// instead of stalling (the `ad-stm` commit path does exactly that —
    /// a full queue means the workers are saturated, and blocking the
    /// committing thread would only add queue-wait latency on top of the
    /// work it could already be doing itself). On success, returns the
    /// queue depth *before* this job was added, as [`Pool::submit`] does.
    pub fn try_submit(&self, job: Job) -> Result<usize, Job> {
        let mut st = self.shared.state.lock();
        if st.queue.len() >= self.shared.capacity {
            return Err(job);
        }
        let depth = st.queue.len();
        st.queue.push_back(job);
        st.pending += 1;
        self.maybe_grow(&mut st);
        drop(st);
        self.shared.work.notify_one();
        Ok(depth)
    }

    /// Number of jobs waiting in the queue right now (racy snapshot).
    pub fn queue_len(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// Jobs submitted but not yet completed (queued + currently running).
    pub fn pending(&self) -> usize {
        self.shared.state.lock().pending
    }

    /// Block until every job submitted so far has completed. New jobs may be
    /// submitted concurrently; this returns at a moment when `pending == 0`.
    pub fn drain(&self) {
        let mut st = self.shared.state.lock();
        while st.pending > 0 {
            self.shared.idle.wait(&mut st);
        }
    }

    /// Number of jobs that panicked (the panic is caught, counted, and the
    /// worker keeps serving).
    pub fn panic_count(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Number of live worker threads right now (racy snapshot; varies
    /// between the configured min and max on an autoscaling pool).
    pub fn worker_count(&self) -> usize {
        self.shared.state.lock().live
    }

    /// The configured worker-count floor (equals the ceiling on a fixed
    /// pool).
    pub fn min_workers(&self) -> usize {
        self.shared.min_workers
    }

    /// The configured worker-count ceiling.
    pub fn max_workers(&self) -> usize {
        self.shared.max_workers
    }

    /// Is the calling thread one of *this* pool's workers — i.e. is it
    /// currently inside a job this pool dispatched? The question matters
    /// because a worker that blocks waiting for another job of the same
    /// pool can deadlock when no other worker is free to run it (the
    /// single-worker self-wait of DESIGN.md §10); `ad-stm` uses this to
    /// detect that hazard at the wait site.
    pub fn current_thread_is_worker(&self) -> bool {
        WORKER_OF.get() == Arc::as_ptr(&self.shared) as usize
    }

    /// Would the calling thread deadlock by blocking until some *other*
    /// queued job of this pool completes? True exactly when the caller is
    /// this pool's sole *live* worker: whatever it waits for sits behind
    /// the job it is running and can never be dispatched. (Scale-up cannot
    /// rescue the wait — growth triggers on submit, and the waited-on job
    /// is already queued.)
    pub fn wait_would_self_deadlock(&self) -> bool {
        self.current_thread_is_worker() && self.shared.state.lock().live == 1
    }

    /// Is the calling thread a worker of *any* pool (not necessarily this
    /// one)? The cross-runtime cousin of
    /// [`Pool::current_thread_is_worker`]: a worker of runtime A's pool
    /// blocking on runtime B's deferred work ties up a thread B may itself
    /// be waiting on — `ad-stm` reports it as the remote-wait hazard.
    pub fn current_thread_is_any_worker() -> bool {
        WORKER_OF.get() != 0
    }

    /// Drive an accept loop on the calling thread: pull items from `next`
    /// until it returns `None`, handing each to `handle` on a pool worker.
    ///
    /// This is the `ad-net` server's front door — `next` is a blocking
    /// `TcpListener::accept` wrapper, `handle` owns one connection until it
    /// closes — but the shape is generic: any producer whose items each
    /// need a worker's undivided attention. Submission uses the blocking
    /// [`Pool::submit`], so a saturated pool (every worker busy, queue
    /// full) pushes back on the *accept* side: new items wait in the
    /// kernel's backlog instead of piling up as unbounded queued jobs.
    /// Returns once `next` yields `None` — queued items still complete
    /// (drain or drop the pool to wait for them).
    pub fn accept_loop<T, N, H>(&self, mut next: N, handle: H)
    where
        T: Send + 'static,
        N: FnMut() -> Option<T>,
        H: Fn(T) + Send + Sync + 'static,
    {
        let handle = Arc::new(handle);
        while let Some(item) = next() {
            let handle = Arc::clone(&handle);
            self.submit(Box::new(move || handle(item)));
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>, id: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("ad-defer-pool-{id}"))
        .spawn(move || worker_loop(&shared))
        .expect("spawning pool worker")
}

fn worker_loop(shared: &Arc<Shared>) {
    WORKER_OF.set(Arc::as_ptr(shared) as usize);
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    st.live -= 1;
                    return;
                }
                st.idle_workers += 1;
                // Fixed pools wait untimed; surplus workers of an
                // autoscaling pool retire after idling out. The timed wait
                // is cfg-gated: the loom facade has no real clock (the
                // pool is never exercised under the model checker anyway —
                // it spawns OS threads).
                #[cfg(not(loom))]
                let timed_out = if shared.autoscales() {
                    shared.work.wait_timeout(&mut st, shared.idle_timeout)
                } else {
                    shared.work.wait(&mut st);
                    false
                };
                #[cfg(loom)]
                let timed_out = {
                    shared.work.wait(&mut st);
                    false
                };
                st.idle_workers -= 1;
                if timed_out && st.queue.is_empty() && !st.shutdown && st.live > shared.min_workers
                {
                    st.live -= 1;
                    return;
                }
            }
        };
        // A slot opened up; wake one blocked submitter.
        shared.room.notify_one();
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        let mut st = shared.state.lock();
        st.pending -= 1;
        let idle = st.pending == 0;
        drop(st);
        if idle {
            shared.idle.notify_all();
        }
    }
}

impl Drop for Pool {
    /// Shut down after draining: workers finish every queued job, then exit.
    /// Joins every worker except the current thread — the pool can be
    /// dropped from inside one of its own jobs (the job held the last
    /// `Runtime` handle), and a thread cannot join itself.
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        let me = std::thread::current().id();
        for h in self.workers.get_mut().drain(..) {
            if h.thread().id() != me {
                let _ = h.join();
            }
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.worker_count())
            .field("capacity", &self.shared.capacity)
            .field("queue_len", &self.queue_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_every_job() {
        let pool = Pool::new(4, 8);
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let n = Arc::clone(&n);
            pool.submit(Box::new(move || {
                n.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.drain();
        assert_eq!(n.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn bounded_submit_blocks_then_completes() {
        let pool = Pool::new(1, 1);
        let n = Arc::new(AtomicUsize::new(0));
        // First job occupies the worker; second fills the queue; third must
        // block in submit until the worker frees a slot.
        for _ in 0..3 {
            let n = Arc::clone(&n);
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(5));
                n.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.drain();
        assert_eq!(n.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn try_submit_returns_job_when_queue_is_full() {
        let pool = Pool::new(1, 1);
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        // Park the only worker so the queue cannot drain, and wait until it
        // has actually dequeued this job (otherwise it still occupies the
        // queue slot the next submit expects to find free).
        pool.submit(Box::new(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        }));
        started_rx.recv().unwrap();
        // Fill the one queue slot.
        let queued = Arc::new(AtomicUsize::new(0));
        let q2 = Arc::clone(&queued);
        let depth = pool
            .try_submit(Box::new(move || {
                q2.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap_or_else(|_| panic!("one slot free"));
        assert_eq!(depth, 0);
        // Queue now full: the job must come back intact, not run or drop.
        let inline = Arc::new(AtomicUsize::new(0));
        let i2 = Arc::clone(&inline);
        let rejected = match pool.try_submit(Box::new(move || {
            i2.fetch_add(1, Ordering::Relaxed);
        })) {
            Err(job) => job,
            Ok(_) => panic!("queue should be full"),
        };
        assert_eq!(inline.load(Ordering::Relaxed), 0);
        // The caller degrades to running it inline.
        rejected();
        assert_eq!(inline.load(Ordering::Relaxed), 1);
        gate_tx.send(()).unwrap();
        pool.drain();
        assert_eq!(queued.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_job_is_counted_and_worker_survives() {
        let pool = Pool::new(1, 4);
        pool.submit(Box::new(|| panic!("job goes boom")));
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        pool.submit(Box::new(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        }));
        pool.drain();
        assert_eq!(pool.panic_count(), 1);
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let n = Arc::new(AtomicUsize::new(0));
        {
            let pool = Pool::new(2, 16);
            for _ in 0..32 {
                let n = Arc::clone(&n);
                pool.submit(Box::new(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                }));
            }
        }
        assert_eq!(n.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn drop_from_inside_a_job_does_not_deadlock() {
        let pool = Arc::new(Pool::new(2, 4));
        let (tx, rx) = std::sync::mpsc::channel();
        let p2 = Arc::clone(&pool);
        pool.submit(Box::new(move || {
            // This job owns the last other handle; dropping it here makes
            // the worker run Pool::drop, which must skip joining itself.
            drop(p2);
            tx.send(()).unwrap();
        }));
        drop(pool);
        rx.recv_timeout(Duration::from_secs(10)).unwrap();
    }

    #[test]
    fn accept_loop_dispatches_every_item_then_returns() {
        let pool = Pool::new(2, 4);
        let done = Arc::new(AtomicUsize::new(0));
        let mut remaining = 25;
        let d2 = Arc::clone(&done);
        pool.accept_loop(
            move || {
                if remaining == 0 {
                    None
                } else {
                    remaining -= 1;
                    Some(remaining)
                }
            },
            move |_item: usize| {
                d2.fetch_add(1, Ordering::Relaxed);
            },
        );
        // accept_loop returned once the producer dried up; the items it
        // dispatched may still be in flight until the pool drains.
        pool.drain();
        assert_eq!(done.load(Ordering::Relaxed), 25);
    }

    #[test]
    fn worker_marker_identifies_its_own_pool_only() {
        let pool = Arc::new(Pool::new(1, 4));
        let other = Pool::new(1, 4);
        // The submitting thread is nobody's worker.
        assert!(!pool.current_thread_is_worker());
        assert!(!pool.wait_would_self_deadlock());
        let (tx, rx) = std::sync::mpsc::channel();
        let p2 = Arc::clone(&pool);
        pool.submit(Box::new(move || {
            tx.send(p2.current_thread_is_worker() && p2.wait_would_self_deadlock())
                .unwrap();
        }));
        assert!(rx.recv_timeout(Duration::from_secs(10)).unwrap());
        // A worker of one pool is not a worker of another.
        let (tx, rx) = std::sync::mpsc::channel();
        other.submit(Box::new({
            let p2 = Arc::clone(&pool);
            move || tx.send(p2.current_thread_is_worker()).unwrap()
        }));
        assert!(!rx.recv_timeout(Duration::from_secs(10)).unwrap());
    }

    #[test]
    fn multi_worker_pool_is_not_a_self_wait_hazard() {
        let pool = Arc::new(Pool::new(2, 4));
        let (tx, rx) = std::sync::mpsc::channel();
        let p2 = Arc::clone(&pool);
        pool.submit(Box::new(move || {
            tx.send((p2.current_thread_is_worker(), p2.wait_would_self_deadlock()))
                .unwrap();
        }));
        let (is_worker, hazard) = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(is_worker);
        assert!(!hazard, "a second worker can still serve the queue");
    }

    #[test]
    fn autoscale_grows_under_saturated_queue() {
        // min=1, max=4. Park every worker on a gate; each further submit
        // finds jobs queued and nobody idle, so the pool must grow one
        // worker at a time until it pins at max.
        let pool = Pool::with_limits(1, 4, 64, Duration::from_secs(3600));
        assert_eq!(pool.worker_count(), 1);
        assert_eq!(pool.min_workers(), 1);
        assert_eq!(pool.max_workers(), 4);
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        // 8 gated jobs: enough to saturate 4 workers twice over.
        for _ in 0..8 {
            let gate_rx = Arc::clone(&gate_rx);
            pool.submit(Box::new(move || {
                let g = gate_rx.lock();
                g.recv().unwrap();
            }));
        }
        // Growth happens synchronously inside submit, so the count is
        // already pinned at the ceiling.
        assert_eq!(pool.worker_count(), 4, "saturated queue must scale to max");
        for _ in 0..8 {
            gate_tx.send(()).unwrap();
        }
        pool.drain();
        assert_eq!(pool.worker_count(), 4, "no retirement before idle timeout");
    }

    #[test]
    fn autoscale_shrinks_back_to_min_at_idle() {
        let pool = Pool::with_limits(1, 4, 64, Duration::from_millis(10));
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        for _ in 0..6 {
            let gate_rx = Arc::clone(&gate_rx);
            pool.submit(Box::new(move || {
                let g = gate_rx.lock();
                g.recv().unwrap();
            }));
        }
        assert_eq!(pool.worker_count(), 4);
        for _ in 0..6 {
            gate_tx.send(()).unwrap();
        }
        pool.drain();
        // Surplus workers idle out; poll until the pool is back at min.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.worker_count() > 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "pool stuck at {} workers",
                pool.worker_count()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.worker_count(), 1, "idle pool must shrink to min");
        // The shrunken pool still serves jobs.
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        pool.submit(Box::new(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        }));
        pool.drain();
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fixed_pool_never_scales() {
        let pool = Pool::new(2, 8);
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        for _ in 0..6 {
            let gate_rx = Arc::clone(&gate_rx);
            pool.submit(Box::new(move || {
                let g = gate_rx.lock();
                g.recv().unwrap();
            }));
        }
        assert_eq!(pool.worker_count(), 2, "Pool::new is min == max");
        for _ in 0..6 {
            gate_tx.send(()).unwrap();
        }
        pool.drain();
        assert_eq!(pool.worker_count(), 2);
    }

    #[test]
    fn any_worker_marker_sees_workers_of_every_pool() {
        let pool = Pool::new(1, 4);
        assert!(!Pool::current_thread_is_any_worker());
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit(Box::new(move || {
            tx.send(Pool::current_thread_is_any_worker()).unwrap();
        }));
        assert!(rx.recv_timeout(Duration::from_secs(10)).unwrap());
    }

    #[test]
    fn fifo_order_single_worker() {
        let pool = Pool::new(1, 64);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..20 {
            let order = Arc::clone(&order);
            pool.submit(Box::new(move || {
                order.lock().push(i);
            }));
        }
        pool.drain();
        assert_eq!(*order.lock(), (0..20).collect::<Vec<_>>());
    }
}
