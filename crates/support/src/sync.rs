//! `parking_lot`-flavoured synchronization primitives over `std::sync`,
//! plus the [`atomic`] facade — with a `--cfg loom` face for model checking.
//!
//! The workspace was written against `parking_lot`'s API: `lock()` returns
//! the guard directly (no `Result`), and `Condvar::wait` takes `&mut
//! MutexGuard`. With no registry access, we provide the same calling
//! convention over the standard library. Poisoning is deliberately ignored
//! (`parking_lot` has none): a panic while holding a lock propagates to the
//! panicking thread, and other threads simply continue with the data as the
//! panicking thread left it — exactly the semantics the callers were
//! written for.
//!
//! ## The facade contract
//!
//! Concurrency-critical code in `ad-stm`/`ad-defer` must reach atomics and
//! locks through this module (`ad_support::sync::{atomic, Mutex, RwLock,
//! Condvar}`), never `std::sync` directly — `ad-lint`'s `raw-atomic` rule
//! enforces this for `crates/stm`. In a normal build everything here is a
//! zero-cost re-export/thin wrapper of `std`; under `RUSTFLAGS="--cfg
//! loom"` the same paths resolve to the instrumented [`crate::model`]
//! primitives, so the `verify` model suites explore interleavings of the
//! *production* code, not a copy of it.

/// Atomic types and fences for concurrency-critical code.
///
/// Normal builds: a verbatim re-export of [`std::sync::atomic`] — the
/// facade compiles away completely. `--cfg loom` builds: the instrumented
/// [`crate::model::atomic`] types, where every operation is a scheduling
/// point executed at `SeqCst` (the model explores sequentially consistent
/// interleavings; see the [`crate::model`] docs for the precise guarantee).
#[cfg(not(loom))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

#[cfg(loom)]
pub use crate::model::atomic;

#[cfg(loom)]
pub use crate::model::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(not(loom))]
pub use std_impl::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(loom))]
mod std_impl {
    use std::ops::{Deref, DerefMut};
    use std::sync;

    /// Recover the guard from a poisoned lock: parking_lot-style "ignore
    /// poisoning" semantics.
    fn unpoison<G>(r: Result<G, sync::PoisonError<G>>) -> G {
        r.unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// A mutual-exclusion lock with `parking_lot`'s calling convention.
    pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

    /// RAII guard for [`Mutex`]. The `Option` dance exists so
    /// [`Condvar::wait`] can temporarily take ownership of the inner std guard
    /// in safe code; it is always `Some` outside that window.
    pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

    impl<T> Mutex<T> {
        /// Create a new mutex.
        pub const fn new(value: T) -> Self {
            Mutex(sync::Mutex::new(value))
        }

        /// Consume the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            unpoison(self.0.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire the lock, blocking until available.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard(Some(unpoison(self.0.lock())))
        }

        /// Try to acquire the lock without blocking.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match self.0.try_lock() {
                Ok(g) => Some(MutexGuard(Some(g))),
                Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
                Err(sync::TryLockError::WouldBlock) => None,
            }
        }

        /// Mutable access without locking (requires exclusive ownership).
        pub fn get_mut(&mut self) -> &mut T {
            unpoison(self.0.get_mut())
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.0.fmt(f)
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.0.as_deref().expect("guard taken during condvar wait")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.0
                .as_deref_mut()
                .expect("guard taken during condvar wait")
        }
    }

    /// A reader-writer lock with `parking_lot`'s calling convention.
    pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

    /// Shared-access RAII guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
    /// Exclusive-access RAII guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

    impl<T> RwLock<T> {
        /// Create a new reader-writer lock.
        pub const fn new(value: T) -> Self {
            RwLock(sync::RwLock::new(value))
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquire shared access.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            RwLockReadGuard(unpoison(self.0.read()))
        }

        /// Acquire exclusive access.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            RwLockWriteGuard(unpoison(self.0.write()))
        }

        /// Try to acquire shared access without blocking.
        pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
            match self.0.try_read() {
                Ok(g) => Some(RwLockReadGuard(g)),
                Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
                Err(sync::TryLockError::WouldBlock) => None,
            }
        }

        /// Try to acquire exclusive access without blocking.
        pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
            match self.0.try_write() {
                Ok(g) => Some(RwLockWriteGuard(g)),
                Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
                Err(sync::TryLockError::WouldBlock) => None,
            }
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    /// A condition variable usable with [`MutexGuard`], `parking_lot`-style:
    /// `wait` takes `&mut MutexGuard` and re-acquires the lock before returning.
    #[derive(Default)]
    pub struct Condvar(sync::Condvar);

    impl Condvar {
        /// Create a new condition variable.
        pub const fn new() -> Self {
            Condvar(sync::Condvar::new())
        }

        /// Atomically release the guarded mutex and wait for a notification;
        /// the lock is re-acquired before returning. Spurious wakeups are
        /// possible, as with any condvar — callers loop on their predicate.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            let inner = guard.0.take().expect("guard already taken");
            guard.0 = Some(unpoison(self.0.wait(inner)));
        }

        /// Like [`Condvar::wait`], but give up after `timeout`. Returns
        /// `true` when the wait timed out (the lock is re-acquired either
        /// way). Not available under `--cfg loom` — the model clock has no
        /// real time, so timed-wait call sites must be `cfg`-gated (the
        /// pool's idle scale-down is).
        pub fn wait_timeout<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            timeout: std::time::Duration,
        ) -> bool {
            let inner = guard.0.take().expect("guard already taken");
            let (inner, res) = match self.0.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r),
                Err(p) => {
                    let (g, r) = p.into_inner();
                    (g, r)
                }
            };
            guard.0 = Some(inner);
            res.timed_out()
        }

        /// Wake one waiting thread.
        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        /// Wake all waiting threads.
        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *p2.0.lock() = true;
            p2.1.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        h.join().unwrap();
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn atomic_facade_is_std() {
        // In a non-loom build the facade types must *be* the std types
        // (zero-cost passthrough): an `atomic::AtomicU64` coerces to
        // `&std::sync::atomic::AtomicU64` with no conversion.
        let a = atomic::AtomicU64::new(3);
        let r: &std::sync::atomic::AtomicU64 = &a;
        assert_eq!(r.load(std::sync::atomic::Ordering::SeqCst), 3);
        atomic::fence(atomic::Ordering::SeqCst);
    }
}
