//! A miniature loom-style concurrency model checker.
//!
//! This build is offline (no registry access), so instead of depending on
//! the real `loom` crate the workspace vendors the subset it needs: a
//! controlled scheduler that explores many interleavings of a small
//! concurrent scenario, deterministically per seed, with every shared-memory
//! operation routed through instrumented primitives.
//!
//! ## How it works
//!
//! A *model* is a closure that registers a handful of threads via
//! [`Exec::spawn`]. [`check`] runs the scenario once per seed: the spawned
//! threads execute on real OS threads, but a token scheduler allows exactly
//! **one** of them to run at a time, and every instrumented operation (an
//! atomic access through [`atomic`], a lock acquisition through [`sync`], an
//! explicit [`yield_point`]) is a *scheduling point* where the scheduler may
//! preempt the running thread and hand the token to another, chosen by a
//! seeded PRNG. Assertions in the scenario (and the poison registry below)
//! turn a bad interleaving into a panic, which the scheduler catches and
//! reports together with the seed that produced it, so the failure replays
//! deterministically.
//!
//! ## Semantics: sequential consistency, explored exhaustively-ish
//!
//! Because only one thread runs between scheduling points, every explored
//! execution is sequentially consistent. The checker therefore finds
//! *ordering-of-operations* bugs — operations performed in the wrong program
//! order, too-early frees, broken protocols, lost wakeups — across thousands
//! of interleavings per model, including the exact shape of the PR-1
//! stale-retirement-tag bug (see `ad-stm`'s `verify` module). What it cannot
//! find is behaviour that *only* exists under relaxed hardware memory
//! orders with the program order intact; that residual class is covered by
//! the Miri and ThreadSanitizer CI lanes and by the documented fence
//! discipline in `snapshot.rs` (VERIFICATION.md discusses the split).
//!
//! Exploration is randomized (seed-swept), not DPOR-exhaustive. Each seed
//! draws one of two schedule strategies (see `Strategy`): a uniform random
//! walk, which excels at shallow races, and a PCT-style priority schedule
//! with seed-chosen demotion points, which reaches deep phase-ordered
//! interleavings (thread A pauses at one exact instruction while B and C
//! each run long phases) that a random walk essentially never finds. For
//! the small bounds used by the `verify` models (2–4 threads, tens of
//! scheduling points) a few thousand seeds reliably reach the interesting
//! interleavings, and every regression model in the tree is required by test
//! to actually catch its bug (`model_catches_*` tests), so the models cannot
//! rot into always-green.
//!
//! ## Use-after-free detection
//!
//! Reclamation code under test registers freed addresses in a process-wide
//! *poison registry* instead of really freeing them (the memory is leaked
//! for the duration of the run — models are tiny). Readers assert
//! [`assert_not_poisoned`] before dereferencing; a pointer freed under a
//! still-active reader panics with a diagnostic instead of scribbling on
//! freed memory.

// The only unsafe in this crate: the model Mutex/RwLock hand out references
// to `UnsafeCell` contents under their own exclusion protocol (audited in
// the `sync` module below).
#![allow(unsafe_code)]

use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Payload type used to unwind threads out of a failed execution: once one
/// thread has reported a violation, every other thread's next scheduling
/// point throws this so the execution drains quickly instead of running to
/// completion under a meaningless schedule.
struct ModelAbort;

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    /// Not started yet or ready to run.
    Runnable,
    /// Returned (or unwound) from its closure.
    Finished,
}

/// How the scheduler picks the next thread at a scheduling point. Each
/// execution draws one strategy from its seed, so a seed sweep explores
/// both shallow races and deep phase-ordered interleavings:
///
/// * `Uniform` — a random walk: keep the token with probability 1/2, else
///   hand it to a uniformly chosen other runnable thread. Excellent at
///   local races (adjacent-operation reorderings), poor at interleavings
///   that need thread A to pause at one exact point while threads B *and*
///   C each run long phases.
/// * `Pct` — probabilistic concurrency testing (Burckhardt et al.):
///   random per-thread priorities, always run the highest-priority
///   runnable thread, and at a few seed-chosen step numbers demote the
///   running thread below everyone. Each demotion is one phase switch, so
///   a bug needing d precisely-placed preemptions is found with
///   probability ~1/(n·k^d) per seed instead of the random walk's
///   exponentially smaller chance. A small ε of uniform choice is mixed
///   in because, unlike classic PCT's setting, our threads *spin* (model
///   mutexes, quiescence): a pure-priority schedule would starve a
///   demoted lock holder forever, turning a healthy model into a step-
///   budget livelock.
enum Strategy {
    Uniform,
    Pct {
        /// Current priority per thread (higher runs first).
        prio: Vec<u64>,
        /// Step numbers at which the running thread is demoted.
        change_points: Vec<u64>,
        /// Next value handed out by a demotion; decrements so later
        /// demotions sink below earlier ones.
        demote_next: u64,
    },
}

struct SchedState {
    threads: Vec<ThreadState>,
    /// The thread currently holding the execution token.
    active: Option<usize>,
    /// Scheduling points taken so far in this execution.
    steps: u64,
    /// Budget: exceeding it means livelock/deadlock under this schedule.
    max_steps: u64,
    /// xorshift64* PRNG state (never zero).
    rng: u64,
    /// First violation observed in this execution, if any.
    failed: Option<String>,
    strategy: Strategy,
}

impl SchedState {
    fn next_u64(&mut self) -> u64 {
        // xorshift64*: deterministic, tiny, good enough for schedule choice.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn runnable_other_than(&self, me: Option<usize>) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(i, s)| **s == ThreadState::Runnable && Some(*i) != me)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The per-execution token scheduler. One exists per [`check`] iteration;
/// model threads find it through thread-local storage set up at spawn.
pub struct Scheduler {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
}

impl Scheduler {
    fn new(seed: u64, max_steps: u64, nthreads: usize) -> Arc<Scheduler> {
        let mut st = SchedState {
            threads: vec![ThreadState::Runnable; nthreads],
            active: None,
            steps: 0,
            max_steps,
            // Seed 0 would wedge xorshift; mix in a constant.
            rng: seed
                .wrapping_mul(2654435761)
                .wrapping_add(0x9E37_79B9_7F4A_7C15)
                | 1,
            failed: None,
            strategy: Strategy::Uniform,
        };
        // Half the seeds walk randomly, half run PCT (see `Strategy`). All
        // draws come from the seeded rng, so the strategy — like everything
        // else about the schedule — is a pure function of the seed.
        if st.next_u64() & 1 == 1 {
            // Initial priorities live in [2^32, 2^33); demotions hand out
            // values counting down from 2^32 - 1, so every demoted thread
            // sinks below all initial priorities and below earlier
            // demotions.
            let prio = (0..nthreads)
                .map(|_| (1u64 << 32) | (st.next_u64() >> 32))
                .collect();
            // A handful of change points early in the execution: the
            // scenarios here run a few dozen to a couple hundred steps, so
            // points beyond that range would demote nobody.
            let n_change = 3 + (st.next_u64() % 6);
            let change_points = (0..n_change).map(|_| 1 + st.next_u64() % 192).collect();
            st.strategy = Strategy::Pct {
                prio,
                change_points,
                demote_next: (1u64 << 32) - 1,
            };
        }
        Arc::new(Scheduler {
            state: StdMutex::new(st),
            cv: StdCondvar::new(),
        })
    }

    /// Which thread gets the token first under this execution's strategy.
    fn initial_thread(&self) -> usize {
        let st = self.lock();
        match &st.strategy {
            Strategy::Uniform => 0,
            Strategy::Pct { prio, .. } => {
                let mut best = 0;
                for (i, p) in prio.iter().enumerate() {
                    if *p > prio[best] {
                        best = i;
                    }
                }
                best
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record a violation (first writer wins) and release everyone.
    fn fail(&self, msg: String) {
        let mut st = self.lock();
        if st.failed.is_none() {
            st.failed = Some(msg);
        }
        self.cv.notify_all();
    }

    /// A scheduling point for thread `tid`: count a step, maybe hand the
    /// token to a different runnable thread, and block until re-granted.
    fn reschedule(&self, tid: usize) {
        let mut st = self.lock();
        if st.failed.is_some() {
            drop(st);
            self.abort_unless_unwinding();
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.failed = Some(format!(
                "step budget ({}) exceeded: livelock or deadlock under this schedule",
                st.max_steps
            ));
            self.cv.notify_all();
            drop(st);
            self.abort_unless_unwinding();
            return;
        }
        let others = st.runnable_other_than(Some(tid));
        let (d1, d2) = (st.next_u64(), st.next_u64());
        let steps = st.steps;
        let pick: Option<usize> = match &mut st.strategy {
            // Random walk: keep the token with probability 1/2, otherwise
            // hand it to a uniformly chosen other runnable thread (if any).
            // The stay-bias halves context switches without making any
            // interleaving unreachable.
            Strategy::Uniform => {
                if d1 & 1 == 0 || others.is_empty() {
                    None
                } else {
                    Some(others[(d2 as usize) % others.len()])
                }
            }
            Strategy::Pct {
                prio,
                change_points,
                demote_next,
            } => {
                if change_points.contains(&steps) {
                    prio[tid] = *demote_next;
                    *demote_next -= 1;
                }
                if others.is_empty() {
                    None
                } else if d1 % 16 == 0 {
                    // ε-escape: a uniformly random runnable thread (self
                    // included). Without it a demoted lock holder starves
                    // under a higher-priority spinner and healthy models
                    // die on the step budget.
                    let k = (d2 as usize) % (others.len() + 1);
                    if k == others.len() {
                        None
                    } else {
                        Some(others[k])
                    }
                } else {
                    // Highest-priority runnable thread, self included.
                    let mut best = tid;
                    for &o in &others {
                        if prio[o] > prio[best] {
                            best = o;
                        }
                    }
                    if best == tid {
                        None
                    } else {
                        Some(best)
                    }
                }
            }
        };
        if let Some(pick) = pick {
            st.active = Some(pick);
            self.cv.notify_all();
            while st.active != Some(tid) && st.failed.is_none() {
                st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            if st.failed.is_some() {
                drop(st);
                self.abort_unless_unwinding();
            }
        }
    }

    /// Block until `tid` is granted the token for the first time.
    fn wait_for_token(&self, tid: usize) {
        let mut st = self.lock();
        while st.active != Some(tid) && st.failed.is_none() {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Thread `tid` is done: pass the token on (or wake the runner).
    fn finish(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid] = ThreadState::Finished;
        let others = st.runnable_other_than(None);
        let d = st.next_u64();
        let next = match &st.strategy {
            _ if others.is_empty() => None,
            Strategy::Uniform => Some(others[(d as usize) % others.len()]),
            Strategy::Pct { prio, .. } => {
                let mut best = others[0];
                for &o in &others[1..] {
                    if prio[o] > prio[best] {
                        best = o;
                    }
                }
                Some(best)
            }
        };
        st.active = next;
        self.cv.notify_all();
    }

    /// In a failed execution, unwind the calling thread so the run drains.
    /// Never unwinds a thread that is already panicking (a panic inside a
    /// `Drop` during unwind would abort the process).
    fn abort_unless_unwinding(&self) {
        if !std::thread::panicking() {
            std::panic::panic_any(ModelAbort);
        }
    }
}

thread_local! {
    /// Set on model threads for the duration of their closure: the scheduler
    /// they belong to and their thread id within it.
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The instrumentation hook: a scheduling point. No-op when the calling
/// thread is not a model thread (so instrumented primitives cost nothing
/// extra outside [`check`], and setup code in the model closure runs
/// unscheduled).
#[inline]
pub fn yield_point() {
    let current = CURRENT.with(|c| c.borrow().clone());
    if let Some((sched, tid)) = current {
        sched.reschedule(tid);
    }
}

/// True while executing on a scheduled model thread.
pub fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

// ---------------------------------------------------------------------------
// Execution harness
// ---------------------------------------------------------------------------

/// One execution being set up: the scenario closure registers threads here.
pub struct Exec {
    bodies: Vec<Box<dyn FnOnce() + Send>>,
    seed: u64,
    max_steps: u64,
}

impl Exec {
    /// Register a model thread. Threads start only once the scenario closure
    /// returns; they run under the token scheduler.
    pub fn spawn(&mut self, f: impl FnOnce() + Send + 'static) {
        self.bodies.push(Box::new(f));
    }

    /// The seed of this execution (for seed-dependent scenario variation).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Run the registered threads to completion; returns the violation
    /// message if the execution failed.
    fn run(self) -> Option<String> {
        let n = self.bodies.len();
        if n == 0 {
            return None;
        }
        let sched = Scheduler::new(self.seed, self.max_steps, n);
        let mut handles = Vec::with_capacity(n);
        for (tid, body) in self.bodies.into_iter().enumerate() {
            let sched = Arc::clone(&sched);
            handles.push(std::thread::spawn(move || {
                sched.wait_for_token(tid);
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), tid)));
                let result = catch_unwind(AssertUnwindSafe(body));
                CURRENT.with(|c| *c.borrow_mut() = None);
                if let Err(payload) = result {
                    if payload.downcast_ref::<ModelAbort>().is_none() {
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "model thread panicked".to_string());
                        sched.fail(format!("thread {tid} panicked: {msg}"));
                    }
                }
                sched.finish(tid);
            }));
        }
        // Hand out the first token (thread 0 for the random walk, the
        // highest-priority thread under PCT) and let the schedule unfold.
        {
            let first = sched.initial_thread();
            let mut st = sched.lock();
            st.active = Some(first);
            sched.cv.notify_all();
        }
        for h in handles {
            let _ = h.join();
        }
        let st = sched.lock();
        st.failed.clone()
    }
}

/// Exploration bounds for [`check`].
#[derive(Debug, Clone, Copy)]
pub struct CheckOpts {
    /// Number of seeds (= executions) to explore.
    pub seeds: u64,
    /// Scheduling-point budget per execution; exceeding it fails the
    /// execution as a livelock/deadlock.
    pub max_steps: u64,
}

impl Default for CheckOpts {
    fn default() -> Self {
        CheckOpts {
            seeds: 2048,
            max_steps: 200_000,
        }
    }
}

/// Explore `opts.seeds` interleavings of the scenario `f`. Panics (naming
/// the model and the offending seed) on the first execution that observes a
/// violation — an assertion failure on a model thread, a poisoned
/// dereference, or a blown step budget.
///
/// `f` is called once per seed and must register its threads on the given
/// [`Exec`]; shared state is created inside `f` so each execution starts
/// fresh.
pub fn check(name: &str, opts: CheckOpts, f: impl Fn(&mut Exec)) {
    if let Some((seed, msg)) = explore(opts, &f) {
        panic!("model '{name}' failed at seed {seed}: {msg}");
    }
}

/// Like [`check`], but *expects* the model to fail: returns the violation
/// `(seed, message)` of the first failing execution, or `None` if every
/// seed passed. Used by the regression tests that prove each model still
/// catches the bug it was written for.
pub fn check_expect_violation(opts: CheckOpts, f: impl Fn(&mut Exec)) -> Option<(u64, String)> {
    explore(opts, &f)
}

fn explore(opts: CheckOpts, f: &impl Fn(&mut Exec)) -> Option<(u64, String)> {
    for seed in 0..opts.seeds {
        if std::env::var_os("AD_MODEL_DEBUG").is_some() {
            eprintln!("[model] seed {seed}");
        }
        let mut exec = Exec {
            bodies: Vec::new(),
            seed,
            max_steps: opts.max_steps,
        };
        f(&mut exec);
        if let Some(msg) = exec.run() {
            return Some((seed, msg));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Poison registry (use-after-free detection)
// ---------------------------------------------------------------------------

static POISONED: StdMutex<Option<HashSet<usize>>> = StdMutex::new(None);
/// Fast path: skip the registry lock entirely until something is poisoned.
static ANY_POISON: AtomicBool = AtomicBool::new(false);

/// Record `addr` as freed. The caller must *leak* the allocation instead of
/// really freeing it (the registry detects dereferences, it does not make
/// them safe); model allocations are small and short-lived, so the leak is
/// bounded by the run.
pub fn poison(addr: usize) {
    let mut set = POISONED.lock().unwrap_or_else(|p| p.into_inner());
    set.get_or_insert_with(HashSet::new).insert(addr);
    ANY_POISON.store(true, Ordering::SeqCst);
}

/// Panic if `addr` was freed (see [`poison`]). Also a scheduling point, so
/// a pending free *can* interleave between a pointer load and its
/// dereference — exactly the window epoch reclamation must protect.
pub fn assert_not_poisoned(addr: usize, what: &str) {
    yield_point();
    if ANY_POISON.load(Ordering::SeqCst) {
        let set = POISONED.lock().unwrap_or_else(|p| p.into_inner());
        if set.as_ref().is_some_and(|s| s.contains(&addr)) {
            drop(set);
            panic!("use-after-free: {what} dereferenced poisoned address {addr:#x}");
        }
    }
}

/// Clear the poison registry (between unrelated model runs).
pub fn clear_poison() {
    let mut set = POISONED.lock().unwrap_or_else(|p| p.into_inner());
    *set = None;
    ANY_POISON.store(false, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Instrumented atomics (the `cfg(loom)` face of `ad_support::sync::atomic`)
// ---------------------------------------------------------------------------

/// Instrumented atomic types: every operation is a scheduling point, then
/// executes with `SeqCst` on a real std atomic (the scheduler serializes
/// model threads, so all explored executions are sequentially consistent —
/// see the module docs for what that does and does not verify). The
/// `Ordering` parameter is accepted for API compatibility and recorded
/// nowhere.
pub mod atomic {
    use super::yield_point;
    use std::sync::atomic as std_atomic;
    pub use std::sync::atomic::Ordering;

    /// Instrumented `fence`: a scheduling point (the scheduler's
    /// serialization already provides SC).
    #[inline]
    pub fn fence(_order: Ordering) {
        yield_point();
        std_atomic::fence(std_atomic::Ordering::SeqCst);
    }

    macro_rules! int_atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Instrumented integer atomic (see module docs).
            #[derive(Debug, Default)]
            pub struct $name(std_atomic::$std);

            impl $name {
                /// Create a new atomic.
                pub const fn new(v: $ty) -> Self {
                    $name(std_atomic::$std::new(v))
                }

                /// Instrumented load.
                #[inline]
                pub fn load(&self, _o: Ordering) -> $ty {
                    yield_point();
                    self.0.load(Ordering::SeqCst)
                }

                /// Instrumented store.
                #[inline]
                pub fn store(&self, v: $ty, _o: Ordering) {
                    yield_point();
                    self.0.store(v, Ordering::SeqCst)
                }

                /// Instrumented swap.
                #[inline]
                pub fn swap(&self, v: $ty, _o: Ordering) -> $ty {
                    yield_point();
                    self.0.swap(v, Ordering::SeqCst)
                }

                /// Instrumented fetch_add.
                #[inline]
                pub fn fetch_add(&self, v: $ty, _o: Ordering) -> $ty {
                    yield_point();
                    self.0.fetch_add(v, Ordering::SeqCst)
                }

                /// Instrumented fetch_sub.
                #[inline]
                pub fn fetch_sub(&self, v: $ty, _o: Ordering) -> $ty {
                    yield_point();
                    self.0.fetch_sub(v, Ordering::SeqCst)
                }

                /// Instrumented fetch_max.
                #[inline]
                pub fn fetch_max(&self, v: $ty, _o: Ordering) -> $ty {
                    yield_point();
                    self.0.fetch_max(v, Ordering::SeqCst)
                }

                /// Instrumented compare_exchange.
                #[inline]
                pub fn compare_exchange(
                    &self,
                    cur: $ty,
                    new: $ty,
                    _s: Ordering,
                    _f: Ordering,
                ) -> Result<$ty, $ty> {
                    yield_point();
                    self.0
                        .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Uninstrumented exclusive access.
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.0.get_mut()
                }

                /// Consume, returning the value.
                pub fn into_inner(self) -> $ty {
                    self.0.into_inner()
                }
            }
        };
    }

    int_atomic!(AtomicU32, AtomicU32, u32);
    int_atomic!(AtomicU64, AtomicU64, u64);
    int_atomic!(AtomicUsize, AtomicUsize, usize);

    /// Instrumented `AtomicBool` (see module docs).
    #[derive(Debug, Default)]
    pub struct AtomicBool(std_atomic::AtomicBool);

    impl AtomicBool {
        /// Create a new atomic.
        pub const fn new(v: bool) -> Self {
            AtomicBool(std_atomic::AtomicBool::new(v))
        }

        /// Instrumented load.
        #[inline]
        pub fn load(&self, _o: Ordering) -> bool {
            yield_point();
            self.0.load(Ordering::SeqCst)
        }

        /// Instrumented store.
        #[inline]
        pub fn store(&self, v: bool, _o: Ordering) {
            yield_point();
            self.0.store(v, Ordering::SeqCst)
        }

        /// Instrumented swap.
        #[inline]
        pub fn swap(&self, v: bool, _o: Ordering) -> bool {
            yield_point();
            self.0.swap(v, Ordering::SeqCst)
        }

        /// Instrumented compare_exchange.
        #[inline]
        pub fn compare_exchange(
            &self,
            cur: bool,
            new: bool,
            _s: Ordering,
            _f: Ordering,
        ) -> Result<bool, bool> {
            yield_point();
            self.0
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
        }

        /// Uninstrumented exclusive access.
        pub fn get_mut(&mut self) -> &mut bool {
            self.0.get_mut()
        }
    }

    /// Instrumented `AtomicPtr` (see module docs).
    #[derive(Debug)]
    pub struct AtomicPtr<T>(std_atomic::AtomicPtr<T>);

    impl<T> AtomicPtr<T> {
        /// Create a new atomic pointer.
        pub const fn new(p: *mut T) -> Self {
            AtomicPtr(std_atomic::AtomicPtr::new(p))
        }

        /// Instrumented load.
        #[inline]
        pub fn load(&self, _o: Ordering) -> *mut T {
            yield_point();
            self.0.load(Ordering::SeqCst)
        }

        /// Instrumented store.
        #[inline]
        pub fn store(&self, p: *mut T, _o: Ordering) {
            yield_point();
            self.0.store(p, Ordering::SeqCst)
        }

        /// Instrumented swap.
        #[inline]
        pub fn swap(&self, p: *mut T, _o: Ordering) -> *mut T {
            yield_point();
            self.0.swap(p, Ordering::SeqCst)
        }

        /// Uninstrumented exclusive access.
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.0.get_mut()
        }
    }
}

// ---------------------------------------------------------------------------
// Instrumented locks (the `cfg(loom)` face of `ad_support::sync`)
// ---------------------------------------------------------------------------

/// Instrumented `Mutex`/`RwLock`/`Condvar` with the same calling convention
/// as [`crate::sync`]. They spin at scheduling points instead of blocking in
/// the OS: a model thread must never block outside the scheduler's control
/// (it would deadlock the token), and outside a model run the spin is only
/// taken on actual contention.
pub mod sync {
    use super::yield_point;
    use std::cell::UnsafeCell;
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::{AtomicU32, Ordering};

    const WRITER: u32 = 1 << 31;

    /// Instrumented mutual-exclusion lock (spin-at-scheduling-points).
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized> {
        locked: std::sync::atomic::AtomicBool,
        data: UnsafeCell<T>,
    }

    // SAFETY: the `locked` flag provides mutual exclusion for `data`, so the
    // usual `Mutex` bounds apply.
    unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
    // SAFETY: as above — guarded access only.
    unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

    /// RAII guard for [`Mutex`].
    pub struct MutexGuard<'a, T: ?Sized>(&'a Mutex<T>);

    impl<T> Mutex<T> {
        /// Create a new mutex.
        pub const fn new(value: T) -> Self {
            Mutex {
                locked: std::sync::atomic::AtomicBool::new(false),
                data: UnsafeCell::new(value),
            }
        }

        /// Consume the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.data.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        fn try_acquire(&self) -> bool {
            self.locked
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        }

        /// Acquire the lock, spinning at scheduling points while contended.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            loop {
                yield_point();
                if self.try_acquire() {
                    return MutexGuard(self);
                }
                std::hint::spin_loop();
            }
        }

        /// Try to acquire the lock without waiting.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            yield_point();
            self.try_acquire().then_some(MutexGuard(self))
        }

        /// Mutable access without locking (requires exclusive ownership).
        pub fn get_mut(&mut self) -> &mut T {
            self.data.get_mut()
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.0.locked.store(false, Ordering::SeqCst);
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: the guard holds the `locked` flag, so access is
            // exclusive.
            unsafe { &*self.0.data.get() }
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as in `deref`.
            unsafe { &mut *self.0.data.get() }
        }
    }

    /// Instrumented reader-writer lock (spin-at-scheduling-points).
    #[derive(Debug, Default)]
    pub struct RwLock<T: ?Sized> {
        /// Reader count, with [`WRITER`] set while write-locked.
        state: AtomicU32,
        data: UnsafeCell<T>,
    }

    // SAFETY: `state` provides the usual rwlock exclusion for `data`.
    unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
    // SAFETY: readers get `&T`, writers exclusive `&mut T` — `T: Send + Sync`
    // mirrors std's bounds.
    unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

    /// Shared-access RAII guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T: ?Sized>(&'a RwLock<T>);
    /// Exclusive-access RAII guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T: ?Sized>(&'a RwLock<T>);

    impl<T> RwLock<T> {
        /// Create a new reader-writer lock.
        pub const fn new(value: T) -> Self {
            RwLock {
                state: AtomicU32::new(0),
                data: UnsafeCell::new(value),
            }
        }
    }

    impl<T: ?Sized> RwLock<T> {
        fn try_read_acquire(&self) -> bool {
            let s = self.state.load(Ordering::SeqCst);
            s & WRITER == 0
                && self
                    .state
                    .compare_exchange(s, s + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
        }

        fn try_write_acquire(&self) -> bool {
            self.state
                .compare_exchange(0, WRITER, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        }

        /// Acquire shared access.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            loop {
                yield_point();
                if self.try_read_acquire() {
                    return RwLockReadGuard(self);
                }
                std::hint::spin_loop();
            }
        }

        /// Acquire exclusive access.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            loop {
                yield_point();
                if self.try_write_acquire() {
                    return RwLockWriteGuard(self);
                }
                std::hint::spin_loop();
            }
        }

        /// Try to acquire shared access without waiting.
        pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
            yield_point();
            self.try_read_acquire().then_some(RwLockReadGuard(self))
        }

        /// Try to acquire exclusive access without waiting.
        pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
            yield_point();
            self.try_write_acquire().then_some(RwLockWriteGuard(self))
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            self.0.state.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            self.0.state.store(0, Ordering::SeqCst);
        }
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: reader count held — no writer can exist.
            unsafe { &*self.0.data.get() }
        }
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: writer bit held — access is exclusive.
            unsafe { &*self.0.data.get() }
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as in `deref`.
            unsafe { &mut *self.0.data.get() }
        }
    }

    /// Instrumented condition variable. `wait` releases the lock, takes a
    /// scheduling point, and re-acquires — i.e. every wakeup is "spurious"
    /// and correctness relies on callers looping on their predicate, which
    /// is the documented contract of [`crate::sync::Condvar`] too.
    #[derive(Debug, Default)]
    pub struct Condvar;

    impl Condvar {
        /// Create a new condition variable.
        pub const fn new() -> Self {
            Condvar
        }

        /// Release the guarded mutex, take a scheduling point, re-acquire.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            let m: &Mutex<T> = guard.0;
            m.locked.store(false, Ordering::SeqCst);
            yield_point();
            loop {
                if m.try_acquire() {
                    break;
                }
                yield_point();
                std::hint::spin_loop();
            }
        }

        /// Wake one waiter (waiters re-check predicates at scheduling
        /// points; nothing to signal).
        pub fn notify_one(&self) {
            yield_point();
        }

        /// Wake all waiters.
        pub fn notify_all(&self) {
            yield_point();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn opts(seeds: u64) -> CheckOpts {
        CheckOpts {
            seeds,
            max_steps: 100_000,
        }
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        check("single", opts(4), move |e| {
            let r = Arc::clone(&r);
            e.spawn(move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ran.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn model_mutex_provides_mutual_exclusion() {
        check("mutex-excl", opts(64), |e| {
            let m = Arc::new(sync::Mutex::new(0u64));
            for _ in 0..3 {
                let m = Arc::clone(&m);
                e.spawn(move || {
                    for _ in 0..4 {
                        let mut g = m.lock();
                        let v = *g;
                        atomic::fence(atomic::Ordering::SeqCst); // scheduling point mid-section
                        *g = v + 1;
                    }
                });
            }
            // Checked implicitly: lost updates would need a torn critical
            // section, which the guard prevents. The assertion thread reads
            // the final count after both workers are likely done; exactness
            // is asserted by the unprotected-counter test instead.
        });
    }

    #[test]
    fn finds_race_on_unprotected_counter() {
        // Two threads do read-modify-write through instrumented atomics
        // *without* synchronization; some interleaving must lose an update.
        let violation = check_expect_violation(opts(512), |e| {
            let c = Arc::new(atomic::AtomicU64::new(0));
            let done = Arc::new(atomic::AtomicU64::new(0));
            for _ in 0..2 {
                let c = Arc::clone(&c);
                let done = Arc::clone(&done);
                e.spawn(move || {
                    let v = c.load(atomic::Ordering::SeqCst);
                    c.store(v + 1, atomic::Ordering::SeqCst);
                    done.fetch_add(1, atomic::Ordering::SeqCst);
                    if done.load(atomic::Ordering::SeqCst) == 2 {
                        assert_eq!(c.load(atomic::Ordering::SeqCst), 2, "lost update");
                    }
                });
            }
        });
        assert!(
            violation.is_some(),
            "the scheduler never found the classic lost-update interleaving"
        );
    }

    #[test]
    fn deadlock_is_reported_as_step_budget() {
        // Two threads each take a model mutex then spin for the other: the
        // step budget must fire rather than hanging the test.
        let violation = check_expect_violation(
            CheckOpts {
                seeds: 8,
                max_steps: 2_000,
            },
            |e| {
                let a = Arc::new(sync::Mutex::new(()));
                let b = Arc::new(sync::Mutex::new(()));
                for flip in [false, true] {
                    let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                    e.spawn(move || {
                        let (first, second) = if flip { (&b, &a) } else { (&a, &b) };
                        let _g1 = first.lock();
                        let _g2 = second.lock();
                    });
                }
            },
        );
        let (_, msg) = violation.expect("AB-BA deadlock never materialized");
        assert!(msg.contains("step budget"), "unexpected failure: {msg}");
    }

    #[test]
    fn poison_registry_detects_dereference() {
        clear_poison();
        let violation = check_expect_violation(opts(64), |e| {
            let addr = Arc::new(atomic::AtomicUsize::new(0x1000 + e.seed() as usize * 16));
            let a2 = Arc::clone(&addr);
            let a3 = Arc::clone(&addr);
            e.spawn(move || {
                poison(a2.load(atomic::Ordering::SeqCst));
            });
            e.spawn(move || {
                assert_not_poisoned(a3.load(atomic::Ordering::SeqCst), "test reader");
            });
        });
        clear_poison();
        let (_, msg) = violation.expect("poisoned dereference never interleaved");
        assert!(msg.contains("use-after-free"), "unexpected failure: {msg}");
    }

    #[test]
    fn seeds_are_deterministic() {
        // The same seed must produce the same schedule: record the
        // interleaving signature of seed 3 twice and compare.
        fn signature() -> Vec<u64> {
            let log = Arc::new(std::sync::Mutex::new(Vec::new()));
            let l2 = Arc::clone(&log);
            let opts = CheckOpts {
                seeds: 4,
                max_steps: 10_000,
            };
            check("determinism", opts, move |e| {
                let c = Arc::new(atomic::AtomicU64::new(0));
                for t in 0..2u64 {
                    let c = Arc::clone(&c);
                    let log = Arc::clone(&l2);
                    e.spawn(move || {
                        for i in 0..4 {
                            c.fetch_add(t * 100 + i, atomic::Ordering::SeqCst);
                        }
                        // Load *before* taking the uninstrumented OS lock: a
                        // scheduling point inside its critical section would
                        // let another model thread block on the lock while
                        // holding the scheduler token — a deadlock of the
                        // harness, not the scenario.
                        let v = c.load(atomic::Ordering::SeqCst);
                        log.lock().unwrap().push(v);
                    });
                }
            });
            Arc::try_unwrap(log).unwrap().into_inner().unwrap()
        }
        assert_eq!(signature(), signature());
    }

    #[test]
    fn condvar_roundtrip_outside_model() {
        // The instrumented primitives must also work as plain (uncontrolled)
        // primitives outside `check`, because `--cfg loom` builds run the
        // whole test suite with them.
        let m = sync::Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = sync::RwLock::new(7);
        {
            let a = rw.read();
            let b = rw.read();
            assert_eq!(*a + *b, 14);
        }
        *rw.write() = 9;
        assert_eq!(*rw.read(), 9);
    }
}
