//! CRC-32 (IEEE 802.3 polynomial) — the WAL record checksum.
//!
//! The `ad-kv` write-ahead log frames every record with a CRC over its
//! payload so recovery can distinguish "valid record" from "torn tail of a
//! crashed append" (a partially persisted write ends in garbage whose CRC
//! cannot match). The offline workspace has no `crc32fast`, so this is the
//! classic byte-at-a-time table implementation: ~400 MB/s, far faster than
//! the `fsync` the log exists to amortize.

/// The reflected IEEE polynomial used by zlib, Ethernet, and PNG.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (full init/finalize cycle — equivalent to
/// `crc32fast::hash`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check values for the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_byte_flips() {
        let data = b"write-ahead log record payload";
        let base = crc32(data);
        let mut corrupt = data.to_vec();
        for i in 0..corrupt.len() {
            corrupt[i] ^= 0x01;
            assert_ne!(crc32(&corrupt), base, "flip at {i} undetected");
            corrupt[i] ^= 0x01;
        }
    }

    #[test]
    fn detects_truncation() {
        let data = b"0123456789abcdef";
        let base = crc32(data);
        for cut in 0..data.len() {
            assert_ne!(crc32(&data[..cut]), base, "truncation to {cut} undetected");
        }
    }
}
