//! Fixture: deferred closures capturing the transaction.
//! Each `tx` mention inside a deferred op must be flagged as
//! `defer-captures-tx`.

fn ordered(o: Defer<Obj>, v: TVar<u64>) {
    atomically(|tx| {
        atomic_defer(tx, &[&o.clone()], move || {
            let _ = tx.read(&v); // FLAG: tx is dead after commit
        })
    });
}

fn unordered(v: TVar<u64>) {
    atomically(|tx| {
        atomic_defer_unordered(tx, move || {
            tx.write(&v, 1); // FLAG
        })
    });
}
