//! Fixture: transactions touching state owned by a different runtime —
//! the island-assumption violations the shard router exists to prevent
//! (DESIGN.md §14). Three sites must be flagged as
//! `cross-runtime-access`: a nested transaction on another named
//! runtime, a store `write_batch` inside a live atomic closure, and an
//! `apply_prepared` inside one. Same-runtime nesting, router-mediated
//! access under the allow-marker, and store calls outside any region
//! stay clean.

fn nested_entry_on_another_runtime(rt_a: &Runtime, rt_b: &Runtime, v: TVar<u64>) {
    rt_a.atomically(|tx| {
        // FLAG: rt_b's commit is invisible to rt_a's validation and
        // repeats on every outer retry.
        rt_b.atomically(|tx2| tx2.write(&v, 1));
        tx.read(&v)
    });
}

fn store_entry_points_inside_a_transaction(rt: &Runtime, store: &KvStore, part: &KvStore) {
    rt.atomically(|tx| {
        store.write_batch(&WriteBatch::new().put("k", b"v")); // FLAG: own runtime, own commit
        part.apply_prepared(7, &batch, ack, rel); // FLAG: stages on the participant runtime
        Ok(())
    });
}

fn same_runtime_nesting_is_not_cross_runtime(rt_a: &Runtime, v: TVar<u64>) {
    // Re-entering the *same* named runtime is a different hazard (and a
    // different rule's business when it happens in a deferred op); this
    // rule only claims provably-foreign runtimes.
    rt_a.atomically(|tx| {
        rt_a.atomically(|tx2| tx2.read(&v));
        tx.read(&v)
    });
}

fn router_mediated_access_is_the_blessed_path(rt: &Runtime, router: &ShardRouter) {
    rt.atomically(|tx| {
        // The router's 2-phase protocol is *how* cross-runtime writes are
        // done; the marker records the audit.
        // ad-lint: allow(cross-runtime-access)
        router.write_batch(&WriteBatch::new().put("k", b"v"));
        Ok(())
    });
}

fn store_calls_outside_any_region_are_fine(store: &KvStore, router: &ShardRouter) {
    store.write_batch(&WriteBatch::new().put("k", b"v"));
    let _ = router.get_many(&["a", "b"]);
}
