//! Fixture: `atomic_defer*` registered lexically after the first
//! `tx.write` in the same atomic closure — against the
//! defer-before-first-write ordering the KV commit protocol relies on
//! (DESIGN.md §9). Two sites must be flagged as `defer-after-write`; the
//! defer-first closure and the write-free closure must stay clean.

fn write_then_defer(rt: &Runtime, o: Defer<Obj>, v: TVar<u64>) {
    rt.atomically(|tx| {
        let x = tx.read(&v)?;
        tx.write(&v, x + 1)?;
        atomic_defer(tx, &[&o.clone()], move || log_op(x)) // FLAG
    });
    rt.atomically(|tx| {
        tx.write(&v, 0)?;
        atomic_defer_unordered(tx, move || log_op(0)) // FLAG
    });
}

fn blessed_orders(rt: &Runtime, o: Defer<Obj>, v: TVar<u64>) {
    // Defer before the first write: the §9 ordering.
    rt.atomically(|tx| {
        let x = tx.read(&v)?;
        atomic_defer(tx, &[&o.clone()], move || log_op(x))?;
        tx.write(&v, x + 1)
    });
    // Read-only transaction: no write, nothing to order against.
    rt.atomically(|tx| {
        let x = tx.read(&v)?;
        atomic_defer_unordered(tx, move || log_op(x))
    });
}
