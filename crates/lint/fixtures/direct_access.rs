//! Fixture: non-transactional accessors inside atomic closures.
//! Every access below must be flagged as `direct-access-in-atomic`.

fn counter_bump(v: TVar<u64>) {
    atomically(|tx| {
        let x = v.load(); // FLAG: bypasses the read set
        v.store(x + 1); // FLAG: bypasses the write set
        Ok(())
    });
}

fn peeking(o: Defer<Obj>) {
    synchronized(|tx| {
        o.peek_unsynchronized(); // FLAG: unsubscribed raw access
        o.locked().field.update_locked(|x| x + 1); // FLAG
        Ok(())
    });
}
