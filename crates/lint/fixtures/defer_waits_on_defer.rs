//! Fixture: deferred ops synchronizing with other deferred work — the
//! static half of the single-worker self-deadlock caveat (DESIGN.md §10).
//! Four sites must be flagged as `defer-waits-on-defer`: a handle wait, a
//! path-position `wait_all`, a `store.sync()`, and a re-entrant
//! `atomically`. Waiting *outside* any deferred closure is fine.

fn self_deadlocks(rt: &Runtime, o: Defer<Obj>, h: DeferHandle<u64>, store: Store) {
    rt.atomically(|tx| {
        let hs = Vec::new();
        atomic_defer(tx, &[&o.clone()], move || {
            let _v = h.wait(&RT); // FLAG: waits on a deferred result
            DeferHandle::wait_all(&RT, hs); // FLAG: path-position wait
            store.sync(); // FLAG: sync drains the deferred queue
            RT.atomically(|tx2| Ok(())); // FLAG: re-enters the runtime
        })
    });
}

fn waiting_outside_is_fine(rt: &Runtime, h: DeferHandle<u64>) {
    // The *producer* thread waiting on its own handle after commit is the
    // documented pattern — only waits inside deferred closures deadlock.
    let _v = h.wait(rt);
}
