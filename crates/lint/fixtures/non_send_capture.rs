//! Fixture: deferred closures capturing non-`Send` shapes.
//! Deferred operations may run on a pool worker thread
//! (`DeferExecCfg::Pool`); each `Rc`/`RefCell`/raw-pointer mention inside a
//! deferred op must be flagged as `non-send-capture`.

fn rc_capture(o: Defer<Obj>, counter: Rc<u64>) {
    atomically(|tx| {
        atomic_defer(tx, &[&o.clone()], move || {
            let _ = Rc::strong_count(&counter); // FLAG: Rc is not Send
        })
    });
}

fn refcell_capture(o: Defer<Obj>, cell: RefCell<u64>) {
    atomically(|tx| {
        atomic_defer_tracked(tx, &[&o.clone()], move || {
            *RefCell::borrow_mut(&cell) += 1; // FLAG: RefCell is not Send/Sync
        })
    });
}

fn raw_pointer_capture(o: Defer<Obj>, p: usize) {
    atomically(|tx| {
        atomic_defer_unordered(tx, move || {
            let q = p as *mut u64; // FLAG: raw pointers are never Send
            let r = q as *const u64; // FLAG
            drop((q, r));
        })
    });
}

fn allowed_escape(o: Defer<Obj>, counter: Rc<u64>) {
    atomically(|tx| {
        atomic_defer(tx, &[&o.clone()], move || {
            // ad-lint: allow(non-send-capture) — Inline-executor-only path
            let _ = Rc::strong_count(&counter);
        })
    });
}
