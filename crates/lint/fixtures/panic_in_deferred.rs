//! Fixture: panicking shapes inside deferred closures — a panicking op
//! poisons its whole post-commit batch (DESIGN.md §10 ii). Five sites
//! must be flagged as `panic-in-deferred`: `unwrap`, `expect`, `panic!`,
//! `assert!`, and an `unreachable!` reached through a macro body. The
//! non-panicking variants and `debug_assert!` must stay clean, and the
//! final `expect` is allow-annotated as deliberate policy.

fn poisonous(rt: &Runtime, o: Defer<Obj>) {
    rt.atomically(|tx| {
        atomic_defer(tx, &[&o.clone()], move || {
            let x = fallible().unwrap(); // FLAG
            let y = fallible().expect("boom"); // FLAG
            if x > y {
                panic!("inverted"); // FLAG
            }
            assert!(x <= y); // FLAG
            match x {
                0 => unreachable!("zero was filtered"), // FLAG
                _ => {}
            }
        })
    });
}

fn harmless(rt: &Runtime, o: Defer<Obj>) {
    rt.atomically(|tx| {
        atomic_defer(tx, &[&o.clone()], move || {
            let x = fallible().unwrap_or(0);
            let y = fallible().unwrap_or_else(|_| 1);
            debug_assert!(x <= y); // debug-only guard: exempt by design
            // Aborting the batch is the intended policy here:
            // ad-lint: allow(panic-in-deferred)
            let _z = fallible().expect("deliberate abort-the-batch");
        })
    });
}
