//! Fixture: Ordering::SeqCst outside the fence-disciplined allowlist.
//! Both uses must be flagged as `seqcst-outside-allowlist`.

use ad_support::sync::atomic::{AtomicU64, Ordering};

static COUNT: AtomicU64 = AtomicU64::new(0);

fn bump() -> u64 {
    COUNT.fetch_add(1, Ordering::SeqCst) // FLAG
}

fn read() -> u64 {
    COUNT.load(Ordering::SeqCst) // FLAG
}
