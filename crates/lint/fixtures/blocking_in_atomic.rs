//! Fixture: blocking calls inside a *retryable* `atomically` closure.
//! Eight sites must be flagged as `blocking-in-atomic`: fsync, stream
//! write, channel recv, mutex lock, a thread sleep, and three
//! checkpoint-tier helpers (a store checkpoint, a WAL rotation, a
//! memtable watermark wait). The `tx.write`, the blocking work inside
//! the deferred closure, and the whole `synchronized` section are legal
//! and must stay clean.

fn hot_path(rt: &Runtime, file: std::fs::File, sock: Socket, m: Mutex<u8>, rx: Receiver<u8>) {
    rt.atomically(|tx| {
        tx.write(&COUNTER, 1)?; // transactional write: not I/O
        file.sync_all().ok(); // FLAG: fsync in a retryable closure
        sock.write(b"payload"); // FLAG: stream write
        let _msg = rx.recv(); // FLAG: channel receive
        let _g = m.lock(); // FLAG: lock acquisition
        std::thread::sleep(Duration::from_millis(1)); // FLAG: sleep
        Ok(())
    });
}

fn checkpoint_tier(rt: &Runtime, store: KvStore, wal: Wal, mt: MemTable) {
    rt.atomically(|tx| {
        tx.write(&COUNTER, 2)?; // transactional write: not I/O
        store.checkpoint().ok(); // FLAG: snapshot write + fsync + rename
        wal.rotate().ok(); // FLAG: waits out the group-commit leader
        mt.wait_applied_through(7); // FLAG: unbounded watermark wait
        Ok(())
    });
}

fn legal_homes(rt: &Runtime, file: Arc<std::fs::File>, o: Defer<Obj>) {
    rt.atomically(|tx| {
        let f2 = file.clone();
        // Deferred op: runs once, post-commit, under the held TxLocks —
        // exactly where blocking work belongs.
        atomic_defer(tx, &[&o.clone()], move || {
            f2.sync_all().ok();
        })
    });
    rt.synchronized(|tx| {
        // Irrevocable section: blocking I/O is legal by design.
        file.sync_all().ok();
        Ok(())
    });
}
