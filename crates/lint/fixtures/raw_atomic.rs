//! Fixture: raw std::sync::atomic outside the allowlist — invisible to
//! loom models, which only see accesses through the ad-support facade.
//! All three paths (two `std`, one `core`) must be flagged as `raw-atomic`.

use std::sync::atomic::AtomicBool; // FLAG

fn spin(stop: &std::sync::atomic::AtomicBool) {
    // FLAG (the path above)
    while !stop.load(core::sync::atomic::Ordering::Acquire) {
        std::hint::spin_loop();
    }
}
