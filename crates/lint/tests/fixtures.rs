//! The fixture files under `fixtures/` are deliberately-bad code the
//! workspace walk skips (the directory is in `SKIP_DIRS`); here each one
//! is scanned explicitly and must produce exactly its advertised findings.
//! This is the CI acceptance check that the lint actually rejects the
//! shapes it claims to — if a rule rots into always-clean, this fails.

use std::path::Path;

use ad_lint::{
    scan_tree, RULE_BLOCKING_IN_ATOMIC, RULE_CROSS_RUNTIME, RULE_DEFER_AFTER_WRITE,
    RULE_DEFER_CAPTURES_TX, RULE_DEFER_WAITS, RULE_DIRECT_ACCESS, RULE_NON_SEND_CAPTURE,
    RULE_PANIC_IN_DEFERRED, RULE_RAW_ATOMIC, RULE_SEQCST,
};

fn fixture(name: &str) -> Vec<&'static str> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    scan_tree(&path)
        .expect("fixture readable")
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn direct_access_fixture_is_rejected() {
    assert_eq!(fixture("direct_access.rs"), vec![RULE_DIRECT_ACCESS; 4]);
}

#[test]
fn defer_captures_tx_fixture_is_rejected() {
    assert_eq!(
        fixture("defer_captures_tx.rs"),
        vec![RULE_DEFER_CAPTURES_TX; 2]
    );
}

#[test]
fn non_send_capture_fixture_is_rejected() {
    // Rc, RefCell, `*mut`, `*const` — and the final, allow-annotated Rc
    // use must be suppressed.
    assert_eq!(
        fixture("non_send_capture.rs"),
        vec![RULE_NON_SEND_CAPTURE; 4]
    );
}

#[test]
fn seqcst_fixture_is_rejected() {
    assert_eq!(fixture("seqcst.rs"), vec![RULE_SEQCST; 2]);
}

#[test]
fn raw_atomic_fixture_is_rejected() {
    assert_eq!(fixture("raw_atomic.rs"), vec![RULE_RAW_ATOMIC; 3]);
}

#[test]
fn blocking_in_atomic_fixture_is_rejected() {
    // fsync, stream write, channel recv, lock, sleep, plus the
    // checkpoint-tier helpers (store checkpoint, WAL rotate, memtable
    // watermark wait) — and nothing from the deferred-op /
    // `synchronized` homes where blocking is legal.
    assert_eq!(
        fixture("blocking_in_atomic.rs"),
        vec![RULE_BLOCKING_IN_ATOMIC; 8]
    );
}

#[test]
fn defer_waits_on_defer_fixture_is_rejected() {
    // handle wait, path-position wait_all, store.sync(), re-entrant
    // atomically — the post-commit wait outside any deferred op is clean.
    assert_eq!(
        fixture("defer_waits_on_defer.rs"),
        vec![RULE_DEFER_WAITS; 4]
    );
}

#[test]
fn panic_in_deferred_fixture_is_rejected() {
    // unwrap, expect, panic!, assert!, unreachable! — with unwrap_or*,
    // debug_assert!, and the allow-annotated expect suppressed.
    assert_eq!(
        fixture("panic_in_deferred.rs"),
        vec![RULE_PANIC_IN_DEFERRED; 5]
    );
}

#[test]
fn defer_after_write_fixture_is_rejected() {
    // Two write-then-defer closures; the defer-first and read-only
    // closures are clean.
    assert_eq!(
        fixture("defer_after_write.rs"),
        vec![RULE_DEFER_AFTER_WRITE; 2]
    );
}

#[test]
fn cross_runtime_fixture_is_rejected() {
    // Nested entry on a foreign named runtime, a store write_batch, and
    // an apply_prepared inside live atomic closures — with same-runtime
    // nesting, the allow-annotated router call, and store calls outside
    // any region all clean.
    assert_eq!(fixture("cross_runtime.rs"), vec![RULE_CROSS_RUNTIME; 3]);
}

#[test]
fn every_fixture_fails_the_scan() {
    // The property CI relies on: pointing the binary at the fixture
    // directory must exit non-zero, i.e. the scan finds something in
    // every file.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("entry").path();
        let findings = scan_tree(&path).expect("fixture readable");
        assert!(
            !findings.is_empty(),
            "fixture {} produced no findings",
            path.display()
        );
    }
}
