//! False-positive regression suite: shapes the v1 lexical scanner got
//! wrong (or would have), pinned clean forever. Each test is a pattern
//! that *looks* like a violation to a substring matcher but is legal once
//! bindings, regions, and token boundaries are tracked.

use ad_lint::scan_source;

fn rules(src: &str) -> Vec<&'static str> {
    scan_source("crates/demo/src/lib.rs", src)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn let_tx_channel_binding_is_not_the_transaction() {
    // The v1 headline false positive: any identifier named `tx` tripped
    // `defer-captures-tx`. A `let tx = channel.tx()` is a *plain* binding
    // — a channel sender, not the transaction.
    let src = "
        fn f(o: Defer<Obj>, channel: Channel) {
            atomically(|txn| {
                let tx = channel.tx();
                atomic_defer(txn, &[&o.clone()], move || {
                    tx.send(42).ok();
                })
            });
        }
    ";
    assert_eq!(rules(src), Vec::<&str>::new());
}

#[test]
fn shadowing_closure_param_named_tx_is_plain() {
    // Inside the deferred closure, `|tx| ...` re-binds the name: the
    // iterator parameter shadows the transaction, so using it is fine.
    let src = "
        fn f(o: Defer<Obj>, items: Vec<Sender>) {
            atomically(|tx| {
                atomic_defer(tx, &[&o.clone()], move || {
                    items.iter().for_each(|tx| tx.send(1));
                })
            });
        }
    ";
    assert_eq!(rules(src), Vec::<&str>::new());
}

#[test]
fn raw_identifier_tx_is_the_same_binding_as_tx() {
    // `r#tx` and `tx` are the same identifier in Rust; the lexer must
    // neither split `r#tx` into phantom tokens nor treat it as distinct.
    let src = "
        fn f(o: Defer<Obj>, v: TVar<u64>) {
            atomically(|r#tx| {
                atomic_defer(r#tx, &[&o.clone()], move || {
                    let _ = tx.read(&v);
                })
            });
        }
    ";
    assert_eq!(rules(src), vec![ad_lint::RULE_DEFER_CAPTURES_TX]);
}

#[test]
fn accessor_threading_rebinds_the_transaction() {
    // The accessor idiom `obj.with(tx, |o, tx| ...)` forwards the
    // transaction into the closure: the inner `tx` IS the transaction
    // (its `tx.write` counts for defer-after-write ordering), while an
    // unrelated `for_each(|tx| ...)` param is plain.
    let src = "
        fn f(o: Defer<Obj>, v: TVar<u64>) {
            atomically(|tx| {
                o.with(tx, |obj, tx| tx.write(&v, 1))?;
                atomic_defer(tx, &[&o.clone()], move || { op(); })
            });
        }
    ";
    assert_eq!(rules(src), vec![ad_lint::RULE_DEFER_AFTER_WRITE]);
}

#[test]
fn tx_combinators_relend_the_transaction() {
    // `tx.or_else(move |tx| ...)` threads the transaction through the
    // receiver: the inner `tx.write` is transactional, not blocking I/O.
    let src = "
        fn f(h: TVar<u64>) {
            atomically(|tx| {
                tx.or_else(
                    move |tx| tx.write(&h, 1),
                    move |tx| tx.retry(),
                )
            });
        }
    ";
    assert_eq!(rules(src), Vec::<&str>::new());
}

#[test]
fn macro_bodies_are_scanned() {
    // The v1 scanner was blind inside macro invocations; violations in a
    // `vec![...]` / custom `m!{...}` body must be found.
    let src = "
        fn f(v: TVar<u64>) {
            atomically(|tx| {
                let xs = vec![
                    v.load(),
                    v.load(),
                ];
                Ok(xs)
            });
        }
    ";
    assert_eq!(rules(src), vec![ad_lint::RULE_DIRECT_ACCESS; 2]);
}

#[test]
fn binary_or_is_not_a_closure() {
    // `a || b` and `x | y` must not be parsed as closures (which would
    // swallow the rest of the expression as a phantom body).
    let src = "
        fn f(v: TVar<u64>, a: bool, b: bool) {
            atomically(|tx| {
                let c = a || b;
                let d = 1u64 | 2u64;
                if c || d > 0 {
                    v.load();
                }
                Ok(())
            });
        }
    ";
    assert_eq!(rules(src), vec![ad_lint::RULE_DIRECT_ACCESS]);
}

#[test]
fn fn_typed_params_are_not_the_transaction() {
    // A higher-order fn whose parameter *type* mentions `Tx` inside an
    // `Fn(...)` bound takes a closure, not a transaction; a bare `Tx`
    // param is the real thing.
    let src = "
        fn run(body: impl Fn(&mut Tx) -> TxResult<u64>) {}
        fn g(o: Defer<Obj>, tx: &mut Tx) {
            atomic_defer(tx, &[&o.clone()], move || {
                body();
            });
        }
    ";
    assert_eq!(rules(src), Vec::<&str>::new());
}

#[test]
fn strings_comments_and_lifetimes_do_not_leak_tokens() {
    // Token-boundary stress: raw strings with hashes, char literals that
    // look like quotes, lifetimes, nested comments — none of it may leak
    // identifiers into the analysis.
    let src = r##"
        fn f<'a>(v: &'a TVar<u64>) {
            let s = r#"atomically(|tx| v.load())"#;
            let q = '"';
            let t = "Ordering::SeqCst";
            /* v.load() /* nested v.store(1) */ */
            drop((s, q, t));
        }
    "##;
    assert_eq!(rules(src), Vec::<&str>::new());
}

#[test]
fn nested_fn_does_not_inherit_the_atomic_region() {
    // An fn *defined* inside an atomic closure executes whenever called,
    // not inside this transaction — region context must not leak in.
    let src = "
        fn f(v: TVar<u64>, file: File) {
            atomically(|tx| {
                fn helper(file: &File) {
                    file.sync_all().ok();
                }
                Ok(())
            });
        }
    ";
    assert_eq!(rules(src), Vec::<&str>::new());
}

#[test]
fn defer_argument_list_is_outside_the_deferred_region() {
    // `&[&o.clone()]` and the `tx` argument sit in the *call's* argument
    // list, not in the deferred closure: no captures-tx, no non-send.
    let src = "
        fn f(o: Defer<Obj>, n: Rc<u64>) {
            atomically(|tx| {
                let k = Rc::strong_count(&n);
                atomic_defer(tx, &[&o.clone()], move || {
                    log(k);
                })
            });
        }
    ";
    assert_eq!(rules(src), Vec::<&str>::new());
}
