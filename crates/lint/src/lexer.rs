//! Phase 1: a hand-rolled Rust lexer.
//!
//! The v1 scanner stripped comments/literals in one pass and then split the
//! residue on character class, which mis-tokenized exactly the corners the
//! contracts care about: a raw identifier `r#tx` fell apart into `r`, `#`,
//! `tx` (so rules saw a phantom `tx`), a raw string could swallow code after
//! a stray `r#` fallback, and lifetimes needed a heuristic. This lexer
//! produces a faithful token stream instead:
//!
//! * identifiers, including raw identifiers (`r#tx` is one [`Tok::Ident`]
//!   with `raw = true` and the name `tx` — same *name* as `tx`, which is
//!   what binding resolution wants, but never a substring accident);
//! * string-ish literals in all forms — `"…"`, `r"…"`, `r#"…"#` (any hash
//!   count), `b"…"`, `br#"…"#`, `c"…"`, char and byte literals — reduced to
//!   a single [`Tok::Literal`] token each (their *content* is never
//!   analyzed);
//! * lifetimes (`'a`, `'static`) as [`Tok::Lifetime`], disambiguated from
//!   char literals by the closing quote;
//! * numeric literals (underscores, suffixes, floats with exponents) as
//!   [`Tok::Literal`];
//! * line and nested block comments dropped, with `ad-lint: allow(rule,…)`
//!   markers collected per line (see [`Lexed::allows`]);
//! * everything else as single-character [`Tok::Punct`] — multi-character
//!   operators (`::`, `=>`, `||`) are left to consumers, which is safe
//!   because adjacent `Punct`s can only have come from adjacent source
//!   characters (whitespace always separates tokens here).
//!
//! Every token carries its 1-based source line for reporting.

use std::collections::HashMap;

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword. `raw` marks raw-identifier syntax
    /// (`r#name`); `name` never includes the `r#` prefix, so `r#tx` and
    /// `tx` compare equal by name (they *are* the same identifier in Rust)
    /// while staying distinguishable for diagnostics.
    Ident {
        /// The identifier text without any `r#` prefix.
        name: String,
        /// Was this written with raw-identifier syntax?
        raw: bool,
    },
    /// A lifetime such as `'a` (the name excludes the tick).
    Lifetime(String),
    /// Any literal: string/raw-string/byte-string/char/byte/numeric. The
    /// content is deliberately not kept — rules never look inside
    /// literals; the token exists so adjacency is preserved.
    Literal,
    /// A single punctuation character.
    Punct(char),
}

impl Tok {
    /// The identifier name, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident { name, .. } => Some(name.as_str()),
            _ => None,
        }
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// Lexer output: the token stream plus the allow-marker table.
#[derive(Debug)]
pub struct Lexed {
    /// Tokens with their 1-based source lines.
    pub toks: Vec<(Tok, usize)>,
    /// `// ad-lint: allow(rule, …)` markers found in comments, keyed by the
    /// line the comment starts on. `all` is a valid wildcard rule name.
    pub allows: HashMap<usize, Vec<String>>,
}

impl Lexed {
    /// Is `rule` suppressed on `line` (marker on the same or previous
    /// line)?
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|rs| rs.iter().any(|r| r == rule || r == "all"))
        })
    }
}

/// Lex one file's source text.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        toks: Vec::new(),
        allows: HashMap::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    toks: Vec<(Tok, usize)>,
    allows: HashMap<usize, Vec<String>>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '\'' => self.tick(),
                '"' => {
                    let line = self.line;
                    self.bump();
                    self.string_body();
                    self.toks.push((Tok::Literal, line));
                }
                _ if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.toks.push((Tok::Punct(c), line));
                }
            }
        }
        Lexed {
            toks: self.toks,
            allows: self.allows,
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.i;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.record_allow(&text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.i;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.record_allow(&text, line);
    }

    fn record_allow(&mut self, text: &str, line: usize) {
        // Doc comments (`///`, `//!`, `/**`, `/*!`) *describe* the marker
        // syntax (this crate's own docs do); only plain comments direct
        // the scanner.
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            return;
        }
        let Some(pos) = text.find("ad-lint:") else {
            return;
        };
        let rest = &text[pos + "ad-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            return;
        };
        let Some(close) = rest[open..].find(')') else {
            return;
        };
        for rule in rest[open + "allow(".len()..open + close].split(',') {
            self.allows
                .entry(line)
                .or_default()
                .push(rule.trim().to_string());
        }
    }

    /// `'` starts either a lifetime (`'a`) or a char literal (`'a'`,
    /// `'\n'`). A char literal closes with a `'`; a lifetime is a tick
    /// followed by an identifier with *no* closing quote.
    fn tick(&mut self) {
        let line = self.line;
        self.bump(); // the tick
        if self.peek(0) == Some('\\') {
            // Escaped char literal: consume to the closing quote.
            self.bump();
            while let Some(c) = self.bump() {
                if c == '\'' {
                    break;
                }
            }
            self.toks.push((Tok::Literal, line));
            return;
        }
        // A single non-identifier character closed by a quote: `'"'`,
        // `','`, `'{'` — a char literal (never a lifetime). Missing this
        // leaves the `"` of `'"'` to open a phantom string and desync
        // string-mode for the rest of the file.
        if self
            .peek(0)
            .is_some_and(|c| !(c.is_alphanumeric() || c == '_'))
            && self.peek(1) == Some('\'')
        {
            self.bump();
            self.bump();
            self.toks.push((Tok::Literal, line));
            return;
        }
        // Collect an identifier-shaped run after the tick.
        let start = self.i;
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.bump();
        }
        let name: String = self.chars[start..self.i].iter().collect();
        if self.peek(0) == Some('\'') {
            // `'x'` — a char literal (the run between quotes is one char,
            // but we do not need to validate that).
            self.bump();
            self.toks.push((Tok::Literal, line));
        } else if name.is_empty() {
            // A bare tick (macro-ish input); keep it as punctuation.
            self.toks.push((Tok::Punct('\''), line));
        } else {
            self.toks.push((Tok::Lifetime(name), line));
        }
    }

    /// Consume a `"`-opened string body (the opening quote is already
    /// consumed), honoring escapes.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consume a raw-string body after the prefix: `#…#"` with `hashes`
    /// leading hash characters already counted and consumed, and the
    /// opening quote consumed too. Ends at `"` followed by `hashes`
    /// hashes.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut k = 0;
                while k < hashes && self.peek(k) == Some('#') {
                    k += 1;
                }
                if k == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return;
                }
            }
        }
    }

    /// An identifier-start character: an identifier, a keyword, a raw
    /// identifier (`r#name`), or a prefixed literal (`r"…"`, `b"…"`,
    /// `br#"…"#`, `b'x'`, `c"…"`).
    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let start = self.i;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let word: String = self.chars[start..self.i].iter().collect();

        // Prefixed string/char literals: the identifier run is exactly the
        // prefix and the next char opens the literal.
        match self.peek(0) {
            Some('"') if matches!(word.as_str(), "r" | "b" | "br" | "c" | "cr") => {
                self.bump();
                if word.starts_with('r') || word.ends_with('r') {
                    self.raw_string_body(0);
                } else {
                    self.string_body();
                }
                self.toks.push((Tok::Literal, line));
                return;
            }
            Some('#') if matches!(word.as_str(), "r" | "br" | "cr") => {
                // Possible raw string with hashes — or a raw identifier
                // (`r#name`). Look past the hashes.
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..=hashes {
                        self.bump(); // hashes + opening quote
                    }
                    self.raw_string_body(hashes);
                    self.toks.push((Tok::Literal, line));
                    return;
                }
                if word == "r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
                    // Raw identifier: `r#` then an identifier.
                    self.bump(); // '#'
                    let istart = self.i;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    let name: String = self.chars[istart..self.i].iter().collect();
                    self.toks.push((Tok::Ident { name, raw: true }, line));
                    return;
                }
                // Fall through: `r` (or `br`) is a plain identifier and the
                // `#` will lex as punctuation on the next iteration.
            }
            Some('\'') if word == "b" => {
                // Byte literal b'x' / b'\n'. Distinguish from `b 'label`
                // (lifetime after an ident is always preceded by `<` or
                // `&`, never a bare ident) — in practice `b'` is a byte
                // literal.
                self.bump(); // tick
                if self.peek(0) == Some('\\') {
                    self.bump();
                }
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.toks.push((Tok::Literal, line));
                return;
            }
            _ => {}
        }
        self.toks.push((
            Tok::Ident {
                name: word,
                raw: false,
            },
            line,
        ));
    }

    /// A numeric literal: digits, underscores, `.` fractions, exponents,
    /// radix prefixes, and type suffixes — all reduced to one token.
    fn number(&mut self) {
        let line = self.line;
        // Radix prefix?
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                self.bump();
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump();
            }
            // Fraction — but not `1.method()` or `1..2`.
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e' | 'E'))
                && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                    || (matches!(self.peek(1), Some('+' | '-'))
                        && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
            {
                self.bump();
                if matches!(self.peek(0), Some('+' | '-')) {
                    self.bump();
                }
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
        }
        // Type suffix (`u64`, `f32`, `usize`): an identifier run glued on.
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        self.toks.push((Tok::Literal, line));
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|(t, _)| t.ident().map(str::to_string))
            .collect()
    }

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).toks.into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn raw_identifier_is_one_token_with_the_bare_name() {
        let l = lex("let r#tx = 1; r#tx.send();");
        let raws: Vec<_> = l
            .toks
            .iter()
            .filter(|(t, _)| matches!(t, Tok::Ident { raw: true, .. }))
            .collect();
        assert_eq!(raws.len(), 2);
        assert!(raws.iter().all(|(t, _)| t.ident() == Some("tx")));
        // The v1 failure mode: no phantom separate `r` identifier.
        assert!(!names("r#tx").contains(&"r".to_string()));
    }

    #[test]
    fn raw_strings_do_not_swallow_code() {
        // After the raw string closes, `tx` is a real token again.
        let l = lex(r##"let s = r#"tx in a string"#; tx.read();"##);
        let names: Vec<_> = l.toks.iter().filter_map(|(t, _)| t.ident()).collect();
        assert_eq!(names, vec!["let", "s", "tx", "read"]);
    }

    #[test]
    fn raw_string_with_zero_hashes() {
        assert_eq!(names(r#"r"no tx here" after"#), vec!["after"]);
    }

    #[test]
    fn byte_and_c_strings_are_literals() {
        assert_eq!(names(r##"b"tx" br#"tx"# c"tx" done"##), vec!["done"]);
    }

    #[test]
    fn byte_char_and_char_literals() {
        assert_eq!(names(r"b'x' 'y' '\n' rest"), vec!["rest"]);
    }

    #[test]
    fn non_identifier_char_literals_do_not_desync_string_mode() {
        // `'"'` must lex as one Literal; if its quote leaks, the lexer
        // flips into string mode and swallows the rest of the file.
        assert_eq!(names("let q = '\"'; after();"), vec!["let", "q", "after"]);
        assert_eq!(names("'{' '}' ',' '(' rest"), vec!["rest"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("&'a tx<'static>");
        assert!(toks.contains(&Tok::Lifetime("a".into())));
        assert!(toks.contains(&Tok::Lifetime("static".into())));
        assert!(toks.iter().any(|t| t.ident() == Some("tx")));
        assert!(!toks.contains(&Tok::Literal));
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            names("/* outer /* tx */ still comment */ code"),
            vec!["code"]
        );
    }

    #[test]
    fn numeric_literals_are_single_tokens() {
        for src in ["1_000u64", "0xFF_u8", "1.5e-3", "0b1010", "1.0f32", "7."] {
            let toks = kinds(src);
            // `7.` lexes as Literal + Punct('.'), everything else as one
            // Literal; none of them leak identifier fragments like `u64`.
            assert!(
                toks.iter()
                    .all(|t| matches!(t, Tok::Literal | Tok::Punct('.'))),
                "{src}: {toks:?}"
            );
        }
    }

    #[test]
    fn allow_markers_collected_with_lines() {
        let l = lex("let a = 1;\n// ad-lint: allow(rule-x, rule-y)\nlet b = 2;");
        assert_eq!(
            l.allows.get(&2),
            Some(&vec!["rule-x".to_string(), "rule-y".to_string()])
        );
        assert!(l.allowed(2, "rule-x"));
        assert!(l.allowed(3, "rule-y"), "previous-line marker applies");
        assert!(!l.allowed(1, "rule-x"));
    }

    #[test]
    fn doc_comments_do_not_carry_allow_markers() {
        // Docs *describing* the marker syntax must not suppress findings
        // (or trip `--check-allows` on placeholder rule names).
        let l = lex("/// ad-lint: allow(all)\n//! ad-lint: allow(all)\nx();");
        assert!(l.allows.is_empty(), "{:?}", l.allows);
        let l = lex("/*! ad-lint: allow(all) */ x();");
        assert!(l.allows.is_empty());
    }

    #[test]
    fn block_comment_allow_marker_keyed_to_start_line() {
        let l = lex("/* ad-lint: allow(all) */ x();");
        assert!(l.allowed(1, "anything"));
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        assert_eq!(
            names("// atomically(|tx| v.load())\nlet s = \"Ordering::SeqCst\";"),
            vec!["let", "s"]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let l = lex("a\n\"two\nline string\"\nb");
        let b = l.toks.iter().find(|(t, _)| t.ident() == Some("b")).unwrap();
        assert_eq!(b.1, 4);
    }

    #[test]
    fn shebang_free_punct_passthrough() {
        let toks = kinds("#[cfg(test)]");
        assert!(toks.contains(&Tok::Punct('#')));
        assert!(toks.iter().any(|t| t.ident() == Some("cfg")));
    }
}
