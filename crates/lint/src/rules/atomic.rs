//! Rules that bind *atomic* regions: `direct-access-in-atomic`,
//! `blocking-in-atomic`, and `cross-runtime-access`.

use crate::tree::{Group, Node};

/// Non-transactional accessor shapes inside an atomic closure.
///
/// `.load()` with no arguments is a `TVar` direct read (an atomics-facade
/// `load(Ordering::..)` has an argument); `.store(v)` without an
/// `Ordering` argument is a `TVar` direct write; `update_locked` and
/// `peek_unsynchronized` are the named escape hatches.
pub fn direct_access(name: &str, args: &Group) -> Option<String> {
    let bad = match name {
        "load" => args.children.is_empty(),
        "store" => !mentions_ident(args, "Ordering"),
        "update_locked" | "peek_unsynchronized" => true,
        _ => false,
    };
    bad.then(|| {
        format!(
            "non-transactional accessor `.{name}(...)` inside an atomic closure; \
             go through the transaction (tx.read/tx.write or a subscribing accessor)"
        )
    })
}

/// Blocking method calls that must not appear in a *retryable*
/// (`atomically`) closure. The caller has already established that the
/// receiver is not the transaction (`tx.write` is a transactional write,
/// not socket I/O).
///
/// Durability: `sync_all`/`sync_data`/`fsync`; stream I/O: `write`,
/// `write_all`, `flush`, `read_exact`; synchronization: `lock`, `join`,
/// channel `recv`/`recv_timeout`; checkpointing (`ad-kv`, each an
/// fsync-plus-rename or an unbounded wait under the hood):
/// `checkpoint`, `write_and_publish`, `rotate`, `drop_rotated`,
/// `wait_applied_through`.
pub fn blocking_method(name: &str) -> Option<String> {
    const BLOCKING: &[&str] = &[
        "sync_all",
        "sync_data",
        "fsync",
        "write",
        "write_all",
        "flush",
        "read_exact",
        "lock",
        "join",
        "recv",
        "recv_timeout",
        "checkpoint",
        "write_and_publish",
        "rotate",
        "drop_rotated",
        "wait_applied_through",
    ];
    BLOCKING.contains(&name).then(|| {
        format!(
            "blocking call `.{name}(...)` inside an `atomically` closure: the closure \
             may re-execute on conflict and must stay side-effect free; move the \
             blocking work into an `atomic_defer*` op (post-commit, under the held \
             TxLocks) or a `synchronized` irrevocable section"
        )
    })
}

/// Entering another runtime's transaction from inside a live atomic
/// closure: `other.atomically(...)` where `other` is a *named* receiver
/// different from the named host of the enclosing region. (When either
/// side is unnamed — a bare `atomically(...)` import or a receiver
/// reached through a call chain — ownership cannot be proven lexically
/// and the rule stays silent.)
pub fn cross_runtime_entry_msg(entry: &str, host: &str, other: &str) -> String {
    format!(
        "`{other}.{entry}(...)` inside a transaction hosted by `{host}`: each \
         runtime is its own island (clock, quiescence, TxLocks), so the inner \
         commit is invisible to the outer validation and re-executes on every \
         outer retry. Route cross-runtime writes through the shard router's \
         prepare/ack protocol (DESIGN.md §14)"
    )
}

/// A store entry point called from inside a live atomic closure. Each of
/// these opens its *own* transaction on the store's own runtime — by
/// construction a different runtime than the one hosting the enclosing
/// closure (a store never re-enters itself transactionally). Exact,
/// store-specific names only: generic container methods (`get`, `insert`)
/// must not match.
pub fn cross_runtime_store(name: &str) -> Option<String> {
    const STORE_ENTRY: &[&str] = &[
        "write_batch",
        "write_batch_coordinated",
        "apply_prepared",
        "get_many",
    ];
    STORE_ENTRY.contains(&name).then(|| {
        format!(
            "store entry point `.{name}(...)` inside an atomic closure: it \
             commits its own transaction on the store's runtime, which the \
             enclosing transaction's validation never sees — on an outer retry \
             the store-side effect repeats. Do the store call before/after the \
             transaction, or route it through the shard router (DESIGN.md §14)"
        )
    })
}

/// `thread::sleep` (free-function form) inside an `atomically` closure.
pub fn sleep_msg() -> String {
    "`sleep` inside an `atomically` closure: the closure may re-execute on \
     conflict and the sleep multiplies the window for conflicting writers; \
     defer the delay or use `synchronized`"
        .to_string()
}

fn mentions_ident(g: &Group, needle: &str) -> bool {
    g.children.iter().any(|n| match n {
        Node::Group(inner) => mentions_ident(inner, needle),
        _ => n.ident() == Some(needle),
    })
}
