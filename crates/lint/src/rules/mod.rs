//! Rule inventory: names, the atomics allowlist, and the per-rule match
//! logic (split by the region each rule binds to).
//!
//! | rule | region | what it catches |
//! |---|---|---|
//! | `direct-access-in-atomic` | atomic | `TVar::load/store`, `update_locked`, `peek_unsynchronized` bypassing the transaction |
//! | `blocking-in-atomic` | `atomically` only | fsync/socket/lock/recv/sleep — blocking calls in a *retryable* closure |
//! | `defer-captures-tx` | deferred | the deferred closure references the (dead-after-commit) transaction |
//! | `non-send-capture` | deferred | `Rc`/`RefCell`/raw-pointer shapes that cannot cross to a pool worker |
//! | `panic-in-deferred` | deferred | `unwrap`/`expect`/`panic!`/`assert!` — a panicking op poisons its whole batch (DESIGN.md §10) |
//! | `defer-waits-on-defer` | deferred | waiting on deferred results (or re-entering a transaction) from inside a deferred op — single-worker self-deadlock (DESIGN.md §10) |
//! | `defer-after-write` | atomic | `atomic_defer*` lexically after the first `tx.write` (DESIGN.md §9 ordering) |
//! | `cross-runtime-access` | atomic | entering another runtime's transaction, or a store entry point (own runtime, own transaction) from inside a live atomic closure (DESIGN.md §14) |
//! | `seqcst-outside-allowlist` | any | `Ordering::SeqCst` outside the audited fence core |
//! | `raw-atomic` | any | `std/core::sync::atomic` bypassing the loom-instrumented facade |

pub mod atomic;
pub mod deferred;
pub mod ordering;

/// Rule: non-transactional accessor lexically inside an
/// `atomically`/`synchronized` closure (outside any deferred-op closure,
/// where direct access under the held lock is the point).
pub const RULE_DIRECT_ACCESS: &str = "direct-access-in-atomic";
/// Rule: the deferred closure of an `atomic_defer*` call captures a
/// binding resolved to the transaction (or mentions the `Tx` type).
pub const RULE_DEFER_CAPTURES_TX: &str = "defer-captures-tx";
/// Rule: the deferred closure of an `atomic_defer*` call mentions a
/// non-`Send` shape — `Rc`, `RefCell`, or a raw-pointer type. Deferred
/// operations may run on a pool worker thread (`DeferExecCfg::Pool`); the
/// `Send` bound catches direct captures, but `unsafe impl Send` wrappers
/// and pointer laundering compile fine — the lint keeps the contract
/// visible lexically either way.
pub const RULE_NON_SEND_CAPTURE: &str = "non-send-capture";
/// Rule: `Ordering::SeqCst` outside the fence-disciplined allowlist.
pub const RULE_SEQCST: &str = "seqcst-outside-allowlist";
/// Rule: raw `std::sync::atomic` outside the allowlist (use the
/// `ad_support::sync::atomic` facade so loom models instrument the access).
pub const RULE_RAW_ATOMIC: &str = "raw-atomic";
/// Rule: a blocking call inside an `atomically` closure (outside its
/// deferred closures). Transactions retry: blocking work belongs in a
/// deferred op (run once, post-commit, under the held TxLocks) or in a
/// `synchronized` irrevocable section.
pub const RULE_BLOCKING_IN_ATOMIC: &str = "blocking-in-atomic";
/// Rule: a deferred closure waits on deferred results (`DeferHandle::wait`
/// / `wait_all` / `store.sync()`) or re-enters a transaction — the static
/// half of the single-worker self-deadlock caveat (DESIGN.md §10 i).
pub const RULE_DEFER_WAITS: &str = "defer-waits-on-defer";
/// Rule: a deferred closure can panic (`unwrap`/`expect`/`panic!`/
/// `assert!`). A panicking deferred op poisons its whole post-commit
/// batch: later ops in the batch are skipped, though locks still release
/// (DESIGN.md §10 ii).
pub const RULE_PANIC_IN_DEFERRED: &str = "panic-in-deferred";
/// Rule: an `atomic_defer*` call lexically after the first `tx.write` in
/// the same atomic closure. Deferral must precede the first write so a
/// conflict abort cannot leave a half-registered deferral (DESIGN.md §9 —
/// the KV commit protocol relies on this ordering).
pub const RULE_DEFER_AFTER_WRITE: &str = "defer-after-write";
/// Rule: a live atomic closure touches state owned by a *different*
/// runtime — `other.atomically(...)` whose named receiver differs from
/// the region's host runtime, or a store entry point (`write_batch`,
/// `apply_prepared`, ...) that opens its own transaction on its own
/// runtime. Every runtime is its own island (clock, quiescence, TxLocks):
/// the inner commit is invisible to the outer validation, the outer
/// closure can retry and repeat the inner (already-committed) effect, and
/// coordinator-holds-locks deadlocks become possible. Cross-runtime work
/// goes through the `ad-shard` router's prepare/ack protocol (DESIGN.md
/// §14); router internals carry the usual allow-marker.
pub const RULE_CROSS_RUNTIME: &str = "cross-runtime-access";

/// Every rule, for `--check-allows` (stale-marker detection) and docs.
pub const ALL_RULES: &[&str] = &[
    RULE_DIRECT_ACCESS,
    RULE_BLOCKING_IN_ATOMIC,
    RULE_DEFER_CAPTURES_TX,
    RULE_NON_SEND_CAPTURE,
    RULE_PANIC_IN_DEFERRED,
    RULE_DEFER_WAITS,
    RULE_DEFER_AFTER_WRITE,
    RULE_CROSS_RUNTIME,
    RULE_SEQCST,
    RULE_RAW_ATOMIC,
];

/// The rules that bind deferred-op closures. During the dataflow re-walk
/// of a `let`-bound closure at its `atomic_defer*` call site, only these
/// fire (everything else was already reported at the binding site).
pub const DEFER_RULES: &[&str] = &[
    RULE_DEFER_CAPTURES_TX,
    RULE_NON_SEND_CAPTURE,
    RULE_PANIC_IN_DEFERRED,
    RULE_DEFER_WAITS,
];

/// Files (path-suffix/substring match, `/`-normalized) where `SeqCst` and
/// raw `std::sync::atomic` are part of the audited fence discipline:
/// the epoch-reclamation core, the registry and clock protocols, the
/// `ad-support` facade/model layer itself, and the `verify` model suites
/// (compiled only under `--cfg loom` test builds).
///
/// `tsc.rs` (the calibrated TSC-coarse timestamp source, OBSERVABILITY.md)
/// is listed explicitly even though the blanket `crates/support/` entry
/// covers it: its raw `rdtsc`/counter reads and `SeqCst` calibration
/// stores are audited as a unit, and the entry must survive any future
/// narrowing of the blanket.
pub const ATOMICS_ALLOWLIST: &[&str] = &[
    "crates/support/",
    "crates/support/src/tsc.rs",
    "crates/stm/src/snapshot.rs",
    "crates/stm/src/registry.rs",
    "crates/stm/src/clock.rs",
    "src/verify",
];
