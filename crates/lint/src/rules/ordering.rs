//! Region-independent rules (`seqcst-outside-allowlist`, `raw-atomic`)
//! and the defer-before-first-write ordering rule (`defer-after-write`).

/// `Ordering::SeqCst` outside the audited fence core.
pub fn seqcst_msg() -> String {
    "Ordering::SeqCst outside the fence-disciplined core; use the \
     weakest ordering that is argued correct, or move the protocol \
     into the audited allowlist"
        .to_string()
}

/// Raw `std::sync::atomic` / `core::sync::atomic` outside the allowlist.
pub fn raw_atomic_msg(root: &str) -> String {
    format!(
        "raw {root}::sync::atomic; use ad_support::sync::atomic so \
         loom models instrument the access"
    )
}

/// An `atomic_defer*` call after the first `tx.write` in the same atomic
/// closure.
pub fn defer_after_write_msg(call: &str, write_line: usize) -> String {
    format!(
        "`{call}` after the first `tx.write` (line {write_line}) in this atomic \
         closure: register deferrals before the first write, so an abort between \
         write-set population and commit cannot observe a half-built deferral \
         batch (defer-before-first-write, DESIGN.md §9)"
    )
}
