//! Rules that bind *deferred-op* closures: `defer-captures-tx`,
//! `non-send-capture`, `panic-in-deferred`, and `defer-waits-on-defer`.

/// The deferred closure references the transaction (a binding resolved to
/// `Tx`, or the `Tx` type itself).
pub fn captures_tx_msg() -> String {
    "deferred closure captures the transaction: deferred operations run \
     after commit and must not touch `Tx` (or anything read through it)"
        .to_string()
}

/// Non-`Send` type names mentioned inside a deferred closure.
pub fn non_send_ident(name: &str) -> Option<String> {
    matches!(name, "Rc" | "RefCell").then(|| {
        format!(
            "deferred closure mentions `{name}`, which is not Send: deferred \
             operations may run on a pool worker thread; use Arc (and \
             Mutex/atomics for interior mutability) instead"
        )
    })
}

/// Raw-pointer type `*const T` / `*mut T` in a deferred closure.
pub fn raw_pointer_msg(kw: &str) -> String {
    format!(
        "raw pointer type `*{kw} _` in a deferred closure: deferred \
         operations may run on a pool worker thread and their captures \
         must be Send; pass an owning handle (Arc) instead"
    )
}

/// Panicking method calls in a deferred closure. Exact names only:
/// `unwrap_or`/`unwrap_or_else`/`expect_err` and friends do not panic on
/// the hot path and must not match.
pub fn panic_method(name: &str) -> Option<String> {
    matches!(name, "unwrap" | "expect").then(|| {
        format!(
            "`.{name}(...)` in a deferred closure: a panicking deferred op \
             poisons its whole post-commit batch — later ops are skipped \
             (locks still release; DESIGN.md §10). Handle the error, or \
             annotate if aborting the batch is the intended policy"
        )
    })
}

/// Panicking macros in a deferred closure (`debug_assert*` deliberately
/// excluded — it is the documented vehicle for debug-only guards).
pub fn panic_macro(name: &str) -> Option<String> {
    matches!(
        name,
        "panic" | "assert" | "assert_eq" | "assert_ne" | "unreachable" | "todo" | "unimplemented"
    )
    .then(|| {
        format!(
            "`{name}!` in a deferred closure: a panicking deferred op poisons \
             its whole post-commit batch — later ops are skipped (locks still \
             release; DESIGN.md §10). Handle the error, or annotate if \
             aborting the batch is the intended policy"
        )
    })
}

/// Waiting on deferred results from inside a deferred op.
pub fn wait_method(name: &str) -> Option<String> {
    matches!(name, "wait" | "wait_all" | "sync").then(|| {
        format!(
            "`{name}` inside a deferred closure waits on deferred work: on a \
             single-worker pool the waited-on op can be queued *behind* this \
             one and never run — self-deadlock (DESIGN.md §10). Deferred ops \
             must not synchronize with other deferred ops"
        )
    })
}

/// Re-entering the transactional runtime from inside a deferred op.
pub fn reentry_msg(entry: &str) -> String {
    format!(
        "`{entry}` inside a deferred closure re-enters the runtime: the \
         nested transaction can park the pool worker (retry/irrevocability) \
         while ops queued behind it — possibly its own dependencies — never \
         run (DESIGN.md §10). Hand the work to a non-worker thread instead"
    )
}
