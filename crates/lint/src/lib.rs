//! # ad-lint — a token-tree TM-contract checker for this workspace
//!
//! The atomic-deferral API has contracts the Rust type system cannot see
//! (paper §4; DESIGN.md §7.1, §9, §10; VERIFICATION.md):
//!
//! * Inside an `atomically`/`synchronized` closure, shared state must be
//!   accessed through the transaction (`tx.read`/`tx.write` or subscribing
//!   accessors), never through the non-transactional escape hatches.
//! * An `atomically` closure may re-execute on conflict: blocking calls
//!   (fsync, socket writes, lock acquisition, channel receives, sleeps)
//!   belong in deferred ops or `synchronized` sections, not in the
//!   retryable path.
//! * A deferred operation runs *after* its transaction commits: it must
//!   not capture the `Tx`, must be `Send`-shaped (pool execution), must
//!   not panic (a panicking op poisons its whole batch), and must not
//!   wait on other deferred work (single-worker self-deadlock).
//! * Deferrals must be registered before the transaction's first write
//!   (defer-before-first-write, the ordering the KV commit protocol
//!   relies on).
//! * A live atomic closure must not touch state owned by a *different*
//!   runtime — another runtime's `atomically`, or a store entry point
//!   that commits its own transaction on its own runtime. Cross-runtime
//!   writes go through the `ad-shard` router (DESIGN.md §14).
//! * `Ordering::SeqCst` and raw `std::sync::atomic` are reserved for the
//!   fence-disciplined core and the `ad-support` facade/model layer.
//!
//! Since v2 the checker is a real (still dependency-free) static-analysis
//! pass instead of a flat lexical scan:
//!
//! 1. [`lexer`] — a hand-rolled Rust lexer: raw identifiers (`r#tx` is
//!    one token named `tx`), raw/byte/C strings with any hash count,
//!    lifetimes vs. char literals, nested block comments, numeric
//!    literals; comments carry the `ad-lint: allow(...)` markers.
//! 2. [`tree`] — brace matching into a token tree, so argument lists,
//!    bodies, and macro invocations are nodes, not paren-depth counters.
//! 3. `scope` (private) — the analysis walk: transactional *regions* (atomic
//!    closure vs. deferred closure vs. plain code), lexical scopes with
//!    *bindings* (the `tx` param of `atomically(|tx| ...)` is the
//!    transaction; `let tx = channel.tx()` is not), descent into macro
//!    invocation bodies, and one level of dataflow (`let op = move ||
//!    ...;` passed by name to `atomic_defer*` is re-walked as a deferred
//!    closure).
//! 4. [`rules`] — the nine rules, each bound to the region it polices.
//!
//! What is still out of scope: type inference (a `Tx` smuggled through a
//! struct field is invisible), macro *expansion* (a macro that itself
//! wraps `atomically` does not open a region), and `match`/`if let`
//! pattern bindings. Every intentional exception in the workspace is
//! visible in the diff as an `// ad-lint: allow(<rule>)` marker on the
//! offending (or preceding) line; `--check-allows` rejects markers that
//! name rules that do not exist.
//!
//! Test code (`#[cfg(test)]`-gated items, `#[test]` functions, `tests/`
//! and `fixtures/` directories) is skipped: tests routinely use the
//! non-transactional accessors to set up and observe state, and that is
//! fine — the contracts above bind production code paths.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::Path;

pub mod lexer;
pub mod protocol;
pub mod rules;
pub mod tree;

mod scope;

pub use rules::{
    ALL_RULES, RULE_BLOCKING_IN_ATOMIC, RULE_CROSS_RUNTIME, RULE_DEFER_AFTER_WRITE,
    RULE_DEFER_CAPTURES_TX, RULE_DEFER_WAITS, RULE_DIRECT_ACCESS, RULE_NON_SEND_CAPTURE,
    RULE_PANIC_IN_DEFERRED, RULE_RAW_ATOMIC, RULE_SEQCST,
};

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// `/`-normalized path as given to the scanner.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// One of the `RULE_*` constants.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed — carried into `--json` output
    /// so CI artifacts are reviewable without checking out the tree.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl Finding {
    /// One JSON object (`{"file":..,"line":..,"rule":..,"message":..,
    /// "snippet":..}`) — hand-rolled, the workspace builds offline.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{},\"snippet\":{}}}",
            json_str(&self.file),
            self.line,
            json_str(self.rule),
            json_str(&self.message),
            json_str(&self.snippet),
        )
    }
}

/// Render findings as a JSON array (pretty enough for an artifact: one
/// object per line).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n  " } else { ",\n  " });
        out.push_str(&f.to_json());
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Scan one file's source. `file` is used for reporting and for the
/// atomics allowlist (match on `/`-normalized substrings).
pub fn scan_source(file: &str, src: &str) -> Vec<Finding> {
    scope::scan(file, src)
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Directories never scanned: build output, VCS, test-only trees, and the
/// lint's own deliberately-bad fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "tests", "benches", "fixtures"];

/// Recursively scan every `.rs` file under `root` (skipping `SKIP_DIRS`)
/// and return all findings, sorted by file and line.
pub fn scan_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for_each_rs(root, SKIP_DIRS, &mut |path| {
        let src = std::fs::read_to_string(path)?;
        let file = path.to_string_lossy().replace('\\', "/");
        findings.extend(scan_source(&file, &src));
        Ok(())
    })?;
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// An `ad-lint: allow(...)` marker naming a rule that does not exist —
/// either a typo (the finding it meant to suppress is live) or a leftover
/// from a removed rule. Both should fail CI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleAllow {
    /// `/`-normalized path.
    pub file: String,
    /// 1-based line of the marker comment.
    pub line: usize,
    /// The unknown rule name the marker used.
    pub rule: String,
}

impl fmt::Display for StaleAllow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: allow marker names unknown rule `{}` (known: {})",
            self.file,
            self.line,
            self.rule,
            rules::ALL_RULES.join(", ")
        )
    }
}

/// Find stale allow markers under `root`. Unlike [`scan_tree`] this walks
/// *everything* except build output and VCS state — a stale marker in a
/// test or fixture is just as misleading as one in production code.
pub fn check_allows_tree(root: &Path) -> std::io::Result<Vec<StaleAllow>> {
    let mut stale = Vec::new();
    for_each_rs(root, &["target", ".git"], &mut |path| {
        let src = std::fs::read_to_string(path)?;
        let file = path.to_string_lossy().replace('\\', "/");
        let lexed = lexer::lex(&src);
        let mut lines: Vec<_> = lexed.allows.iter().collect();
        lines.sort();
        for (line, rs) in lines {
            for r in rs {
                if r != "all" && !rules::ALL_RULES.contains(&r.as_str()) {
                    stale.push(StaleAllow {
                        file: file.clone(),
                        line: *line,
                        rule: r.clone(),
                    });
                }
            }
        }
        Ok(())
    })?;
    stale.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(stale)
}

fn for_each_rs(
    root: &Path,
    skip: &[&str],
    f: &mut dyn FnMut(&Path) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        if dir.is_file() {
            f(&dir)?;
            continue;
        }
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !skip.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                f(&path)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn direct_load_and_store_in_atomic_are_flagged() {
        let src = r#"
            fn f(v: TVar<u64>) {
                atomically(|tx| {
                    let x = v.load();
                    v.store(x + 1);
                    Ok(())
                });
            }
        "#;
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DIRECT_ACCESS, RULE_DIRECT_ACCESS]);
        assert_eq!(f[0].line, 4);
        assert_eq!(f[1].line, 5);
        assert_eq!(f[0].snippet, "let x = v.load();");
    }

    #[test]
    fn atomic_store_with_ordering_is_not_a_tvar_store() {
        let src = "
            fn f(flag: AtomicBool) {
                atomically(|tx| { flag.store(true, Ordering::Release); Ok(()) });
            }
        ";
        // The Ordering argument marks this as a (facade) atomic, not a
        // TVar accessor — a different contract, not this rule's business.
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), Vec::<&str>::new());
    }

    #[test]
    fn update_locked_and_peek_in_atomic_are_flagged() {
        let src = "
            fn f(o: Defer<Obj>) {
                synchronized(|tx| {
                    o.peek_unsynchronized().a.update_locked(|x| x);
                    Ok(())
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DIRECT_ACCESS, RULE_DIRECT_ACCESS]);
    }

    #[test]
    fn deferred_closure_is_exempt_from_direct_access() {
        let src = "
            fn f(o: Defer<Obj>) {
                atomically(|tx| {
                    let o2 = o.clone();
                    atomic_defer(tx, &[&o.clone()], move || {
                        o2.locked().a.store(1);
                        o2.locked().b.update_locked(|x| x + 1);
                    })
                });
            }
        ";
        // Direct access *is* the point of a deferred op (the lock is held);
        // and the `tx` in argument position 1 is outside the closure.
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), Vec::<&str>::new());
    }

    #[test]
    fn deferred_closure_capturing_tx_is_flagged() {
        let src = "
            fn f(o: Defer<Obj>, v: TVar<u64>) {
                atomically(|tx| {
                    atomic_defer(tx, &[&o.clone()], move || {
                        let _ = tx.read(&v);
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DEFER_CAPTURES_TX]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn unordered_defer_threshold_is_one_comma() {
        let src = "
            fn f() {
                atomically(|tx| {
                    atomic_defer_unordered(tx, move || {
                        tx.commit();
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DEFER_CAPTURES_TX]);
    }

    #[test]
    fn non_send_shapes_in_deferred_closure_are_flagged() {
        let src = "
            fn f(o: Defer<Obj>, n: Rc<u64>) {
                atomically(|tx| {
                    atomic_defer(tx, &[&o.clone()], move || {
                        let _ = Rc::strong_count(&n);
                        let p = 0usize as *mut u64;
                        let q = p as *const u64;
                        drop(q);
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_NON_SEND_CAPTURE; 3]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn non_send_shapes_outside_deferred_closures_are_fine() {
        // `Rc` in ordinary code, in an atomic closure, or in the defer
        // call's argument list (before the closure) is not this rule's
        // business — only the deferred op itself crosses threads. And a
        // multiplication is not a raw-pointer type.
        let src = "
            fn f(o: Defer<Obj>, n: Rc<u64>, k: usize) {
                let _ = Rc::strong_count(&n);
                atomically(|tx| {
                    let m = Rc::clone(&n);
                    atomic_defer_tracked(tx, &[&o.clone()], move || {
                        let _ = k * 2;
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), Vec::<&str>::new());
    }

    #[test]
    fn tracked_defer_threshold_is_two_commas() {
        let src = "
            fn f(o: Defer<Obj>) {
                atomically(|tx| {
                    atomic_defer_tracked(tx, &[&o.clone()], move || {
                        tx.commit();
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DEFER_CAPTURES_TX]);
    }

    #[test]
    fn seqcst_flagged_outside_allowlist_only() {
        let src = "fn f(a: AtomicU64) { a.load(Ordering::SeqCst); }";
        assert_eq!(
            rules_of(&scan_source("crates/demo/src/lib.rs", src)),
            vec![RULE_SEQCST]
        );
        assert_eq!(
            rules_of(&scan_source("crates/stm/src/snapshot.rs", src)),
            Vec::<&str>::new()
        );
        assert_eq!(
            rules_of(&scan_source("crates/support/src/model.rs", src)),
            Vec::<&str>::new()
        );
        // The audited TSC timestamp source (raw counter reads + SeqCst
        // calibration) has its own allowlist entry; keep it covered.
        assert_eq!(
            rules_of(&scan_source("crates/support/src/tsc.rs", src)),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn raw_atomic_path_flagged_outside_allowlist_only() {
        let src = "use std::sync::atomic::AtomicU64;";
        assert_eq!(
            rules_of(&scan_source("crates/stm/src/tx.rs", src)),
            vec![RULE_RAW_ATOMIC]
        );
        assert_eq!(
            rules_of(&scan_source("crates/support/src/sync.rs", src)),
            Vec::<&str>::new()
        );
        // Unrelated std paths are fine.
        assert_eq!(
            rules_of(&scan_source("crates/stm/src/tx.rs", "use std::sync::Arc;")),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn allow_marker_suppresses_on_same_or_previous_line() {
        let src = "
            fn f(a: AtomicU64) {
                a.load(Ordering::SeqCst); // ad-lint: allow(seqcst-outside-allowlist)
                // ad-lint: allow(seqcst-outside-allowlist)
                a.load(Ordering::SeqCst);
                a.load(Ordering::SeqCst);
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_SEQCST]);
        assert_eq!(f[0].line, 6, "only the unannotated use survives");
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "
            fn prod(v: TVar<u64>) {
                atomically(|tx| { v.load(); Ok(()) });
            }
            #[cfg(all(test, not(loom)))]
            mod tests {
                fn t(v: TVar<u64>) {
                    atomically(|tx| { v.load(); Ok(()) });
                    let x = Ordering::SeqCst;
                }
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DIRECT_ACCESS]);
        assert_eq!(f[0].line, 3, "only the production occurrence");
    }

    #[test]
    fn cfg_not_test_items_are_scanned() {
        // `not(test)` gates an item *out* of tests — that is production
        // code and must be checked (the v1 text-matcher got this wrong).
        let src = "
            #[cfg(not(test))]
            fn prod(v: TVar<u64>) {
                atomically(|tx| { v.load(); Ok(()) });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DIRECT_ACCESS]);
    }

    #[test]
    fn comments_and_strings_do_not_produce_findings() {
        let src = r##"
            // atomically(|tx| v.load());
            /* Ordering::SeqCst */
            fn f() {
                let s = "atomically(|tx| v.load()) Ordering::SeqCst";
                let r = r#"std::sync::atomic"#;
            }
        "##;
        assert_eq!(
            rules_of(&scan_source("crates/demo/src/lib.rs", src)),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn nested_transaction_inside_deferred_op_is_checked_again() {
        // A deferred op that opens its own transaction is (a) a
        // self-deadlock hazard on a single-worker pool — the new
        // defer-waits-on-defer rule — and (b) once inside the nested
        // atomic closure, the atomic rules apply again.
        let src = "
            fn f(o: Defer<Obj>, v: TVar<u64>) {
                atomically(|tx| {
                    atomic_defer(tx, &[&o.clone()], move || {
                        atomically(|tx2| { v.load(); Ok(()) });
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DEFER_WAITS, RULE_DIRECT_ACCESS]);
        assert_eq!(f[0].line, 5);
        assert_eq!(f[1].line, 5);
    }

    #[test]
    fn cfg_test_attribute_on_fn_is_skipped() {
        let src = "
            #[cfg(test)]
            pub(crate) fn force(v: &V) {
                v.version.store(1, Ordering::SeqCst);
            }
            fn prod() { let o = Ordering::SeqCst; }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_SEQCST]);
        assert_eq!(f[0].line, 6);
    }

    // -- v2: the new rules -------------------------------------------------

    #[test]
    fn blocking_calls_in_atomically_are_flagged() {
        let src = "
            fn f(file: File, rt: &Runtime) {
                rt.atomically(|tx| {
                    file.sync_all();
                    std::thread::sleep(d);
                    Ok(())
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(
            rules_of(&f),
            vec![RULE_BLOCKING_IN_ATOMIC, RULE_BLOCKING_IN_ATOMIC]
        );
    }

    #[test]
    fn tx_write_is_not_blocking_io() {
        // `tx.write(...)` is the transactional write API; `w.write(...)`
        // on anything else inside `atomically` is stream I/O.
        let src = "
            fn f(v: TVar<u64>, w: Socket) {
                atomically(|tx| {
                    tx.write(&v, 1)?;
                    Ok(())
                });
                atomically(|tx| {
                    w.write(buf);
                    Ok(())
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_BLOCKING_IN_ATOMIC]);
        assert_eq!(f[0].line, 8);
    }

    #[test]
    fn synchronized_sections_may_block() {
        // `synchronized` is irrevocable and serial — blocking I/O there is
        // the documented pattern (iobench's Irrevocable arm).
        let src = "
            fn f(file: File) {
                synchronized(|tx| {
                    file.sync_all();
                    Ok(())
                });
            }
        ";
        assert_eq!(
            rules_of(&scan_source("crates/demo/src/lib.rs", src)),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn deferred_closures_may_block() {
        let src = "
            fn f(file: Arc<File>, v: TVar<u64>) {
                atomically(|tx| {
                    let f2 = file.clone();
                    atomic_defer_unordered(tx, move || {
                        f2.sync_all().ok();
                    })
                });
            }
        ";
        assert_eq!(
            rules_of(&scan_source("crates/demo/src/lib.rs", src)),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn defer_waiting_on_defer_is_flagged() {
        let src = "
            fn f(h: DeferHandle<u64>, store: Store) {
                atomically(|tx| {
                    atomic_defer_unordered(tx, move || {
                        let _ = h.wait(&rt);
                        store.sync();
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DEFER_WAITS, RULE_DEFER_WAITS]);
    }

    #[test]
    fn panics_in_deferred_closures_are_flagged() {
        let src = r#"
            fn f(o: Defer<Obj>) {
                atomically(|tx| {
                    atomic_defer(tx, &[&o.clone()], move || {
                        let x = fallible().unwrap();
                        other().expect("boom");
                        assert!(x > 0);
                        panic!("bad");
                    })
                });
            }
        "#;
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_PANIC_IN_DEFERRED; 4]);
    }

    #[test]
    fn unwrap_or_variants_do_not_panic() {
        let src = r#"
            fn f(o: Defer<Obj>) {
                atomically(|tx| {
                    atomic_defer(tx, &[&o.clone()], move || {
                        let x = fallible().unwrap_or(0);
                        let y = other().unwrap_or_else(|_| 1);
                        let z = third().expect_err;
                        drop((x, y, z));
                    })
                });
            }
        "#;
        assert_eq!(
            rules_of(&scan_source("crates/demo/src/lib.rs", src)),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn defer_after_first_write_is_flagged() {
        let src = "
            fn f(o: Defer<Obj>, v: TVar<u64>) {
                atomically(|tx| {
                    tx.write(&v, 1)?;
                    atomic_defer(tx, &[&o.clone()], move || { op(); })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DEFER_AFTER_WRITE]);
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("line 4"), "{}", f[0].message);
    }

    #[test]
    fn defer_before_first_write_is_the_blessed_order() {
        let src = "
            fn f(o: Defer<Obj>, v: TVar<u64>) {
                atomically(|tx| {
                    atomic_defer(tx, &[&o.clone()], move || { op(); });
                    tx.write(&v, 1)?;
                    Ok(())
                });
            }
        ";
        assert_eq!(
            rules_of(&scan_source("crates/demo/src/lib.rs", src)),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn let_bound_closure_passed_by_name_is_a_deferred_region() {
        // The KV store's batch path: the deferred closure is `let`-bound
        // and passed by name — the dataflow re-walk must see through it.
        let src = r#"
            fn f(o: Defer<Obj>, v: TVar<u64>) {
                atomically(|tx| {
                    let op = move || {
                        let _ = tx.read(&v);
                    };
                    atomic_defer(tx, &[&o.clone()], op)
                });
            }
        "#;
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DEFER_CAPTURES_TX]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn cross_runtime_nested_entry_needs_a_named_mismatch() {
        // rt_b inside rt_a's transaction is flagged; same-runtime
        // re-entry and a bare (unattributable) host stay silent.
        let src = "
            fn f(rt_a: &Runtime, rt_b: &Runtime, v: TVar<u64>) {
                rt_a.atomically(|tx| {
                    rt_b.atomically(|tx2| tx2.read(&v));
                    rt_a.atomically(|tx2| tx2.read(&v));
                    tx.read(&v)
                });
                atomically(|tx| {
                    rt_b.atomically(|tx2| tx2.read(&v));
                    Ok(())
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_CROSS_RUNTIME]);
        assert_eq!(f[0].line, 4);
        assert!(
            f[0].message.contains("`rt_b.atomically"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn store_entry_points_inside_atomic_closures_are_cross_runtime() {
        // A store commits on its own runtime: calling it from inside any
        // live transaction (retryable or irrevocable) is cross-runtime
        // access; the same call outside a region is the normal API.
        let src = "
            fn f(rt: &Runtime, store: &KvStore, b: WriteBatch) {
                rt.atomically(|tx| {
                    store.write_batch(&b);
                    Ok(())
                });
                synchronized(|tx| {
                    let _ = store.get_many(&[\"a\"]);
                    Ok(())
                });
                store.write_batch(&b);
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_CROSS_RUNTIME; 2]);
        assert_eq!((f[0].line, f[1].line), (4, 8));
    }

    #[test]
    fn json_output_is_escaped_and_structured() {
        let f = Finding {
            file: "a\\b.rs".into(),
            line: 3,
            rule: RULE_SEQCST,
            message: "say \"no\"".into(),
            snippet: "let x\t= 1;".into(),
        };
        assert_eq!(
            f.to_json(),
            r#"{"file":"a\\b.rs","line":3,"rule":"seqcst-outside-allowlist","message":"say \"no\"","snippet":"let x\t= 1;"}"#,
        );
        assert_eq!(findings_to_json(&[]), "[]");
        let arr = findings_to_json(&[f]);
        assert!(arr.starts_with("[\n  {") && arr.ends_with("}\n]"), "{arr}");
    }

    #[test]
    fn stale_allow_detection_reports_unknown_rules() {
        let dir = std::env::temp_dir().join(format!("ad-lint-allow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.rs");
        std::fs::write(
            &path,
            "// ad-lint: allow(seqcst-outside-allowlist)\nfn a() {}\n\
             // ad-lint: allow(no-such-rule)\nfn b() {}\n\
             // ad-lint: allow(all)\nfn c() {}\n",
        )
        .unwrap();
        let stale = check_allows_tree(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert_eq!(stale[0].rule, "no-such-rule");
        assert_eq!(stale[0].line, 3);
    }
}
