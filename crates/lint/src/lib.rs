//! # ad-lint — a lexical TM-contract checker for this workspace
//!
//! The atomic-deferral API has contracts the Rust type system cannot see
//! (paper §4; DESIGN.md §7.1, VERIFICATION.md):
//!
//! * Inside an `atomically`/`synchronized` closure, shared state must be
//!   accessed through the transaction (`tx.read`/`tx.write` or subscribing
//!   accessors), never through the non-transactional escape hatches —
//!   `TVar::load()`/`TVar::store(v)`, `update_locked`,
//!   `peek_unsynchronized`. Those compile fine and even work most of the
//!   time; they silently break opacity/serializability.
//! * A deferred operation runs *after* its transaction commits: capturing
//!   the `Tx` (or reading through it) inside the deferred closure is
//!   nonsensical and, were it expressible, unsound. (The borrow checker
//!   stops most of this; the lint catches the lexical shapes that sneak
//!   through via raw identifiers, e.g. a cloned handle named `tx`.)
//! * `Ordering::SeqCst` and raw `std::sync::atomic` are reserved for the
//!   fence-disciplined core (`snapshot.rs`, `registry.rs`, `clock.rs`) and
//!   the `ad-support` facade/model layer. Everywhere else, atomics must go
//!   through `ad_support::sync::atomic` (so loom models see them) with the
//!   weakest ordering that is argued correct — stray `SeqCst` usually
//!   marks an unanalyzed protocol.
//!
//! The checker is deliberately **lexical**: a hand-rolled scanner over the
//! token stream (comments and string literals stripped), no `syn`, no
//! dependencies — this workspace builds offline. That costs precision at
//! the margins (macro-generated code is invisible; a local variable named
//! `tx` inside a deferred closure is flagged even if it is not a `Tx`),
//! which is the right trade for a CI tripwire: cheap, deterministic, and
//! every intentional exception is visible in the diff as an
//! `// ad-lint: allow(<rule>)` marker on the offending (or preceding)
//! line.
//!
//! Test code (`#[cfg(test)]`-gated items, `#[test]` functions, `tests/`
//! and `fixtures/` directories) is skipped: tests routinely use the
//! non-transactional accessors to set up and observe state, and that is
//! fine — the contracts above bind production code paths.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

/// Rule: non-transactional accessor lexically inside an
/// `atomically`/`synchronized` closure (outside any deferred-op closure,
/// where direct access under the held lock is the point).
pub const RULE_DIRECT_ACCESS: &str = "direct-access-in-atomic";
/// Rule: the deferred closure of an `atomic_defer*` call mentions `tx`/`Tx`.
pub const RULE_DEFER_CAPTURES_TX: &str = "defer-captures-tx";
/// Rule: the deferred closure of an `atomic_defer*` call mentions a
/// non-`Send` shape — `Rc`, `RefCell`, or a raw-pointer type. Deferred
/// operations may run on a pool worker thread (`DeferExecCfg::Pool`); the
/// `Send` bound catches direct captures, but `unsafe impl Send` wrappers
/// and pointer laundering compile fine — the lint keeps the contract
/// visible lexically either way.
pub const RULE_NON_SEND_CAPTURE: &str = "non-send-capture";
/// Rule: `Ordering::SeqCst` outside the fence-disciplined allowlist.
pub const RULE_SEQCST: &str = "seqcst-outside-allowlist";
/// Rule: raw `std::sync::atomic` outside the allowlist (use the
/// `ad_support::sync::atomic` facade so loom models instrument the access).
pub const RULE_RAW_ATOMIC: &str = "raw-atomic";

/// Files (path-suffix/substring match, `/`-normalized) where `SeqCst` and
/// raw `std::sync::atomic` are part of the audited fence discipline:
/// the epoch-reclamation core, the registry and clock protocols, the
/// `ad-support` facade/model layer itself, and the `verify` model suites
/// (compiled only under `--cfg loom` test builds).
///
/// `tsc.rs` (the calibrated TSC-coarse timestamp source, OBSERVABILITY.md)
/// is listed explicitly even though the blanket `crates/support/` entry
/// covers it: its raw `rdtsc`/counter reads and `SeqCst` calibration
/// stores are audited as a unit, and the entry must survive any future
/// narrowing of the blanket.
const ATOMICS_ALLOWLIST: &[&str] = &[
    "crates/support/",
    "crates/support/src/tsc.rs",
    "crates/stm/src/snapshot.rs",
    "crates/stm/src/registry.rs",
    "crates/stm/src/clock.rs",
    "src/verify",
];

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// `/`-normalized path as given to the scanner.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// One of the `RULE_*` constants.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Phase A: strip comments and literals, collect allow-markers
// ---------------------------------------------------------------------------

/// Replace comments, string literals, and char literals with spaces
/// (newlines preserved, so token line numbers survive), and collect
/// `ad-lint: allow(rule, ...)` markers found in comments, keyed by line.
fn preprocess(src: &str) -> (String, HashMap<usize, Vec<String>>) {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut allows: HashMap<usize, Vec<String>> = HashMap::new();
    let mut line = 1usize;
    let mut i = 0usize;

    let record_comment = |text: &str, line: usize, allows: &mut HashMap<usize, Vec<String>>| {
        if let Some(pos) = text.find("ad-lint:") {
            let rest = &text[pos + "ad-lint:".len()..];
            if let Some(open) = rest.find("allow(") {
                if let Some(close) = rest[open..].find(')') {
                    for rule in rest[open + "allow(".len()..open + close].split(',') {
                        allows
                            .entry(line)
                            .or_default()
                            .push(rule.trim().to_string());
                    }
                }
            }
        }
    };

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                out.push('\n');
                line += 1;
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                record_comment(&text, line, &mut allows);
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                let start_line = line;
                let start = i;
                i += 2;
                out.push_str("  ");
                let mut depth = 1;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '\n' {
                        out.push('\n');
                        line += 1;
                        i += 1;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                record_comment(&text, start_line, &mut allows);
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        '\\' if i + 1 < bytes.len() => {
                            out.push_str("  ");
                            i += 2;
                        }
                        '"' => {
                            out.push(' ');
                            i += 1;
                            break;
                        }
                        '\n' => {
                            out.push('\n');
                            line += 1;
                            i += 1;
                        }
                        _ => {
                            out.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            'r' if i + 1 < bytes.len() && (bytes[i + 1] == '"' || bytes[i + 1] == '#') => {
                // Raw string literal r"..." / r#"..."# (any hash count).
                let mut j = i + 1;
                let mut hashes = 0;
                while j < bytes.len() && bytes[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == '"' {
                    out.push(' ');
                    for _ in i + 1..=j {
                        out.push(' ');
                    }
                    i = j + 1;
                    // Scan for `"` followed by `hashes` hash marks.
                    'raw: while i < bytes.len() {
                        if bytes[i] == '"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < bytes.len() && bytes[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                for _ in 0..=hashes {
                                    out.push(' ');
                                }
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        if bytes[i] == '\n' {
                            out.push('\n');
                            line += 1;
                        } else {
                            out.push(' ');
                        }
                        i += 1;
                    }
                } else {
                    // `r` not starting a raw string (e.g. an identifier).
                    out.push(c);
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs. lifetime: a literal closes with `'`
                // within a few chars; a lifetime has no closing quote.
                let close = if i + 2 < bytes.len() && bytes[i + 1] == '\\' {
                    // Escaped char: find the next quote (bounded).
                    (i + 2..bytes.len().min(i + 8)).find(|&j| bytes[j] == '\'')
                } else if i + 2 < bytes.len() && bytes[i + 2] == '\'' {
                    Some(i + 2)
                } else {
                    None
                };
                match close {
                    Some(end) => {
                        for _ in i..=end {
                            out.push(' ');
                        }
                        i = end + 1;
                    }
                    None => {
                        // Lifetime: keep the tick so `'a` never merges
                        // surrounding tokens, drop into normal handling.
                        out.push(' ');
                        i += 1;
                    }
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, allows)
}

// ---------------------------------------------------------------------------
// Phase B: lex into identifiers and punctuation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    P(char),
}

fn lex(code: &str) -> Vec<(Tok, usize)> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut it = code.chars().peekable();
    while let Some(&c) = it.peek() {
        if c == '\n' {
            line += 1;
            it.next();
        } else if c.is_whitespace() {
            it.next();
        } else if c.is_alphanumeric() || c == '_' {
            let mut s = String::new();
            while let Some(&d) = it.peek() {
                if d.is_alphanumeric() || d == '_' {
                    s.push(d);
                    it.next();
                } else {
                    break;
                }
            }
            toks.push((Tok::Ident(s), line));
        } else {
            toks.push((Tok::P(c), line));
            it.next();
        }
    }
    toks
}

// ---------------------------------------------------------------------------
// Phase C: region-tracking scan
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionKind {
    /// Inside the parens of an `atomically(...)`/`synchronized(...)` call.
    Atomic,
    /// Inside an `atomic_defer*` call, before its deferred-closure argument.
    DeferCall,
    /// Inside the deferred-closure argument of an `atomic_defer*` call.
    DeferOp,
}

struct Region {
    kind: RegionKind,
    /// Paren depth inside the call's argument list.
    entry: usize,
    /// For `DeferCall`: top-level commas seen / commas before the closure.
    commas: usize,
    threshold: usize,
}

fn ident(t: &Tok) -> Option<&str> {
    match t {
        Tok::Ident(s) => Some(s.as_str()),
        Tok::P(_) => None,
    }
}

fn is_p(t: &Tok, c: char) -> bool {
    matches!(t, Tok::P(p) if *p == c)
}

/// Scan one file's source. `file` is used for reporting and for the
/// atomics allowlist (match on `/`-normalized substrings).
pub fn scan_source(file: &str, src: &str) -> Vec<Finding> {
    let (code, allows) = preprocess(src);
    let toks = lex(&code);
    let atomics_allowed = ATOMICS_ALLOWLIST.iter().any(|p| file.contains(p));

    let mut findings: Vec<Finding> = Vec::new();
    let mut regions: Vec<Region> = Vec::new();
    let mut paren_depth = 0usize;
    let mut brace_depth = 0usize;
    let mut pending_test = false;
    let mut test_skip_depth: Option<usize> = None;

    let allowed = |allows: &HashMap<usize, Vec<String>>, line: usize, rule: &str| {
        [line, line.saturating_sub(1)].iter().any(|l| {
            allows
                .get(l)
                .is_some_and(|rs| rs.iter().any(|r| r == rule || r == "all"))
        })
    };
    let push = |findings: &mut Vec<Finding>, line: usize, rule: &'static str, msg: String| {
        if !allowed(&allows, line, rule) {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule,
                message: msg,
            });
        }
    };

    let mut i = 0usize;
    while i < toks.len() {
        let (tok, line) = (&toks[i].0, toks[i].1);
        let in_test = test_skip_depth.is_some();
        match tok {
            Tok::P('#') if i + 1 < toks.len() && is_p(&toks[i + 1].0, '[') => {
                // Attribute: collect its tokens to the matching `]`.
                let mut depth = 0usize;
                let mut text = String::new();
                let mut j = i + 1;
                while j < toks.len() {
                    match &toks[j].0 {
                        Tok::P('[') => depth += 1,
                        Tok::P(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Ident(s) => {
                            text.push_str(s);
                            text.push(' ');
                        }
                        Tok::P(c) => text.push(*c),
                    }
                    j += 1;
                }
                if !in_test && text.contains("test") && !text.contains("not(test") {
                    pending_test = true;
                }
                i = j + 1;
                continue;
            }
            Tok::P('{') => {
                brace_depth += 1;
                if pending_test && test_skip_depth.is_none() {
                    test_skip_depth = Some(brace_depth);
                    pending_test = false;
                }
            }
            Tok::P('}') => {
                if test_skip_depth == Some(brace_depth) {
                    test_skip_depth = None;
                }
                brace_depth = brace_depth.saturating_sub(1);
            }
            Tok::P(';') if pending_test && test_skip_depth.is_none() && paren_depth == 0 => {
                // `#[cfg(test)]` on a braceless item (e.g. a `use`).
                pending_test = false;
            }
            Tok::P('(') => {
                paren_depth += 1;
                // Did an interesting identifier introduce this call?
                if let Some(name) = i.checked_sub(1).and_then(|p| ident(&toks[p].0)) {
                    let reg = match name {
                        "atomically" | "synchronized" => Some((RegionKind::Atomic, 0)),
                        "atomic_defer" | "atomic_defer_with_result" | "atomic_defer_tracked" => {
                            Some((RegionKind::DeferCall, 2))
                        }
                        "atomic_defer_unordered" => Some((RegionKind::DeferCall, 1)),
                        _ => None,
                    };
                    if let Some((kind, threshold)) = reg {
                        regions.push(Region {
                            kind,
                            entry: paren_depth,
                            commas: 0,
                            threshold,
                        });
                    }
                }
            }
            Tok::P(')') => {
                if regions.last().is_some_and(|r| r.entry == paren_depth) {
                    regions.pop();
                }
                paren_depth = paren_depth.saturating_sub(1);
            }
            Tok::P(',') => {
                if let Some(r) = regions.last_mut() {
                    if r.kind == RegionKind::DeferCall && r.entry == paren_depth {
                        r.commas += 1;
                        if r.commas >= r.threshold {
                            r.kind = RegionKind::DeferOp;
                        }
                    }
                }
            }
            Tok::P('.') if !in_test => {
                // Method call `.name(`?
                let name = toks.get(i + 1).and_then(|t| ident(&t.0));
                let is_call = toks.get(i + 2).is_some_and(|t| is_p(&t.0, '('));
                if let (Some(name), true) = (name, is_call) {
                    let innermost = regions.last().map(|r| r.kind);
                    if innermost == Some(RegionKind::Atomic) {
                        let bad = match name {
                            "load" => toks.get(i + 3).is_some_and(|t| is_p(&t.0, ')')),
                            "store" => !call_args_mention(&toks, i + 2, "Ordering"),
                            "update_locked" | "peek_unsynchronized" => true,
                            _ => false,
                        };
                        if bad {
                            push(
                                &mut findings,
                                line,
                                RULE_DIRECT_ACCESS,
                                format!(
                                    "non-transactional accessor `.{name}(...)` inside an \
                                     atomic closure; go through the transaction \
                                     (tx.read/tx.write or a subscribing accessor)"
                                ),
                            );
                        }
                    }
                }
            }
            Tok::P('*') if !in_test => {
                // Raw-pointer type `*const T` / `*mut T` — `const`/`mut`
                // after `*` cannot be an expression, so this is
                // unambiguously a pointer type, which is never `Send`.
                let innermost = regions.last().map(|r| r.kind);
                let kw = toks.get(i + 1).and_then(|t| ident(&t.0));
                if innermost == Some(RegionKind::DeferOp)
                    && matches!(kw, Some("const") | Some("mut"))
                {
                    push(
                        &mut findings,
                        line,
                        RULE_NON_SEND_CAPTURE,
                        format!(
                            "raw pointer type `*{} _` in a deferred closure: deferred \
                             operations may run on a pool worker thread and their \
                             captures must be Send; pass an owning handle (Arc) instead",
                            kw.unwrap_or_default()
                        ),
                    );
                }
            }
            Tok::Ident(s) if !in_test => {
                let innermost = regions.last().map(|r| r.kind);
                if innermost == Some(RegionKind::DeferOp) && (s == "Rc" || s == "RefCell") {
                    push(
                        &mut findings,
                        line,
                        RULE_NON_SEND_CAPTURE,
                        format!(
                            "deferred closure mentions `{s}`, which is not Send: deferred \
                             operations may run on a pool worker thread; use Arc (and \
                             Mutex/atomics for interior mutability) instead"
                        ),
                    );
                }
                if innermost == Some(RegionKind::DeferOp) && (s == "tx" || s == "Tx") {
                    push(
                        &mut findings,
                        line,
                        RULE_DEFER_CAPTURES_TX,
                        "deferred closure mentions the transaction: deferred operations \
                         run after commit and must not capture `Tx` (or anything read \
                         through it)"
                            .to_string(),
                    );
                }
                if s == "SeqCst" && !atomics_allowed {
                    push(
                        &mut findings,
                        line,
                        RULE_SEQCST,
                        "Ordering::SeqCst outside the fence-disciplined core; use the \
                         weakest ordering that is argued correct, or move the protocol \
                         into the audited allowlist"
                            .to_string(),
                    );
                }
                if (s == "std" || s == "core")
                    && !atomics_allowed
                    && path_follows(&toks, i, &["sync", "atomic"])
                {
                    push(
                        &mut findings,
                        line,
                        RULE_RAW_ATOMIC,
                        format!(
                            "raw {s}::sync::atomic; use ad_support::sync::atomic so \
                             loom models instrument the access"
                        ),
                    );
                }
            }
            _ => {}
        }
        i += 1;
    }
    findings
}

/// Does the (balanced) argument list opening at `open` (index of `(`)
/// mention `needle` as an identifier?
fn call_args_mention(toks: &[(Tok, usize)], open: usize, needle: &str) -> bool {
    let mut depth = 0usize;
    for (t, _) in &toks[open..] {
        match t {
            Tok::P('(') => depth += 1,
            Tok::P(')') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            Tok::Ident(s) if s == needle => return true,
            _ => {}
        }
    }
    false
}

/// Is `toks[i]` followed by `::seg` for each segment in `path`?
fn path_follows(toks: &[(Tok, usize)], i: usize, path: &[&str]) -> bool {
    let mut j = i + 1;
    for seg in path {
        if !(toks.get(j).is_some_and(|t| is_p(&t.0, ':'))
            && toks.get(j + 1).is_some_and(|t| is_p(&t.0, ':'))
            && toks.get(j + 2).and_then(|t| ident(&t.0)) == Some(*seg))
        {
            return false;
        }
        j += 3;
    }
    true
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Directories never scanned: build output, VCS, test-only trees, and the
/// lint's own deliberately-bad fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "tests", "benches", "fixtures"];

/// Recursively scan every `.rs` file under `root` (skipping `SKIP_DIRS`)
/// and return all findings, sorted by file and line.
pub fn scan_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        if dir.is_file() {
            scan_file(&dir, &mut findings)?;
            continue;
        }
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                scan_file(&path, &mut findings)?;
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

fn scan_file(path: &Path, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    let src = std::fs::read_to_string(path)?;
    let file = path.to_string_lossy().replace('\\', "/");
    findings.extend(scan_source(&file, &src));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn direct_load_and_store_in_atomic_are_flagged() {
        let src = r#"
            fn f(v: TVar<u64>) {
                atomically(|tx| {
                    let x = v.load();
                    v.store(x + 1);
                    Ok(())
                });
            }
        "#;
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), vec![RULE_DIRECT_ACCESS, RULE_DIRECT_ACCESS]);
        assert_eq!(f[0].line, 4);
        assert_eq!(f[1].line, 5);
    }

    #[test]
    fn atomic_store_with_ordering_is_not_a_tvar_store() {
        let src = "
            fn f(flag: AtomicBool) {
                atomically(|tx| { flag.store(true, Ordering::Release); Ok(()) });
            }
        ";
        // The Ordering argument marks this as a (facade) atomic, not a
        // TVar accessor — a different contract, not this rule's business.
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), Vec::<&str>::new());
    }

    #[test]
    fn update_locked_and_peek_in_atomic_are_flagged() {
        let src = "
            fn f(o: Defer<Obj>) {
                synchronized(|tx| {
                    o.peek_unsynchronized().a.update_locked(|x| x);
                    Ok(())
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), vec![RULE_DIRECT_ACCESS, RULE_DIRECT_ACCESS]);
    }

    #[test]
    fn deferred_closure_is_exempt_from_direct_access() {
        let src = "
            fn f(o: Defer<Obj>) {
                atomically(|tx| {
                    let o2 = o.clone();
                    atomic_defer(tx, &[&o.clone()], move || {
                        o2.locked().a.store(1);
                        o2.locked().b.update_locked(|x| x + 1);
                    })
                });
            }
        ";
        // Direct access *is* the point of a deferred op (the lock is held);
        // and the `tx` in argument position 1 is outside the closure.
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), Vec::<&str>::new());
    }

    #[test]
    fn deferred_closure_capturing_tx_is_flagged() {
        let src = "
            fn f(o: Defer<Obj>, v: TVar<u64>) {
                atomically(|tx| {
                    atomic_defer(tx, &[&o.clone()], move || {
                        let _ = tx.read(&v);
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), vec![RULE_DEFER_CAPTURES_TX]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn unordered_defer_threshold_is_one_comma() {
        let src = "
            fn f() {
                atomically(|tx| {
                    atomic_defer_unordered(tx, move || {
                        tx.commit();
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), vec![RULE_DEFER_CAPTURES_TX]);
    }

    #[test]
    fn non_send_shapes_in_deferred_closure_are_flagged() {
        let src = "
            fn f(o: Defer<Obj>, n: Rc<u64>) {
                atomically(|tx| {
                    atomic_defer(tx, &[&o.clone()], move || {
                        let _ = Rc::strong_count(&n);
                        let p = 0usize as *mut u64;
                        let q = p as *const u64;
                        drop(q);
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), vec![RULE_NON_SEND_CAPTURE; 3]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn non_send_shapes_outside_deferred_closures_are_fine() {
        // `Rc` in ordinary code, in an atomic closure, or in the defer
        // call's argument list (before the closure) is not this rule's
        // business — only the deferred op itself crosses threads. And a
        // multiplication is not a raw-pointer type.
        let src = "
            fn f(o: Defer<Obj>, n: Rc<u64>, k: usize) {
                let _ = Rc::strong_count(&n);
                atomically(|tx| {
                    let m = Rc::clone(&n);
                    atomic_defer_tracked(tx, &[&o.clone()], move || {
                        let _ = k * 2;
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), Vec::<&str>::new());
    }

    #[test]
    fn tracked_defer_threshold_is_two_commas() {
        let src = "
            fn f(o: Defer<Obj>) {
                atomically(|tx| {
                    atomic_defer_tracked(tx, &[&o.clone()], move || {
                        tx.commit();
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), vec![RULE_DEFER_CAPTURES_TX]);
    }

    #[test]
    fn seqcst_flagged_outside_allowlist_only() {
        let src = "fn f(a: AtomicU64) { a.load(Ordering::SeqCst); }";
        assert_eq!(
            rules(&scan_source("crates/demo/src/lib.rs", src)),
            vec![RULE_SEQCST]
        );
        assert_eq!(
            rules(&scan_source("crates/stm/src/snapshot.rs", src)),
            Vec::<&str>::new()
        );
        assert_eq!(
            rules(&scan_source("crates/support/src/model.rs", src)),
            Vec::<&str>::new()
        );
        // The audited TSC timestamp source (raw counter reads + SeqCst
        // calibration) has its own allowlist entry; keep it covered.
        assert_eq!(
            rules(&scan_source("crates/support/src/tsc.rs", src)),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn raw_atomic_path_flagged_outside_allowlist_only() {
        let src = "use std::sync::atomic::AtomicU64;";
        assert_eq!(
            rules(&scan_source("crates/stm/src/tx.rs", src)),
            vec![RULE_RAW_ATOMIC]
        );
        assert_eq!(
            rules(&scan_source("crates/support/src/sync.rs", src)),
            Vec::<&str>::new()
        );
        // Unrelated std paths are fine.
        assert_eq!(
            rules(&scan_source(
                "crates/stm/src/tx.rs",
                "use std::sync::Arc;"
            )),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn allow_marker_suppresses_on_same_or_previous_line() {
        let src = "
            fn f(a: AtomicU64) {
                a.load(Ordering::SeqCst); // ad-lint: allow(seqcst-outside-allowlist)
                // ad-lint: allow(seqcst-outside-allowlist)
                a.load(Ordering::SeqCst);
                a.load(Ordering::SeqCst);
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), vec![RULE_SEQCST]);
        assert_eq!(f[0].line, 6, "only the unannotated use survives");
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "
            fn prod(v: TVar<u64>) {
                atomically(|tx| { v.load(); Ok(()) });
            }
            #[cfg(all(test, not(loom)))]
            mod tests {
                fn t(v: TVar<u64>) {
                    atomically(|tx| { v.load(); Ok(()) });
                    let x = Ordering::SeqCst;
                }
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), vec![RULE_DIRECT_ACCESS]);
        assert_eq!(f[0].line, 3, "only the production occurrence");
    }

    #[test]
    fn comments_and_strings_do_not_produce_findings() {
        let src = r##"
            // atomically(|tx| v.load());
            /* Ordering::SeqCst */
            fn f() {
                let s = "atomically(|tx| v.load()) Ordering::SeqCst";
                let r = r#"std::sync::atomic"#;
            }
        "##;
        assert_eq!(
            rules(&scan_source("crates/demo/src/lib.rs", src)),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn nested_transaction_inside_deferred_op_is_checked_again() {
        // A deferred op may legitimately run its own transactions; direct
        // accessors inside *that* nested atomic closure are violations
        // again.
        let src = "
            fn f(o: Defer<Obj>, v: TVar<u64>) {
                atomically(|tx| {
                    atomic_defer(tx, &[&o.clone()], move || {
                        atomically(|tx2| { v.load(); Ok(()) });
                    })
                });
            }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), vec![RULE_DIRECT_ACCESS]);
    }

    #[test]
    fn cfg_test_attribute_on_fn_is_skipped() {
        let src = "
            #[cfg(test)]
            pub(crate) fn force(v: &V) {
                v.version.store(1, Ordering::SeqCst);
            }
            fn prod() { let o = Ordering::SeqCst; }
        ";
        let f = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(rules(&f), vec![RULE_SEQCST]);
        assert_eq!(f[0].line, 6);
    }
}
