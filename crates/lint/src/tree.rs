//! Phase 2: brace matching — the flat token stream becomes a token
//! *tree*.
//!
//! Every `(...)`, `{...}`, `[...]` span nests as a [`Node::Group`] whose
//! children are themselves nodes. The analyzer then walks sequences of
//! siblings: a call's argument list is one group, a function body is one
//! group, a macro invocation's body is one group — so "descend into the
//! macro body" or "the deferred closure is the third argument" are tree
//! operations instead of paren-depth counters. Mis-nested input (mid-edit
//! files, macro fragments) degrades gracefully: an unmatched closer
//! becomes a plain leaf, an unclosed opener's group ends at EOF.

use crate::lexer::Tok;

/// One node of the token tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A non-delimiter token with its 1-based line.
    Leaf(Tok, usize),
    /// A delimited group.
    Group(Group),
}

/// A `( )` / `{ }` / `[ ]` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// The opening delimiter: `(`, `{`, or `[`.
    pub delim: char,
    /// Line of the opening delimiter.
    pub open_line: usize,
    /// The nodes between the delimiters.
    pub children: Vec<Node>,
}

impl Node {
    /// The identifier name if this is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Node::Leaf(t, _) => t.ident(),
            Node::Group(_) => None,
        }
    }

    /// Is this a punctuation leaf for `c`?
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Node::Leaf(t, _) if t.is_punct(c))
    }

    /// The group, if this is a group with delimiter `delim`.
    pub fn group(&self, delim: char) -> Option<&Group> {
        match self {
            Node::Group(g) if g.delim == delim => Some(g),
            _ => None,
        }
    }

    /// Any group, regardless of delimiter.
    pub fn any_group(&self) -> Option<&Group> {
        match self {
            Node::Group(g) => Some(g),
            _ => None,
        }
    }

    /// Best-effort source line of this node.
    pub fn line(&self) -> usize {
        match self {
            Node::Leaf(_, l) => *l,
            Node::Group(g) => g.open_line,
        }
    }
}

fn closer(open: char) -> char {
    match open {
        '(' => ')',
        '{' => '}',
        _ => ']',
    }
}

/// Build the token tree for a token stream.
pub fn build(toks: &[(Tok, usize)]) -> Vec<Node> {
    // Stack of open groups; the bottom entry is the top-level sequence.
    let mut stack: Vec<(char, usize, Vec<Node>)> = vec![(' ', 0, Vec::new())];
    for (tok, line) in toks {
        match tok {
            Tok::Punct(c @ ('(' | '{' | '[')) => stack.push((*c, *line, Vec::new())),
            Tok::Punct(c @ (')' | '}' | ']')) => {
                if stack.len() > 1 && closer(stack.last().unwrap().0) == *c {
                    let (delim, open_line, children) = stack.pop().unwrap();
                    stack.last_mut().unwrap().2.push(Node::Group(Group {
                        delim,
                        open_line,
                        children,
                    }));
                } else {
                    // Unmatched closer: keep it as a leaf so the rest of
                    // the file still gets analyzed.
                    stack
                        .last_mut()
                        .unwrap()
                        .2
                        .push(Node::Leaf(Tok::Punct(*c), *line));
                }
            }
            other => stack
                .last_mut()
                .unwrap()
                .2
                .push(Node::Leaf(other.clone(), *line)),
        }
    }
    // Unclosed groups end at EOF.
    while stack.len() > 1 {
        let (delim, open_line, children) = stack.pop().unwrap();
        stack.last_mut().unwrap().2.push(Node::Group(Group {
            delim,
            open_line,
            children,
        }));
    }
    stack.pop().unwrap().2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> Vec<Node> {
        build(&lex(src).toks)
    }

    #[test]
    fn groups_nest() {
        let t = tree("f(a, g(b), [c]) { d }");
        // f, (…), {…}
        assert_eq!(t.len(), 3);
        let args = t[1].group('(').expect("call args");
        assert_eq!(args.children.len(), 6, "a , g (…) , […]");
        assert!(args.children[3].group('(').is_some());
        assert!(args.children[5].group('[').is_some());
        assert!(t[2].group('{').is_some());
    }

    #[test]
    fn unmatched_closer_is_a_leaf() {
        let t = tree("a ) b");
        assert_eq!(t.len(), 3);
        assert!(t[1].is_punct(')'));
    }

    #[test]
    fn unclosed_group_ends_at_eof() {
        let t = tree("f(a, b");
        assert_eq!(t.len(), 2);
        let g = t[1].group('(').expect("group closed at EOF");
        assert_eq!(g.children.len(), 3);
    }

    #[test]
    fn open_lines_recorded() {
        let t = tree("a\n{\nb\n}");
        assert_eq!(t[1].line(), 2);
    }
}
