//! Phase 3: the scope/closure/binding walker — the analysis pass proper.
//!
//! The walker descends the token tree of one file carrying three pieces of
//! context the v1 lexical scanner never had:
//!
//! * **Regions** — which *transactional* closure the cursor is lexically
//!   inside: the closure argument of an `atomically(...)`/
//!   `synchronized(...)` call, or the deferred-closure argument of an
//!   `atomic_defer*` call. Plain closures (iterator adapters, accessor
//!   callbacks) do not change the region: code inside
//!   `obj.with(tx, |o, tx| ...)` is still inside its enclosing atomic
//!   closure, exactly as it executes.
//! * **Scopes/bindings** — which identifiers are bound where, and whether
//!   a binding is *the transaction*. The `tx` param of `atomically(|tx|
//!   ...)` is a `Tx` binding; `let tx = channel.tx()` is a plain binding
//!   that shadows it; a typed fn param `tx: &mut Tx` is a `Tx` binding.
//!   Rules that care about "the transaction" resolve identifiers against
//!   this stack instead of substring-matching the letters `tx`.
//! * **Dataflow for `let`-bound closures** — `let op = move || {...};`
//!   followed by `atomic_defer(tx, &[...], op)` re-walks the recorded
//!   closure body *as a deferred region* at the call site, so
//!   deferred-closure rules see through the one level of indirection the
//!   workspace actually uses (the KV store's batch path).
//!
//! Macro invocation bodies (`name! { ... }` / `name!(...)`) are walked as
//! ordinary token trees in the current context. `#[cfg(test)]`-gated items
//! and `#[test]` fns are skipped, as in v1: the contracts bind production
//! code.
//!
//! Known, documented imprecision (see VERIFICATION.md): no type inference
//! (a `Tx` smuggled through a non-`Fn`-typed field is invisible), no
//! macro *expansion* (a macro that wraps `atomically` itself does not open
//! a region), `match`/`if let` pattern bindings do not shadow.

use std::collections::HashMap;

use crate::lexer::{lex, Lexed};
use crate::rules::{self, DEFER_RULES};
use crate::tree::{build, Group, Node};
use crate::Finding;

/// Which transactional region the cursor is inside (innermost last).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionKind {
    /// The closure argument of `atomically(...)` — retryable, blocking
    /// operations are contract violations here.
    Atomically,
    /// The closure argument of `synchronized(...)` — irrevocable/serial,
    /// blocking I/O is legal by design.
    Synchronized,
    /// The deferred-closure argument of an `atomic_defer*` call.
    DeferOp,
}

struct Region {
    kind: RegionKind,
    /// Line of the first `tx.write(...)` seen in this (atomic) region —
    /// the defer-before-first-write watermark for `defer-after-write`.
    write_line: Option<usize>,
    /// Named receiver of the `atomically`/`synchronized` call that opened
    /// this region (`rt.atomically(...)` → `rt`); `None` for a bare call
    /// or a receiver reached through a call chain. `cross-runtime-access`
    /// compares nested entry receivers against this.
    host: Option<String>,
}

/// What an in-scope identifier is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    /// The transaction handle (closure param of an atomic closure, typed
    /// `Tx` fn param, or an alias of one).
    Tx,
    /// Anything else.
    Plain,
}

/// A `let`-bound closure, recorded for deferred re-walk at an
/// `atomic_defer*(.., name)` call site.
#[derive(Clone)]
struct ClosureDef {
    params: Vec<String>,
    body: Vec<Node>,
}

#[derive(Default)]
struct Scope {
    bindings: HashMap<String, Binding>,
    closures: HashMap<String, ClosureDef>,
}

/// Role the enclosing call assigns to a closure argument.
enum CallSpec {
    /// `atomically`/`synchronized`: the first closure argument is the
    /// atomic closure; its first param is the `Tx`. `host` is the named
    /// receiver of the call, if any.
    Atomic {
        kind: RegionKind,
        host: Option<String>,
    },
    /// `atomic_defer*`: the argument after `commas` top-level commas is
    /// the deferred closure.
    Defer { commas: usize },
}

/// Per-sequence walking context: the call spec (for a call's argument
/// list) and the name of a `Tx` forwarded alongside closures in the same
/// argument list — the `obj.with(tx, |o, tx| ...)` accessor idiom, where
/// the inner `tx` param *is* the transaction again.
#[derive(Default)]
struct SeqCtx {
    spec: Option<CallSpec>,
    tx_thread: Option<String>,
}

/// Scan one file's source (workspace-relative `file` for reporting and
/// the atomics allowlist).
pub(crate) fn scan(file: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let nodes = build(&lexed.toks);
    let mut a = Analyzer {
        file,
        lines: src.lines().collect(),
        lexed: &lexed,
        atomics_allowed: rules::ATOMICS_ALLOWLIST.iter().any(|p| file.contains(p)),
        findings: Vec::new(),
        regions: Vec::new(),
        scopes: vec![Scope::default()],
        rewalk: 0,
    };
    a.walk_seq(&nodes, SeqCtx::default());
    let mut findings = a.findings;
    findings.sort_by(|x, y| (x.line, x.rule).cmp(&(y.line, y.rule)));
    // A let-bound closure walked both at its binding and at a defer call
    // site can produce the same finding twice; exact duplicates collapse.
    findings.dedup();
    findings
}

struct Analyzer<'a> {
    file: &'a str,
    lines: Vec<&'a str>,
    lexed: &'a Lexed,
    atomics_allowed: bool,
    findings: Vec<Finding>,
    regions: Vec<Region>,
    scopes: Vec<Scope>,
    /// Depth of deferred re-walks of `let`-bound closures. During a
    /// re-walk only the deferred-closure rules fire — everything else was
    /// already reported when the closure was walked at its binding site.
    rewalk: usize,
}

impl Analyzer<'_> {
    // -- context helpers ---------------------------------------------------

    fn push(&mut self, line: usize, rule: &'static str, message: String) {
        if self.rewalk > 0 && !DEFER_RULES.contains(&rule) {
            return;
        }
        if self.lexed.allowed(line, rule) {
            return;
        }
        self.findings.push(Finding {
            file: self.file.to_string(),
            line,
            rule,
            message,
            snippet: self
                .lines
                .get(line.wrapping_sub(1))
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        });
    }

    fn resolve(&self, name: &str) -> Option<Binding> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.bindings.get(name).copied())
    }

    fn lookup_closure(&self, name: &str) -> Option<ClosureDef> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.closures.get(name).cloned())
    }

    fn bind(&mut self, name: &str, b: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .bindings
            .insert(name.to_string(), b);
    }

    fn innermost(&self) -> Option<RegionKind> {
        self.regions.last().map(|r| r.kind)
    }

    fn in_atomic(&self) -> bool {
        matches!(
            self.innermost(),
            Some(RegionKind::Atomically | RegionKind::Synchronized)
        )
    }

    fn mark_write(&mut self, line: usize) {
        if let Some(r) = self.regions.last_mut() {
            if r.kind != RegionKind::DeferOp && r.write_line.is_none() {
                r.write_line = Some(line);
            }
        }
    }

    // -- the walk ----------------------------------------------------------

    fn walk_group(&mut self, g: &Group) {
        if g.delim == '{' {
            self.scopes.push(Scope::default());
            self.walk_seq(&g.children, SeqCtx::default());
            self.scopes.pop();
        } else {
            self.walk_seq(&g.children, SeqCtx::default());
        }
    }

    fn walk_seq(&mut self, nodes: &[Node], ctx: SeqCtx) {
        let mut i = 0usize;
        let mut commas = 0usize;
        let mut role_given = false;
        let mut prev: Option<&Node> = None;
        while i < nodes.len() {
            let n = &nodes[i];

            // Attributes: `#[...]` / `#![...]`. Test-gating an item skips
            // it (and its body) entirely.
            if n.is_punct('#') {
                let (attr, after) = match (
                    nodes.get(i + 1).and_then(|x| x.group('[')),
                    nodes.get(i + 1).filter(|x| x.is_punct('!')),
                ) {
                    (Some(g), _) => (Some(g), i + 2),
                    (None, Some(_)) => (nodes.get(i + 2).and_then(|x| x.group('[')), i + 3),
                    _ => (None, i + 1),
                };
                if let Some(g) = attr {
                    if attr_is_test(&g.children) {
                        i = skip_item(nodes, after);
                    } else {
                        i = after;
                    }
                    prev = None;
                    continue;
                }
            }

            // `fn` definitions: bind typed params, walk the body outside
            // any region (a nested fn does not execute in the enclosing
            // transaction).
            if n.ident() == Some("fn") {
                i = self.walk_fn(nodes, i + 1);
                prev = None;
                continue;
            }

            // `let` statements (but not `if let` / `while let`, whose
            // pattern bindings we do not track).
            if n.ident() == Some("let")
                && !matches!(prev.and_then(Node::ident), Some("if" | "while"))
            {
                i = self.walk_let(nodes, i + 1);
                prev = None;
                continue;
            }

            // Top-level comma bookkeeping for call-argument sequences.
            if n.is_punct(',') {
                commas += 1;
                prev = Some(n);
                i += 1;
                continue;
            }

            // Closures: `|params| body` / `move |params| body` / `||`.
            let move_closure =
                n.ident() == Some("move") && nodes.get(i + 1).is_some_and(|x| x.is_punct('|'));
            if move_closure || (n.is_punct('|') && closure_can_start(prev)) {
                let pipe = if move_closure { i + 1 } else { i };
                let role = match &ctx.spec {
                    Some(CallSpec::Atomic { kind, host }) if commas == 0 && !role_given => {
                        Some((*kind, host.clone()))
                    }
                    Some(CallSpec::Defer { commas: c }) if commas == *c && !role_given => {
                        Some((RegionKind::DeferOp, None))
                    }
                    _ => None,
                };
                if role.is_some() {
                    role_given = true;
                }
                i = self.walk_closure(nodes, pipe, role, ctx.tx_thread.as_deref());
                prev = None;
                continue;
            }

            // The deferred argument of an `atomic_defer*` call passed *by
            // name*: re-walk the recorded closure body as a deferred
            // region (dataflow through one `let`).
            if let (Some(CallSpec::Defer { commas: c }), Some(name)) = (&ctx.spec, n.ident()) {
                if commas == *c && !role_given {
                    if let Some(def) = self.lookup_closure(name) {
                        role_given = true;
                        self.rewalk += 1;
                        self.regions.push(Region {
                            kind: RegionKind::DeferOp,
                            write_line: None,
                            host: None,
                        });
                        self.scopes.push(Scope::default());
                        for p in &def.params {
                            self.bind(p, Binding::Plain);
                        }
                        self.walk_seq(&def.body, SeqCtx::default());
                        self.scopes.pop();
                        self.regions.pop();
                        self.rewalk -= 1;
                    }
                }
            }

            // Macro invocations: `name!(...)` / `name!{...}` / `name![...]`
            // — check the macro name, then descend into the body in the
            // current context (the v1 scanner's macro blind spot).
            if let Some(name) = n.ident() {
                if nodes.get(i + 1).is_some_and(|x| x.is_punct('!')) {
                    if let Some(g) = nodes.get(i + 2).and_then(Node::any_group) {
                        if self.innermost() == Some(RegionKind::DeferOp) {
                            if let Some(msg) = rules::deferred::panic_macro(name) {
                                self.push(n.line(), rules::RULE_PANIC_IN_DEFERRED, msg);
                            }
                        }
                        self.walk_group(g);
                        prev = Some(&nodes[i + 2]);
                        i += 3;
                        continue;
                    }
                }
            }

            // Calls: `name(...)` and `.name(...)`.
            if let Some(name) = n.ident() {
                if let Some(args) = nodes.get(i + 1).and_then(|x| x.group('(')) {
                    let is_method = prev.is_some_and(|p| p.is_punct('.'));
                    let receiver = if is_method && i >= 2 {
                        nodes.get(i - 2)
                    } else {
                        None
                    };
                    self.walk_call(name, n.line(), args, is_method, receiver, prev);
                    prev = Some(&nodes[i + 1]);
                    i += 2;
                    continue;
                }
            }

            // Raw-pointer types in deferred closures: `*const T`/`*mut T`.
            if n.is_punct('*') && self.innermost() == Some(RegionKind::DeferOp) {
                if let Some(kw @ ("const" | "mut")) = nodes.get(i + 1).and_then(Node::ident) {
                    self.push(
                        n.line(),
                        rules::RULE_NON_SEND_CAPTURE,
                        rules::deferred::raw_pointer_msg(kw),
                    );
                }
            }

            // Bare identifier uses.
            if let Some(name) = n.ident() {
                let is_field = prev.is_some_and(|p| p.is_punct('.'));
                let is_field_decl = nodes.get(i + 1).is_some_and(|x| x.is_punct(':'))
                    && !nodes.get(i + 2).is_some_and(|x| x.is_punct(':'));
                if !is_field && !is_field_decl {
                    self.check_ident(name, n.line(), nodes, i);
                }
            }

            // Anything else: descend into stray groups, step over leaves.
            if let Node::Group(g) = n {
                self.walk_group(g);
            }
            prev = Some(n);
            i += 1;
        }
    }

    /// Region-independent and deferred-region identifier rules.
    fn check_ident(&mut self, name: &str, line: usize, nodes: &[Node], i: usize) {
        if self.innermost() == Some(RegionKind::DeferOp) {
            if self.resolve(name) == Some(Binding::Tx) || name == "Tx" {
                self.push(
                    line,
                    rules::RULE_DEFER_CAPTURES_TX,
                    rules::deferred::captures_tx_msg(),
                );
            }
            if let Some(msg) = rules::deferred::non_send_ident(name) {
                self.push(line, rules::RULE_NON_SEND_CAPTURE, msg);
            }
        }
        if name == "SeqCst" && !self.atomics_allowed {
            self.push(line, rules::RULE_SEQCST, rules::ordering::seqcst_msg());
        }
        if (name == "std" || name == "core")
            && !self.atomics_allowed
            && path_follows(nodes, i, &["sync", "atomic"])
        {
            self.push(
                line,
                rules::RULE_RAW_ATOMIC,
                rules::ordering::raw_atomic_msg(name),
            );
        }
    }

    /// A call site `name(args)` / `recv.name(args)`: run the method rules,
    /// open regions for the transactional entry points, and walk the
    /// argument list.
    fn walk_call(
        &mut self,
        name: &str,
        line: usize,
        args: &Group,
        is_method: bool,
        receiver: Option<&Node>,
        prev: Option<&Node>,
    ) {
        // A method receiver that resolves to the transaction threads it
        // into closure arguments: `tx.or_else(|tx| ...)` combinators.
        let recv_tx_name = receiver
            .and_then(Node::ident)
            .filter(|r| self.resolve(r) == Some(Binding::Tx))
            .map(str::to_string);
        if is_method {
            let recv_is_tx = recv_tx_name.is_some();
            if self.in_atomic() {
                if let Some(msg) = rules::atomic::direct_access(name, args) {
                    self.push(line, rules::RULE_DIRECT_ACCESS, msg);
                }
                if name == "write" && recv_is_tx {
                    self.mark_write(line);
                }
            }
            if self.innermost() == Some(RegionKind::Atomically) && !recv_is_tx {
                if let Some(msg) = rules::atomic::blocking_method(name) {
                    self.push(line, rules::RULE_BLOCKING_IN_ATOMIC, msg);
                }
            }
            // A store entry point commits its own transaction on its own
            // runtime — cross-runtime by construction inside any live
            // atomic closure (retryable or irrevocable).
            if self.in_atomic() && !recv_is_tx {
                if let Some(msg) = rules::atomic::cross_runtime_store(name) {
                    self.push(line, rules::RULE_CROSS_RUNTIME, msg);
                }
            }
            if self.innermost() == Some(RegionKind::DeferOp) {
                if let Some(msg) = rules::deferred::wait_method(name) {
                    self.push(line, rules::RULE_DEFER_WAITS, msg);
                }
                if let Some(msg) = rules::deferred::panic_method(name) {
                    self.push(line, rules::RULE_PANIC_IN_DEFERRED, msg);
                }
            }
        } else {
            // Path-position waits: `DeferHandle::wait_all(rt, hs)`.
            if self.innermost() == Some(RegionKind::DeferOp)
                && prev.is_some_and(|p| p.is_punct(':'))
            {
                if let Some(msg) = rules::deferred::wait_method(name) {
                    self.push(line, rules::RULE_DEFER_WAITS, msg);
                }
            }
        }

        match name {
            // Works for both `atomically(..)` and `rt.atomically(..)`.
            "atomically" | "synchronized" => {
                if self.innermost() == Some(RegionKind::DeferOp) {
                    self.push(
                        line,
                        rules::RULE_DEFER_WAITS,
                        rules::deferred::reentry_msg(name),
                    );
                }
                let host = receiver
                    .and_then(Node::ident)
                    .filter(|r| self.resolve(r) != Some(Binding::Tx))
                    .map(str::to_string);
                // Nested entry on a *different named* runtime than the
                // enclosing region's named host is cross-runtime access.
                // Either side unnamed (bare call, call-chain receiver) →
                // ownership unprovable lexically, stay silent.
                if self.in_atomic() {
                    let enclosing = self.regions.last().and_then(|r| r.host.clone());
                    if let (Some(enclosing), Some(other)) = (enclosing.as_deref(), host.as_deref())
                    {
                        if other != enclosing {
                            let msg =
                                rules::atomic::cross_runtime_entry_msg(name, enclosing, other);
                            self.push(line, rules::RULE_CROSS_RUNTIME, msg);
                        }
                    }
                }
                let kind = if name == "atomically" {
                    RegionKind::Atomically
                } else {
                    RegionKind::Synchronized
                };
                self.walk_call_args(
                    args,
                    Some(CallSpec::Atomic { kind, host }),
                    recv_tx_name.as_deref(),
                );
            }
            "atomic_defer"
            | "atomic_defer_with_result"
            | "atomic_defer_tracked"
            | "atomic_defer_unordered" => {
                if let Some(r) = self.regions.last() {
                    if r.kind != RegionKind::DeferOp {
                        if let Some(w) = r.write_line {
                            self.push(
                                line,
                                rules::RULE_DEFER_AFTER_WRITE,
                                rules::ordering::defer_after_write_msg(name, w),
                            );
                        }
                    }
                }
                let commas = if name == "atomic_defer_unordered" {
                    1
                } else {
                    2
                };
                self.walk_call_args(
                    args,
                    Some(CallSpec::Defer { commas }),
                    recv_tx_name.as_deref(),
                );
            }
            "sleep" if self.innermost() == Some(RegionKind::Atomically) => {
                self.push(
                    line,
                    rules::RULE_BLOCKING_IN_ATOMIC,
                    rules::atomic::sleep_msg(),
                );
                self.walk_call_args(args, None, recv_tx_name.as_deref());
            }
            _ => self.walk_call_args(args, None, recv_tx_name.as_deref()),
        }
    }

    /// Walk a call's argument list, assigning the spec'd closure role and
    /// threading a forwarded `Tx` name to closure params (the accessor
    /// idiom `obj.with(tx, |o, tx| ...)`).
    fn walk_call_args(&mut self, g: &Group, spec: Option<CallSpec>, recv_tx: Option<&str>) {
        // Only arguments *before* the first closure count as forwarded:
        // `obj.with(tx, |o, tx| ...)` threads `tx`, but the param of
        // `for_each(|tx| ...)` is the closure's own binding, not a
        // forwarded transaction. A `Tx` method receiver threads too —
        // combinators like `tx.or_else(|tx| ...)` re-lend the transaction
        // to their closure arguments.
        let tx_thread = g
            .children
            .iter()
            .take_while(|n| !n.is_punct('|') && n.ident() != Some("move"))
            .find_map(|n| {
                let name = n.ident()?;
                (self.resolve(name) == Some(Binding::Tx)).then(|| name.to_string())
            })
            .or_else(|| recv_tx.map(str::to_string));
        self.walk_seq(&g.children, SeqCtx { spec, tx_thread });
    }

    /// `fn name(params) ... { body }` starting after the `fn` keyword.
    /// Returns the index after the item.
    fn walk_fn(&mut self, nodes: &[Node], mut j: usize) -> usize {
        // Find the parameter list: the first paren group at angle-bracket
        // depth 0 (generic params may contain `Fn(..)` parens).
        let mut angle = 0usize;
        let mut last: Option<char> = None;
        let params = loop {
            match nodes.get(j) {
                None => return j,
                Some(n) if n.is_punct('<') => angle += 1,
                Some(n) if n.is_punct('>') && !matches!(last, Some('-' | '=')) => {
                    angle = angle.saturating_sub(1)
                }
                Some(n) if n.is_punct(';') || n.group('{').is_some() => break None,
                Some(n) => {
                    if let Some(p) = n.group('(') {
                        if angle == 0 {
                            j += 1;
                            break Some(p);
                        }
                    }
                }
            }
            last = match nodes.get(j) {
                Some(Node::Leaf(crate::lexer::Tok::Punct(c), _)) => Some(*c),
                _ => None,
            };
            j += 1;
        };
        // Neither the signature nor the body executes in the enclosing
        // transaction — a nested fn is its own world, regions cleared.
        let saved = std::mem::take(&mut self.regions);
        self.scopes.push(Scope::default());
        if let Some(p) = params {
            // Walk the parameter tokens first (types can name
            // `std::sync::atomic` paths), then record the bindings.
            self.walk_seq(&p.children, SeqCtx::default());
            self.bind_fn_params(&p.children);
        }
        // Walk the body (first brace group); a trailing `;` means a
        // bodiless trait method.
        while let Some(n) = nodes.get(j) {
            if let Some(body) = n.group('{') {
                self.walk_seq(&body.children, SeqCtx::default());
                j += 1;
                break;
            }
            if n.is_punct(';') {
                j += 1;
                break;
            }
            j += 1;
        }
        self.scopes.pop();
        self.regions = saved;
        j
    }

    /// Bind `name: Type` fn params; a param whose type mentions `Tx`
    /// directly (not inside an `Fn*` trait bound) is a `Tx` binding.
    fn bind_fn_params(&mut self, nodes: &[Node]) {
        for param in split_top_level(nodes, ',') {
            let Some(colon) = param.iter().position(|n| n.is_punct(':')) else {
                continue; // `self` / `&mut self`
            };
            let Some(name) = param[..colon]
                .iter()
                .rev()
                .find_map(Node::ident)
                .filter(|n| !matches!(*n, "mut" | "ref" | "self" | "_"))
            else {
                continue;
            };
            let ty = &param[colon + 1..];
            let is_fn_ty = ty
                .iter()
                .any(|n| matches!(n.ident(), Some("Fn" | "FnMut" | "FnOnce")));
            let b = if !is_fn_ty && ty.iter().any(|n| n.ident() == Some("Tx")) {
                Binding::Tx
            } else {
                Binding::Plain
            };
            self.bind(name, b);
        }
    }

    /// `let [mut] name [: T] = rhs ;` starting after the `let` keyword.
    /// Returns the index after the statement.
    fn walk_let(&mut self, nodes: &[Node], mut j: usize) -> usize {
        if nodes.get(j).and_then(Node::ident) == Some("mut") {
            j += 1;
        }
        let name = nodes.get(j).and_then(Node::ident).map(str::to_string);
        // First top-level `=` (not `==`, `=>`, `<=`-likes) before the `;`.
        let mut eq = None;
        let mut k = j;
        while let Some(n) = nodes.get(k) {
            if n.is_punct(';') {
                break;
            }
            if n.is_punct('=')
                && !nodes
                    .get(k + 1)
                    .is_some_and(|x| x.is_punct('=') || x.is_punct('>'))
                && !nodes
                    .get(k.wrapping_sub(1))
                    .is_some_and(|x| "=!+-*/&|^%".chars().any(|c| x.is_punct(c)))
            {
                eq = Some(k);
                break;
            }
            k += 1;
        }
        let semi = (j..nodes.len())
            .find(|&k| nodes[k].is_punct(';'))
            .unwrap_or(nodes.len());
        let Some(eq) = eq else {
            // `let x;` — an untyped declaration.
            if let Some(name) = &name {
                self.bind(name, Binding::Plain);
            }
            return semi + 1;
        };
        let rhs = &nodes[eq + 1..semi];

        // RHS is a closure literal: record it for deferred re-walk and
        // walk it now as a plain closure.
        let rhs_is_closure = matches!(rhs.first(), Some(n) if n.is_punct('|'))
            || (rhs.first().and_then(Node::ident) == Some("move")
                && rhs.get(1).is_some_and(|x| x.is_punct('|')));
        if rhs_is_closure {
            let pipe = usize::from(rhs[0].ident() == Some("move"));
            let (params, body_start, body_end) = parse_closure_sig(rhs, pipe);
            let body: Vec<Node> = if body_end == body_start + 1 {
                match &rhs[body_start] {
                    Node::Group(g) if g.delim == '{' => g.children.clone(),
                    other => vec![other.clone()],
                }
            } else {
                rhs[body_start..body_end].to_vec()
            };
            if let Some(name) = &name {
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .closures
                    .insert(
                        name.clone(),
                        ClosureDef {
                            params: params.clone(),
                            body: body.clone(),
                        },
                    );
            }
            self.scopes.push(Scope::default());
            for p in &params {
                self.bind(p, Binding::Plain);
            }
            self.walk_seq(&body, SeqCtx::default());
            self.scopes.pop();
            if let Some(name) = &name {
                self.bind(name, Binding::Plain);
            }
            return semi + 1;
        }

        self.walk_seq(rhs, SeqCtx::default());
        if let Some(name) = &name {
            // `let tx2 = tx;` / `let tx2 = &tx;` aliases the transaction;
            // any other RHS (notably `let tx = channel.tx()`) is plain.
            let alias = rhs.iter().filter(|n| !n.is_punct('&')).collect::<Vec<_>>();
            let b = match alias.as_slice() {
                [one] => one
                    .ident()
                    .and_then(|id| self.resolve(id))
                    .unwrap_or(Binding::Plain),
                _ => Binding::Plain,
            };
            self.bind(name, b);
        }
        semi + 1
    }

    /// Walk a closure starting at the opening `|` (index `pipe`), with an
    /// optional region role (and, for atomic roles, the named host
    /// runtime). Returns the index after the closure body.
    fn walk_closure(
        &mut self,
        nodes: &[Node],
        pipe: usize,
        role: Option<(RegionKind, Option<String>)>,
        tx_thread: Option<&str>,
    ) -> usize {
        let (params, body_start, body_end) = parse_closure_sig(nodes, pipe);
        self.scopes.push(Scope::default());
        for (idx, p) in params.iter().enumerate() {
            let b = match &role {
                // The first param of an atomic closure is the transaction.
                Some((RegionKind::Atomically | RegionKind::Synchronized, _)) if idx == 0 => {
                    Binding::Tx
                }
                // Accessor idiom: a param named after the `Tx` forwarded in
                // the same argument list is the transaction threaded back.
                _ if tx_thread == Some(p.as_str()) => Binding::Tx,
                _ => Binding::Plain,
            };
            self.bind(p, b);
        }
        if let Some((kind, host)) = &role {
            self.regions.push(Region {
                kind: *kind,
                write_line: None,
                host: host.clone(),
            });
        }
        if body_end == body_start + 1 {
            if let Some(Node::Group(g)) = nodes.get(body_start) {
                if g.delim == '{' {
                    self.walk_seq(&g.children, SeqCtx::default());
                } else {
                    self.walk_seq(&nodes[body_start..body_end], SeqCtx::default());
                }
            } else {
                self.walk_seq(&nodes[body_start..body_end], SeqCtx::default());
            }
        } else {
            self.walk_seq(&nodes[body_start..body_end], SeqCtx::default());
        }
        if role.is_some() {
            self.regions.pop();
        }
        self.scopes.pop();
        body_end
    }
}

/// Parse a closure's parameter list starting at the opening `|`.
/// Returns `(param_names, body_start, body_end)` as indices into `nodes`;
/// a braced body spans exactly one node, an expression body runs to the
/// first top-level `,`/`;` or the end of the sequence.
fn parse_closure_sig(nodes: &[Node], pipe: usize) -> (Vec<String>, usize, usize) {
    let mut params = Vec::new();
    let mut j = pipe + 1;
    if nodes.get(j).is_some_and(|x| x.is_punct('|')) {
        j += 1; // `||` — no params
    } else {
        let mut in_type = false;
        while let Some(n) = nodes.get(j) {
            if n.is_punct('|') {
                j += 1;
                break;
            }
            if n.is_punct(':') {
                in_type = true;
            } else if n.is_punct(',') {
                in_type = false;
            } else if !in_type {
                match n {
                    Node::Leaf(_, _) => {
                        if let Some(id) = n.ident() {
                            if !matches!(id, "mut" | "ref" | "_" | "move") {
                                params.push(id.to_string());
                            }
                        }
                    }
                    // Tuple/struct patterns: collect their idents too.
                    Node::Group(g) => collect_pattern_idents(&g.children, &mut params),
                }
            }
            j += 1;
        }
    }
    let body_start = j;
    let body_end = if matches!(nodes.get(j), Some(Node::Group(g)) if g.delim == '{') {
        j + 1
    } else {
        let mut k = j;
        while let Some(n) = nodes.get(k) {
            if n.is_punct(',') || n.is_punct(';') {
                break;
            }
            k += 1;
        }
        k
    };
    (params, body_start, body_end.max(body_start))
}

fn collect_pattern_idents(nodes: &[Node], out: &mut Vec<String>) {
    for n in nodes {
        match n {
            Node::Group(g) => collect_pattern_idents(&g.children, out),
            _ => {
                if let Some(id) = n.ident() {
                    if !matches!(id, "mut" | "ref" | "_") {
                        out.push(id.to_string());
                    }
                }
            }
        }
    }
}

/// Can a `|` at this position start a closure? True at the start of a
/// sequence, after a separator/assignment/arrow, or after a keyword that
/// introduces an expression; false after an operand (then it is
/// binary/pattern or).
fn closure_can_start(prev: Option<&Node>) -> bool {
    match prev {
        None => true,
        Some(n) => {
            matches!(n, Node::Leaf(crate::lexer::Tok::Punct(c), _) if matches!(c, ',' | '=' | ';' | ':' | '>' | '&' | '?'))
                || matches!(n.ident(), Some("move" | "return" | "else" | "in" | "match"))
        }
    }
}

/// Does `nodes[i]` start the leaf path `::seg1::seg2...`?
fn path_follows(nodes: &[Node], i: usize, path: &[&str]) -> bool {
    let mut j = i + 1;
    for seg in path {
        if !(nodes.get(j).is_some_and(|n| n.is_punct(':'))
            && nodes.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && nodes.get(j + 2).and_then(Node::ident) == Some(*seg))
        {
            return false;
        }
        j += 3;
    }
    true
}

/// Split a node sequence on a top-level punctuation separator.
fn split_top_level(nodes: &[Node], sep: char) -> Vec<&[Node]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, n) in nodes.iter().enumerate() {
        if n.is_punct(sep) {
            out.push(&nodes[start..i]);
            start = i + 1;
        }
    }
    if start < nodes.len() {
        out.push(&nodes[start..]);
    }
    out
}

/// Is an attribute test-gating? `#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]` — but not `test` under `not(...)`
/// (`#[cfg(not(test))]` is production-only, which we *do* scan).
fn attr_is_test(nodes: &[Node]) -> bool {
    fn scan(nodes: &[Node], under_not: bool) -> bool {
        let mut i = 0usize;
        while i < nodes.len() {
            let n = &nodes[i];
            if n.ident() == Some("not") {
                if let Some(g) = nodes.get(i + 1).and_then(|x| x.group('(')) {
                    // Anything under `not` is inverted; `test` inside it
                    // does not gate the item *into* tests.
                    let _ = scan(&g.children, true);
                    i += 2;
                    continue;
                }
            }
            if !under_not && n.ident() == Some("test") {
                return true;
            }
            if let Node::Group(g) = n {
                if scan(&g.children, under_not) {
                    return true;
                }
            }
            i += 1;
        }
        false
    }
    scan(nodes, false)
}

/// Skip past one item starting at `j`: leading attributes, then
/// everything up to and including the first brace-group body or a
/// terminating `;`.
fn skip_item(nodes: &[Node], mut j: usize) -> usize {
    loop {
        match nodes.get(j) {
            None => return nodes.len(),
            Some(n) if n.is_punct('#') && nodes.get(j + 1).and_then(|x| x.group('[')).is_some() => {
                j += 2;
            }
            Some(n) if n.group('{').is_some() || n.is_punct(';') => return j + 1,
            Some(_) => j += 1,
        }
    }
}
