//! `--protocol` subcheck: wire-spec drift detection.
//!
//! PROTOCOL.md §4.1 (opcode table) and §5.1 (status table) are the
//! normative wire spec; `crates/net/src/proto.rs` implements them as the
//! `Opcode` enum discriminants and the `status` consts. The codec tests
//! pin the *code*'s internal consistency, and `include_str!` pins doc
//! drift at the byte level for the sections it covers — this check closes
//! the remaining gap by parsing both artifacts and diffing name↔number
//! assignments, so renumbering either side (or adding an opcode to one
//! side only) fails CI with a message naming the divergence.

use std::path::Path;

/// Name ↔ number tables extracted from one artifact.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Tables {
    /// Wire opcode names and codes, e.g. `("GET", 1)`.
    pub opcodes: Vec<(String, u8)>,
    /// Status codes and names, e.g. `(0, "OK")`.
    pub statuses: Vec<(u8, String)>,
}

/// Parse the opcode/status tables out of PROTOCOL.md. A table row is
/// `| cells |`-shaped; an opcode row has a backticked ALL-CAPS name in the
/// first cell and an integer code in the second, a status row the
/// reverse. Nothing else in the document matches either shape.
pub fn parse_doc(md: &str) -> Tables {
    let mut t = Tables::default();
    for line in md.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        if let (Some(name), Ok(code)) = (backticked_name(cells[0]), cells[1].parse::<u8>()) {
            t.opcodes.push((name, code));
            continue;
        }
        if let (Ok(code), Some(name)) = (cells[0].parse::<u8>(), backticked_name(cells[1])) {
            t.statuses.push((code, name));
        }
    }
    t
}

/// A `` `NAME` `` cell where NAME is ALL_CAPS (wire names are).
fn backticked_name(cell: &str) -> Option<String> {
    let inner = cell.strip_prefix('`')?.strip_suffix('`')?;
    (!inner.is_empty()
        && inner
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
    .then(|| inner.to_string())
}

/// Parse the `Opcode` enum discriminants and the `status` consts out of
/// proto.rs source. Deliberately line-oriented: the declarations' shape is
/// itself pinned by the net crate's tests, and a parse miss here shows up
/// as a missing entry — loud, not silent.
pub fn parse_proto(rs: &str) -> Tables {
    let mut t = Tables::default();
    let mut in_enum = false;
    for line in rs.lines() {
        let line = line.trim();
        if line.starts_with("pub enum Opcode") {
            in_enum = true;
            continue;
        }
        if in_enum {
            if line.starts_with('}') {
                in_enum = false;
                continue;
            }
            // `Get = 1,`
            if let Some((name, rest)) = line.split_once('=') {
                let name = name.trim();
                let code = rest.trim().trim_end_matches(',').parse::<u8>();
                if let (true, Ok(code)) = (
                    name.chars().all(char::is_alphanumeric) && !name.is_empty(),
                    code,
                ) {
                    // The wire name is the uppercase of the variant
                    // (`Opcode::name()` pins the same mapping in tests).
                    t.opcodes.push((name.to_uppercase(), code));
                }
            }
            continue;
        }
        // `pub const ERR_MALFORMED: u8 = 1;`
        if let Some(rest) = line.strip_prefix("pub const ") {
            if let Some((name, rest)) = rest.split_once(": u8 = ") {
                let name = name.trim();
                if let Ok(code) = rest.trim().trim_end_matches(';').parse::<u8>() {
                    if name
                        .chars()
                        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
                    {
                        t.statuses.push((code, name.to_string()));
                    }
                }
            }
        }
    }
    t
}

/// Diff the two tables; each returned string names one divergence.
pub fn diff(doc: &Tables, code: &Tables) -> Vec<String> {
    let mut drift = Vec::new();
    if doc.opcodes.is_empty() {
        drift.push(
            "PROTOCOL.md: no opcode table rows parsed (section moved or reformatted?)".into(),
        );
    }
    if doc.statuses.is_empty() {
        drift.push(
            "PROTOCOL.md: no status table rows parsed (section moved or reformatted?)".into(),
        );
    }
    for (name, dc) in &doc.opcodes {
        match code.opcodes.iter().find(|(n, _)| n == name) {
            None => drift.push(format!(
                "opcode `{name}` ({dc}) is in PROTOCOL.md but not in proto.rs"
            )),
            Some((_, cc)) if cc != dc => drift.push(format!(
                "opcode `{name}`: PROTOCOL.md says {dc}, proto.rs says {cc}"
            )),
            _ => {}
        }
    }
    for (name, cc) in &code.opcodes {
        if !doc.opcodes.iter().any(|(n, _)| n == name) {
            drift.push(format!(
                "opcode `{name}` ({cc}) is in proto.rs but not in PROTOCOL.md"
            ));
        }
    }
    for (dc, name) in &doc.statuses {
        match code.statuses.iter().find(|(_, n)| n == name) {
            None => drift.push(format!(
                "status `{name}` ({dc}) is in PROTOCOL.md but not in proto.rs"
            )),
            Some((cc, _)) if cc != dc => drift.push(format!(
                "status `{name}`: PROTOCOL.md says {dc}, proto.rs says {cc}"
            )),
            _ => {}
        }
    }
    for (cc, name) in &code.statuses {
        if !doc.statuses.iter().any(|(_, n)| n == name) {
            drift.push(format!(
                "status `{name}` ({cc}) is in proto.rs but not in PROTOCOL.md"
            ));
        }
    }
    drift
}

/// Run the drift check against a workspace root.
pub fn check(root: &Path) -> std::io::Result<Vec<String>> {
    let md = std::fs::read_to_string(root.join("PROTOCOL.md"))?;
    let rs = std::fs::read_to_string(root.join("crates/net/src/proto.rs"))?;
    Ok(diff(&parse_doc(&md), &parse_proto(&rs)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
| opcode | code | payload (request) | response payload | mutating |
|---|---|---|---|---|
| `GET` | 1 | key | status, presence, value | no |
| `PUT` | 2 | key, value | status, applied count | yes |

| status | name | meaning |
|---|---|---|
| 0 | `OK` | request executed |
| 1 | `ERR_MALFORMED` | payload failed to decode |
";

    const RS: &str = "\
pub enum Opcode {
    Get = 1,
    Put = 2,
}
pub mod status {
    pub const OK: u8 = 0;
    pub const ERR_MALFORMED: u8 = 1;
}
";

    #[test]
    fn doc_tables_parse() {
        let t = parse_doc(DOC);
        assert_eq!(t.opcodes, vec![("GET".into(), 1), ("PUT".into(), 2)]);
        assert_eq!(
            t.statuses,
            vec![(0, "OK".into()), (1, "ERR_MALFORMED".into())]
        );
    }

    #[test]
    fn proto_declarations_parse() {
        let t = parse_proto(RS);
        assert_eq!(t.opcodes, vec![("GET".into(), 1), ("PUT".into(), 2)]);
        assert_eq!(
            t.statuses,
            vec![(0, "OK".into()), (1, "ERR_MALFORMED".into())]
        );
    }

    #[test]
    fn agreement_is_clean() {
        assert!(diff(&parse_doc(DOC), &parse_proto(RS)).is_empty());
    }

    #[test]
    fn renumbering_is_drift() {
        let rs = RS.replace("Put = 2", "Put = 9");
        let d = diff(&parse_doc(DOC), &parse_proto(&rs));
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("PUT") && d[0].contains('9'), "{d:?}");
    }

    #[test]
    fn one_sided_additions_are_drift_in_both_directions() {
        let rs = format!("{}\npub const ERR_NEW: u8 = 9;\n", RS);
        let d = diff(&parse_doc(DOC), &parse_proto(&rs));
        assert!(d.iter().any(|s| s.contains("ERR_NEW")), "{d:?}");

        let doc = format!("{}| 3 | `ERR_DOC_ONLY` | docs only |\n", DOC);
        let d = diff(&parse_doc(&doc), &parse_proto(RS));
        assert!(d.iter().any(|s| s.contains("ERR_DOC_ONLY")), "{d:?}");
    }

    #[test]
    fn empty_doc_tables_are_loud() {
        let d = diff(&parse_doc("no tables here"), &parse_proto(RS));
        assert!(d.iter().any(|s| s.contains("no opcode table")), "{d:?}");
    }

    #[test]
    fn real_workspace_artifacts_agree() {
        // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root");
        let drift = check(&root).expect("both artifacts readable");
        assert!(drift.is_empty(), "wire-spec drift: {drift:#?}");
    }
}
