//! CLI for the ad-lint TM-contract checker.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ad-lint                      # scan the workspace
//! cargo run -p ad-lint -- PATH...           # scan specific files/dirs
//! cargo run -p ad-lint -- --json            # findings as a JSON array
//! cargo run -p ad-lint -- --protocol        # wire-spec drift subcheck
//! cargo run -p ad-lint -- --check-allows    # stale allow-marker subcheck
//! ```
//!
//! The default mode exits non-zero if any finding survives its
//! `ad-lint: allow(...)` markers. Run it from anywhere inside the
//! workspace; with no path arguments it scans the workspace root (two
//! levels up from this crate). `--json` writes the array to stdout (CI
//! uploads it as an artifact) and keeps the exit-code contract.
//! `--protocol` and `--check-allows` run instead of the scan.
//!
//! Exit codes: 0 clean, 1 findings/drift/stale markers, 2 scan error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut protocol = false;
    let mut check_allows = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args_os().skip(1) {
        match arg.to_str() {
            Some("--json") => json = true,
            Some("--protocol") => protocol = true,
            Some("--check-allows") => check_allows = true,
            Some(s) if s.starts_with("--") => {
                eprintln!("ad-lint: unknown flag {s}");
                eprintln!("usage: ad-lint [--json | --protocol | --check-allows] [PATH...]");
                return ExitCode::from(2);
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    let roots = if paths.is_empty() {
        vec![workspace_root()]
    } else {
        paths
    };

    if protocol {
        return run_protocol();
    }
    if check_allows {
        return run_check_allows(&roots);
    }

    let mut findings = Vec::new();
    for root in &roots {
        match ad_lint::scan_tree(root) {
            Ok(fs) => findings.extend(fs),
            Err(e) => {
                eprintln!("ad-lint: failed to scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    if json {
        println!("{}", ad_lint::findings_to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
    }
    if findings.is_empty() {
        eprintln!("ad-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("ad-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop(); // crates/
    root.pop(); // workspace root
    root
}

/// `--protocol`: diff PROTOCOL.md's opcode/status tables against the
/// consts in crates/net/src/proto.rs. Always anchored at the workspace
/// root — the two artifacts have fixed locations.
fn run_protocol() -> ExitCode {
    match ad_lint::protocol::check(&workspace_root()) {
        Ok(drift) if drift.is_empty() => {
            eprintln!("ad-lint: protocol tables agree");
            ExitCode::SUCCESS
        }
        Ok(drift) => {
            for d in &drift {
                println!("{d}");
            }
            eprintln!("ad-lint: {} wire-spec divergence(s)", drift.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("ad-lint: protocol check failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// `--check-allows`: every `ad-lint: allow(...)` marker must name a real
/// rule (or `all`) — a typo'd marker silently suppresses nothing while
/// looking like it suppresses something.
fn run_check_allows(roots: &[PathBuf]) -> ExitCode {
    let mut stale = Vec::new();
    for root in roots {
        match ad_lint::check_allows_tree(root) {
            Ok(s) => stale.extend(s),
            Err(e) => {
                eprintln!("ad-lint: failed to scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    if stale.is_empty() {
        eprintln!("ad-lint: all allow markers name known rules");
        ExitCode::SUCCESS
    } else {
        for s in &stale {
            println!("{s}");
        }
        eprintln!("ad-lint: {} stale allow marker(s)", stale.len());
        ExitCode::FAILURE
    }
}
