//! CLI for the ad-lint TM-contract checker.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ad-lint                 # scan the workspace
//! cargo run -p ad-lint -- PATH...      # scan specific files/directories
//! ```
//!
//! Exits non-zero if any finding survives its `ad-lint: allow(...)`
//! markers. Run it from anywhere inside the workspace; with no arguments
//! it scans the workspace root (two levels up from this crate).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<PathBuf> = std::env::args_os().skip(1).map(PathBuf::from).collect();
    let roots = if args.is_empty() {
        let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        root.pop(); // crates/
        root.pop(); // workspace root
        vec![root]
    } else {
        args
    };

    let mut findings = Vec::new();
    for root in &roots {
        match ad_lint::scan_tree(root) {
            Ok(fs) => findings.extend(fs),
            Err(e) => {
                eprintln!("ad-lint: failed to scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("ad-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("ad-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
