//! A striped transactional counter.
//!
//! A single `TVar<u64>` counter makes every incrementing transaction
//! conflict with every other. Striping the count over N slots (each its own
//! `TVar`, picked per-thread) removes the hot spot; reading the total scans
//! all stripes (and conflicts with everything — totals are for
//! low-frequency use, exactly like `LongAdder`-style counters).

use ad_stm::{StmResult, TVar, Tx};

/// A transactional counter striped over several `TVar`s.
pub struct TCounter {
    stripes: Vec<TVar<u64>>,
}

impl TCounter {
    /// A counter with the default stripe count (16).
    pub fn new() -> Self {
        TCounter::with_stripes(16)
    }

    /// A counter with `n` stripes (≥1).
    pub fn with_stripes(n: usize) -> Self {
        TCounter {
            stripes: (0..n.max(1)).map(|_| TVar::new(0)).collect(),
        }
    }

    fn my_stripe(&self) -> &TVar<u64> {
        // Cheap per-thread stripe choice: hash a stack address allocated
        // once per thread.
        thread_local! {
            static TAG: u8 = const { 0 };
        }
        let idx = TAG.with(|t| t as *const u8 as usize);
        &self.stripes[(idx >> 4) % self.stripes.len()]
    }

    /// Add `delta` to the counter.
    pub fn add(&self, tx: &mut Tx, delta: u64) -> StmResult<()> {
        let s = self.my_stripe();
        let v = tx.read(s)?;
        tx.write(s, v + delta)
    }

    /// Increment by one.
    pub fn incr(&self, tx: &mut Tx) -> StmResult<()> {
        self.add(tx, 1)
    }

    /// Read the exact total (conflicts with all increments).
    pub fn total(&self, tx: &mut Tx) -> StmResult<u64> {
        let mut sum = 0;
        for s in &self.stripes {
            sum += tx.read(s)?;
        }
        Ok(sum)
    }

    /// Non-transactional approximate total (per-stripe consistent reads;
    /// may tear across stripes).
    pub fn total_approx(&self) -> u64 {
        self.stripes.iter().map(|s| s.load()).sum()
    }
}

impl Default for TCounter {
    fn default() -> Self {
        TCounter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ad_stm::atomically;

    #[test]
    fn increments_accumulate() {
        let c = TCounter::new();
        for _ in 0..100 {
            atomically(|tx| c.incr(tx));
        }
        assert_eq!(atomically(|tx| c.total(tx)), 100);
        assert_eq!(c.total_approx(), 100);
    }

    #[test]
    fn add_arbitrary_deltas() {
        let c = TCounter::with_stripes(4);
        atomically(|tx| c.add(tx, 10));
        atomically(|tx| c.add(tx, 32));
        assert_eq!(atomically(|tx| c.total(tx)), 42);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = std::sync::Arc::new(TCounter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        atomically(|tx| c.incr(tx));
                    }
                });
            }
        });
        assert_eq!(atomically(|tx| c.total(tx)), 4000);
    }

    #[test]
    fn single_stripe_still_works() {
        let c = TCounter::with_stripes(1);
        atomically(|tx| c.add(tx, 7));
        assert_eq!(atomically(|tx| c.total(tx)), 7);
    }
}
