//! An immutable, structurally shared cons list — the building block for the
//! transactional stack and queue.
//!
//! Persistence matters inside an STM: a `TVar<List<T>>` update replaces one
//! `Arc` while sharing the tail, so a push/pop transaction copies O(1)
//! data, and concurrent readers holding older snapshots stay valid.

use std::sync::Arc;

/// An immutable singly linked list.
pub struct List<T> {
    head: Option<Arc<Node<T>>>,
}

struct Node<T> {
    value: T,
    next: Option<Arc<Node<T>>>,
}

impl<T> List<T> {
    /// The empty list.
    pub fn new() -> Self {
        List { head: None }
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// Number of elements (O(n)).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = &self.head;
        while let Some(node) = cur {
            n += 1;
            cur = &node.next;
        }
        n
    }

    /// A new list with `value` prepended (O(1), shares the tail).
    pub fn push_front(&self, value: T) -> Self {
        List {
            head: Some(Arc::new(Node {
                value,
                next: self.head.clone(),
            })),
        }
    }

    /// The first element, if any.
    pub fn front(&self) -> Option<&T> {
        self.head.as_deref().map(|n| &n.value)
    }

    /// The list without its first element (O(1), shares the tail).
    pub fn pop_front(&self) -> Option<(&T, Self)> {
        self.head.as_deref().map(|n| {
            (
                &n.value,
                List {
                    head: n.next.clone(),
                },
            )
        })
    }

    /// Iterate front to back.
    pub fn iter(&self) -> ListIter<'_, T> {
        ListIter {
            cur: self.head.as_deref(),
        }
    }
}

impl<T: Clone> List<T> {
    /// The reversal of the list (O(n)) — used by the two-list queue when
    /// the front runs dry.
    pub fn reversed(&self) -> Self {
        let mut out = List::new();
        for v in self.iter() {
            out = out.push_front(v.clone());
        }
        out
    }
}

impl<T> Clone for List<T> {
    fn clone(&self) -> Self {
        List {
            head: self.head.clone(),
        }
    }
}

impl<T> Default for List<T> {
    fn default() -> Self {
        List::new()
    }
}

/// Iterator over a [`List`].
pub struct ListIter<'a, T> {
    cur: Option<&'a Node<T>>,
}

impl<'a, T> Iterator for ListIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        let node = self.cur?;
        self.cur = node.next.as_deref();
        Some(&node.value)
    }
}

impl<T> Drop for List<T> {
    fn drop(&mut self) {
        // Unlink iteratively: a long uniquely-owned chain dropped
        // recursively would overflow the stack.
        let mut cur = self.head.take();
        while let Some(node) = cur {
            match Arc::try_unwrap(node) {
                Ok(mut inner) => cur = inner.next.take(),
                Err(_) => break, // shared tail: someone else keeps it alive
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_front() {
        let l = List::new().push_front(1).push_front(2).push_front(3);
        assert_eq!(l.len(), 3);
        assert_eq!(l.front(), Some(&3));
        let (v, rest) = l.pop_front().unwrap();
        assert_eq!(*v, 3);
        assert_eq!(rest.len(), 2);
        // Original unchanged (persistence).
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn iteration_order() {
        let l = List::new().push_front(1).push_front(2).push_front(3);
        let got: Vec<i32> = l.iter().copied().collect();
        assert_eq!(got, vec![3, 2, 1]);
    }

    #[test]
    fn reversed() {
        let l = List::new().push_front(1).push_front(2).push_front(3);
        let r = l.reversed();
        let got: Vec<i32> = r.iter().copied().collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn empty_behaviour() {
        let l: List<u8> = List::default();
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert_eq!(l.front(), None);
        assert!(l.pop_front().is_none());
    }

    #[test]
    fn deep_list_drops_without_stack_overflow() {
        let mut l = List::new();
        for i in 0..200_000 {
            l = l.push_front(i);
        }
        drop(l); // must not overflow
    }

    #[test]
    fn structural_sharing() {
        let base = List::new().push_front(1).push_front(2);
        let a = base.push_front(10);
        let b = base.push_front(20);
        assert_eq!(a.iter().copied().collect::<Vec<_>>(), vec![10, 2, 1]);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![20, 2, 1]);
    }
}
