//! # ad-collections — transactional collections over `ad-stm`
//!
//! The data-structure layer the paper's introduction motivates TM with
//! ("TM is particularly appealing for data structures ... e.g. the
//! rebalancing operations of a red-black tree"): composable containers
//! whose operations run inside transactions, combine with arbitrary other
//! transactional state, block with `retry`, and can hand long-running work
//! to `atomic_defer`.
//!
//! | type | conflict granularity | notes |
//! |---|---|---|
//! | [`TStack<T>`] | whole stack | persistent list, O(1) ops |
//! | [`TQueue<T>`] | ends mostly independent | Okasaki two-list queue |
//! | [`TMap<K,V>`] | per bucket | the dedup fingerprint-table idiom, generalized |
//! | [`TTreeMap<K,V>`] | readers free, writers on root | persistent AVL, pure-code rebalancing |
//! | [`TCounter`] | per stripe | `LongAdder`-style striped counter |
//!
//! ```
//! use ad_stm::atomically;
//! use ad_collections::{TMap, TQueue};
//!
//! let index: TMap<String, u64> = TMap::new();
//! let work: TQueue<String> = TQueue::new();
//!
//! // One transaction updates both structures atomically.
//! atomically(|tx| {
//!     index.insert(tx, "job-1".into(), 42)?;
//!     work.push(tx, "job-1".into())
//! });
//! assert_eq!(atomically(|tx| work.pop(tx)), Some("job-1".to_string()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod counter;
pub mod list;
mod map;
mod queue;
mod stack;
mod tree;

pub use counter::TCounter;
pub use list::List;
pub use map::TMap;
pub use queue::TQueue;
pub use stack::TStack;
pub use tree::TTreeMap;
