//! A transactional ordered map — the red-black-tree-shaped workload the
//! paper's introduction motivates TM with ("the rebalancing operations of a
//! red-black tree mutation" are what make lock-based versions hard).
//!
//! Representation: a persistent AVL tree of `Arc` nodes behind a single
//! `TVar` root. Mutations path-copy O(log n) nodes and swing the root;
//! rebalancing is ordinary pure code — no hand-over-hand locking, no lock
//! order. Readers never conflict with each other; writers conflict on the
//! root (the price of a totally ordered structure in any STM with
//! variable-granularity conflicts).

use std::any::Any;
use std::sync::Arc;

use ad_stm::{StmResult, TVar, Tx};

type Link<K, V> = Option<Arc<Node<K, V>>>;

struct Node<K, V> {
    key: K,
    value: V,
    height: u32,
    size: usize,
    left: Link<K, V>,
    right: Link<K, V>,
}

fn height<K, V>(n: &Link<K, V>) -> u32 {
    n.as_deref().map_or(0, |n| n.height)
}

fn size<K, V>(n: &Link<K, V>) -> usize {
    n.as_deref().map_or(0, |n| n.size)
}

fn mk<K: Clone, V: Clone>(key: K, value: V, left: Link<K, V>, right: Link<K, V>) -> Link<K, V> {
    Some(Arc::new(Node {
        height: 1 + height(&left).max(height(&right)),
        size: 1 + size(&left) + size(&right),
        key,
        value,
        left,
        right,
    }))
}

fn balance_factor<K, V>(n: &Node<K, V>) -> i32 {
    height(&n.left) as i32 - height(&n.right) as i32
}

/// Rebuild `n` with AVL rebalancing applied (the "hard part" of ordered
/// containers that TM makes composable).
fn balance<K: Clone, V: Clone>(
    key: K,
    value: V,
    left: Link<K, V>,
    right: Link<K, V>,
) -> Link<K, V> {
    let bf = height(&left) as i32 - height(&right) as i32;
    if bf > 1 {
        let l = left.as_deref().expect("left-heavy implies left child");
        if balance_factor(l) >= 0 {
            // Right rotation.
            let new_right = mk(key, value, l.right.clone(), right);
            return mk(l.key.clone(), l.value.clone(), l.left.clone(), new_right);
        }
        // Left-right rotation.
        let lr = l.right.as_deref().expect("LR rotation needs left.right");
        let new_left = mk(
            l.key.clone(),
            l.value.clone(),
            l.left.clone(),
            lr.left.clone(),
        );
        let new_right = mk(key, value, lr.right.clone(), right);
        return mk(lr.key.clone(), lr.value.clone(), new_left, new_right);
    }
    if bf < -1 {
        let r = right.as_deref().expect("right-heavy implies right child");
        if balance_factor(r) <= 0 {
            // Left rotation.
            let new_left = mk(key, value, left, r.left.clone());
            return mk(r.key.clone(), r.value.clone(), new_left, r.right.clone());
        }
        // Right-left rotation.
        let rl = r.left.as_deref().expect("RL rotation needs right.left");
        let new_left = mk(key, value, left, rl.left.clone());
        let new_right = mk(
            r.key.clone(),
            r.value.clone(),
            rl.right.clone(),
            r.right.clone(),
        );
        return mk(rl.key.clone(), rl.value.clone(), new_left, new_right);
    }
    mk(key, value, left, right)
}

fn insert_at<K: Ord + Clone, V: Clone>(
    link: &Link<K, V>,
    key: K,
    value: V,
) -> (Link<K, V>, Option<V>) {
    match link.as_deref() {
        None => (mk(key, value, None, None), None),
        Some(n) => match key.cmp(&n.key) {
            std::cmp::Ordering::Equal => (
                mk(key, value, n.left.clone(), n.right.clone()),
                Some(n.value.clone()),
            ),
            std::cmp::Ordering::Less => {
                let (l, prev) = insert_at(&n.left, key, value);
                (
                    balance(n.key.clone(), n.value.clone(), l, n.right.clone()),
                    prev,
                )
            }
            std::cmp::Ordering::Greater => {
                let (r, prev) = insert_at(&n.right, key, value);
                (
                    balance(n.key.clone(), n.value.clone(), n.left.clone(), r),
                    prev,
                )
            }
        },
    }
}

/// Remove and return the minimum node's (key, value) with the remaining
/// subtree.
fn take_min<K: Ord + Clone, V: Clone>(link: &Link<K, V>) -> Option<((K, V), Link<K, V>)> {
    let n = link.as_deref()?;
    match take_min(&n.left) {
        None => Some(((n.key.clone(), n.value.clone()), n.right.clone())),
        Some((min, rest)) => Some((
            min,
            balance(n.key.clone(), n.value.clone(), rest, n.right.clone()),
        )),
    }
}

fn remove_at<K: Ord + Clone, V: Clone>(link: &Link<K, V>, key: &K) -> (Link<K, V>, Option<V>) {
    match link.as_deref() {
        None => (None, None),
        Some(n) => match key.cmp(&n.key) {
            std::cmp::Ordering::Less => {
                let (l, removed) = remove_at(&n.left, key);
                if removed.is_none() {
                    return (link.clone(), None);
                }
                (
                    balance(n.key.clone(), n.value.clone(), l, n.right.clone()),
                    removed,
                )
            }
            std::cmp::Ordering::Greater => {
                let (r, removed) = remove_at(&n.right, key);
                if removed.is_none() {
                    return (link.clone(), None);
                }
                (
                    balance(n.key.clone(), n.value.clone(), n.left.clone(), r),
                    removed,
                )
            }
            std::cmp::Ordering::Equal => {
                let removed = Some(n.value.clone());
                let merged = match take_min(&n.right) {
                    None => n.left.clone(),
                    Some(((k, v), rest)) => balance(k, v, n.left.clone(), rest),
                };
                (merged, removed)
            }
        },
    }
}

fn get_at<'a, K: Ord, V>(mut link: &'a Link<K, V>, key: &K) -> Option<&'a V> {
    while let Some(n) = link.as_deref() {
        match key.cmp(&n.key) {
            std::cmp::Ordering::Equal => return Some(&n.value),
            std::cmp::Ordering::Less => link = &n.left,
            std::cmp::Ordering::Greater => link = &n.right,
        }
    }
    None
}

fn collect_in_order<K: Clone, V: Clone>(link: &Link<K, V>, out: &mut Vec<(K, V)>) {
    if let Some(n) = link.as_deref() {
        collect_in_order(&n.left, out);
        out.push((n.key.clone(), n.value.clone()));
        collect_in_order(&n.right, out);
    }
}

/// A transactional ordered map (persistent AVL behind a `TVar` root).
pub struct TTreeMap<K, V> {
    root: TVar<Link<K, V>>,
}

impl<K, V> TTreeMap<K, V>
where
    K: Any + Send + Sync + Clone + Ord,
    V: Any + Send + Sync + Clone,
{
    /// New empty map.
    pub fn new() -> Self {
        TTreeMap {
            root: TVar::new(None),
        }
    }

    /// Look up `key`.
    pub fn get(&self, tx: &mut Tx, key: &K) -> StmResult<Option<V>> {
        let root = tx.read(&self.root)?;
        Ok(get_at(&root, key).cloned())
    }

    /// Insert or replace; returns the previous value.
    pub fn insert(&self, tx: &mut Tx, key: K, value: V) -> StmResult<Option<V>> {
        let root = tx.read(&self.root)?;
        let (next, prev) = insert_at(&root, key, value);
        tx.write(&self.root, next)?;
        Ok(prev)
    }

    /// Remove `key`; returns the removed value.
    pub fn remove(&self, tx: &mut Tx, key: &K) -> StmResult<Option<V>> {
        let root = tx.read(&self.root)?;
        let (next, removed) = remove_at(&root, key);
        if removed.is_some() {
            tx.write(&self.root, next)?;
        }
        Ok(removed)
    }

    /// Entry count (O(1): sizes are cached in the nodes).
    pub fn len(&self, tx: &mut Tx) -> StmResult<usize> {
        Ok(size(&tx.read(&self.root)?))
    }

    /// Is the map empty?
    pub fn is_empty(&self, tx: &mut Tx) -> StmResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Smallest key, if any.
    pub fn min_key(&self, tx: &mut Tx) -> StmResult<Option<K>> {
        let root = tx.read(&self.root)?;
        let mut link = &root;
        let mut best = None;
        while let Some(n) = link.as_deref() {
            best = Some(n.key.clone());
            link = &n.left;
        }
        Ok(best)
    }

    /// All entries in key order.
    pub fn entries(&self, tx: &mut Tx) -> StmResult<Vec<(K, V)>> {
        let root = tx.read(&self.root)?;
        let mut out = Vec::with_capacity(size(&root));
        collect_in_order(&root, &mut out);
        Ok(out)
    }

    #[cfg(test)]
    fn assert_balanced(&self) {
        fn check<K, V>(link: &Link<K, V>) -> u32 {
            match link.as_deref() {
                None => 0,
                Some(n) => {
                    let hl = check(&n.left);
                    let hr = check(&n.right);
                    assert!((hl as i32 - hr as i32).abs() <= 1, "AVL invariant violated");
                    assert_eq!(n.height, 1 + hl.max(hr), "cached height wrong");
                    assert_eq!(
                        n.size,
                        1 + size(&n.left) + size(&n.right),
                        "cached size wrong"
                    );
                    n.height
                }
            }
        }
        check(&self.root.load());
    }
}

impl<K, V> Default for TTreeMap<K, V>
where
    K: Any + Send + Sync + Clone + Ord,
    V: Any + Send + Sync + Clone,
{
    fn default() -> Self {
        TTreeMap::new()
    }
}

impl<K, V> Clone for TTreeMap<K, V> {
    fn clone(&self) -> Self {
        TTreeMap {
            root: self.root.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ad_stm::atomically;

    #[test]
    fn insert_get_remove_roundtrip() {
        let t: TTreeMap<u32, String> = TTreeMap::new();
        atomically(|tx| t.insert(tx, 2, "two".into()));
        atomically(|tx| t.insert(tx, 1, "one".into()));
        atomically(|tx| t.insert(tx, 3, "three".into()));
        assert_eq!(atomically(|tx| t.get(tx, &2)).as_deref(), Some("two"));
        assert_eq!(atomically(|tx| t.len(tx)), 3);
        assert_eq!(atomically(|tx| t.remove(tx, &2)).as_deref(), Some("two"));
        assert_eq!(atomically(|tx| t.get(tx, &2)), None);
        assert_eq!(atomically(|tx| t.len(tx)), 2);
        t.assert_balanced();
    }

    #[test]
    fn stays_balanced_under_sequential_inserts() {
        let t: TTreeMap<u32, u32> = TTreeMap::new();
        atomically(|tx| {
            for i in 0..1000 {
                t.insert(tx, i, i)?;
            }
            Ok(())
        });
        t.assert_balanced();
        assert_eq!(atomically(|tx| t.len(tx)), 1000);
        assert_eq!(atomically(|tx| t.min_key(tx)), Some(0));
    }

    #[test]
    fn entries_are_sorted() {
        let t: TTreeMap<i32, i32> = TTreeMap::new();
        let keys = [5, 1, 9, 3, 7, 2, 8, 4, 6, 0];
        atomically(|tx| {
            for &k in &keys {
                t.insert(tx, k, -k)?;
            }
            Ok(())
        });
        let entries = atomically(|tx| t.entries(tx));
        let got_keys: Vec<i32> = entries.iter().map(|(k, _)| *k).collect();
        assert_eq!(got_keys, (0..10).collect::<Vec<_>>());
        t.assert_balanced();
    }

    #[test]
    fn remove_all_in_random_order() {
        let t: TTreeMap<u32, u32> = TTreeMap::new();
        atomically(|tx| {
            for i in 0..200 {
                t.insert(tx, i, i)?;
            }
            Ok(())
        });
        // Remove in a scrambled order.
        let mut order: Vec<u32> = (0..200).collect();
        let mut seed = 12345u64;
        for i in (1..order.len()).rev() {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            order.swap(i, (seed as usize) % (i + 1));
        }
        for k in order {
            assert_eq!(atomically(|tx| t.remove(tx, &k)), Some(k));
            t.assert_balanced();
        }
        assert!(atomically(|tx| t.is_empty(tx)));
    }

    #[test]
    fn insert_returns_previous() {
        let t: TTreeMap<u8, u8> = TTreeMap::new();
        assert_eq!(atomically(|tx| t.insert(tx, 1, 10)), None);
        assert_eq!(atomically(|tx| t.insert(tx, 1, 11)), Some(10));
        assert_eq!(atomically(|tx| t.len(tx)), 1);
    }

    #[test]
    fn concurrent_inserts_conserve_all_keys() {
        let t: std::sync::Arc<TTreeMap<u64, u64>> = std::sync::Arc::new(TTreeMap::new());
        std::thread::scope(|s| {
            for thr in 0..4u64 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..100u64 {
                        let k = thr * 1000 + i;
                        atomically(|tx| t.insert(tx, k, k));
                    }
                });
            }
        });
        assert_eq!(atomically(|tx| t.len(tx)), 400);
        t.assert_balanced();
    }

    #[test]
    fn readers_see_consistent_snapshots_under_writers() {
        // Writers keep the invariant: key k present iff key k+1000 present.
        let t: std::sync::Arc<TTreeMap<u64, u64>> = std::sync::Arc::new(TTreeMap::new());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let (t2, stop2) = (std::sync::Arc::clone(&t), std::sync::Arc::clone(&stop));
            s.spawn(move || {
                let mut k = 0u64;
                while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                    k = (k + 1) % 100;
                    atomically(|tx| {
                        if t2.get(tx, &k)?.is_some() {
                            t2.remove(tx, &k)?;
                            t2.remove(tx, &(k + 1000))?;
                        } else {
                            t2.insert(tx, k, k)?;
                            t2.insert(tx, k + 1000, k)?;
                        }
                        Ok(())
                    });
                }
            });
            for _ in 0..2000 {
                let (a, b) = atomically(|tx| {
                    let k = 42u64;
                    Ok((t.get(tx, &k)?.is_some(), t.get(tx, &(k + 1000))?.is_some()))
                });
                assert_eq!(a, b, "reader observed a half-applied pair");
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
}
