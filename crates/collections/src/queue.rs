//! A transactional FIFO queue (Okasaki's two-list design).
//!
//! Enqueues touch only `back`; dequeues touch only `front` except when the
//! front runs dry and the back is reversed across. Producers and consumers
//! therefore usually do **not** conflict with each other — unlike a naive
//! `TVar<VecDeque>` — which is what makes this the right STM queue.

use std::any::Any;

use ad_stm::{StmResult, TVar, Tx};

use crate::list::List;

/// A FIFO queue whose operations compose inside transactions.
pub struct TQueue<T> {
    front: TVar<List<T>>,
    back: TVar<List<T>>,
}

impl<T: Any + Send + Sync + Clone> TQueue<T> {
    /// New empty queue.
    pub fn new() -> Self {
        TQueue {
            front: TVar::new(List::new()),
            back: TVar::new(List::new()),
        }
    }

    /// Enqueue at the tail.
    pub fn push(&self, tx: &mut Tx, value: T) -> StmResult<()> {
        let back = tx.read(&self.back)?;
        tx.write(&self.back, back.push_front(value))
    }

    /// Dequeue from the head, `None` when empty.
    pub fn pop(&self, tx: &mut Tx) -> StmResult<Option<T>> {
        let front = tx.read(&self.front)?;
        if let Some((v, rest)) = front.pop_front() {
            let v = v.clone();
            tx.write(&self.front, rest)?;
            return Ok(Some(v));
        }
        // Front empty: reverse the back across.
        let back = tx.read(&self.back)?;
        let reversed = back.reversed();
        match reversed.pop_front() {
            Some((v, rest)) => {
                let v = v.clone();
                tx.write(&self.front, rest)?;
                tx.write(&self.back, List::new())?;
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    /// Dequeue, blocking (via `retry`) while the queue is empty.
    pub fn pop_blocking(&self, tx: &mut Tx) -> StmResult<T> {
        match self.pop(tx)? {
            Some(v) => Ok(v),
            None => tx.retry(),
        }
    }

    /// Number of elements (O(n)).
    pub fn len(&self, tx: &mut Tx) -> StmResult<usize> {
        Ok(tx.read(&self.front)?.len() + tx.read(&self.back)?.len())
    }

    /// Is the queue empty?
    pub fn is_empty(&self, tx: &mut Tx) -> StmResult<bool> {
        Ok(tx.read(&self.front)?.is_empty() && tx.read(&self.back)?.is_empty())
    }
}

impl<T: Any + Send + Sync + Clone> Default for TQueue<T> {
    fn default() -> Self {
        TQueue::new()
    }
}

impl<T> Clone for TQueue<T> {
    fn clone(&self) -> Self {
        TQueue {
            front: self.front.clone(),
            back: self.back.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ad_stm::atomically;

    #[test]
    fn fifo_order() {
        let q = TQueue::new();
        atomically(|tx| {
            for i in 0..10 {
                q.push(tx, i)?;
            }
            Ok(())
        });
        let mut out = Vec::new();
        while let Some(v) = atomically(|tx| q.pop(tx)) {
            out.push(v);
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let q = TQueue::new();
        atomically(|tx| {
            q.push(tx, 1)?;
            q.push(tx, 2)
        });
        assert_eq!(atomically(|tx| q.pop(tx)), Some(1));
        atomically(|tx| {
            q.push(tx, 3)?;
            q.push(tx, 4)
        });
        assert_eq!(atomically(|tx| q.pop(tx)), Some(2));
        assert_eq!(atomically(|tx| q.pop(tx)), Some(3));
        assert_eq!(atomically(|tx| q.pop(tx)), Some(4));
        assert_eq!(atomically(|tx| q.pop(tx)), None);
    }

    #[test]
    fn spsc_pipeline_delivers_everything_in_order() {
        let q = TQueue::new();
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..500u32 {
                got.push(atomically(|tx| q2.pop_blocking(tx)));
            }
            got
        });
        for i in 0..500u32 {
            atomically(|tx| q.push(tx, i));
        }
        assert_eq!(consumer.join().unwrap(), (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_conserves_items() {
        let q = TQueue::new();
        let produced: u64 = 4 * 200;
        let consumed = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..200u64 {
                        atomically(|tx| q.push(tx, t * 1000 + i));
                    }
                });
            }
            for _ in 0..4 {
                let q = q.clone();
                let consumed = &consumed;
                s.spawn(move || {
                    for _ in 0..200 {
                        atomically(|tx| q.pop_blocking(tx));
                        consumed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            consumed.load(std::sync::atomic::Ordering::Relaxed),
            produced
        );
        assert!(atomically(|tx| q.is_empty(tx)));
    }

    #[test]
    fn len_spans_both_lists() {
        let q = TQueue::new();
        atomically(|tx| {
            q.push(tx, 1)?;
            q.push(tx, 2)
        });
        atomically(|tx| q.pop(tx)); // forces the reversal
        atomically(|tx| q.push(tx, 3));
        assert_eq!(atomically(|tx| q.len(tx)), 2);
    }
}
