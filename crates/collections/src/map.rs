//! A transactional hash map with per-bucket conflict granularity — the
//! generalized form of the fingerprint table the dedup backend needed.
//!
//! Each bucket is one `TVar` holding an immutable association list:
//! operations on different buckets never conflict, so the map scales like a
//! lock-striped table while remaining fully composable (a transaction can
//! update several maps and other TVars atomically).

use std::any::Any;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};
use std::sync::Arc;

use ad_stm::internals::FxHashMap;
use ad_stm::{StmResult, TVar, Tx};

type Fx = BuildHasherDefault<crate::map::DefaultHasherShim>;

/// Hasher shim so we don't re-export ad-stm's internal hasher type in the
/// public API (the map is generic over nothing but its key/value types).
#[derive(Default, Clone)]
pub struct DefaultHasherShim(std::collections::hash_map::DefaultHasher);

impl Hasher for DefaultHasherShim {
    fn finish(&self) -> u64 {
        self.0.finish()
    }
    fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes)
    }
}

/// One bucket: an immutable snapshot of its entries.
type Bucket<K, V> = Arc<Vec<(K, V)>>;

/// A transactional hash map.
pub struct TMap<K, V> {
    buckets: Vec<TVar<Bucket<K, V>>>,
    hasher: Fx,
}

impl<K, V> TMap<K, V>
where
    K: Any + Send + Sync + Clone + Eq + Hash,
    V: Any + Send + Sync + Clone,
{
    /// A map with the default bucket count (256).
    pub fn new() -> Self {
        TMap::with_buckets(256)
    }

    /// A map with `buckets` buckets (rounded up to a power of two).
    pub fn with_buckets(buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(1);
        TMap {
            buckets: (0..n).map(|_| TVar::new(Arc::new(Vec::new()))).collect(),
            hasher: Fx::default(),
        }
    }

    fn bucket(&self, key: &K) -> &TVar<Bucket<K, V>> {
        let h = self.hasher.hash_one(key);
        &self.buckets[(h as usize) & (self.buckets.len() - 1)]
    }

    /// Look up `key`.
    pub fn get(&self, tx: &mut Tx, key: &K) -> StmResult<Option<V>> {
        let bucket = tx.read(self.bucket(key))?;
        Ok(bucket
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone()))
    }

    /// Insert or replace; returns the previous value.
    pub fn insert(&self, tx: &mut Tx, key: K, value: V) -> StmResult<Option<V>> {
        let var = self.bucket(&key);
        let bucket = tx.read(var)?;
        let mut next: Vec<(K, V)> = Vec::with_capacity(bucket.len() + 1);
        let mut prev = None;
        for (k, v) in bucket.iter() {
            if *k == key {
                prev = Some(v.clone());
            } else {
                next.push((k.clone(), v.clone()));
            }
        }
        next.push((key, value));
        tx.write(var, Arc::new(next))?;
        Ok(prev)
    }

    /// Insert only if absent; returns the winning value (existing or new)
    /// and whether this call inserted it — the dedup `lookup_or_reserve`
    /// idiom.
    pub fn get_or_insert_with(
        &self,
        tx: &mut Tx,
        key: K,
        make: impl FnOnce() -> V,
    ) -> StmResult<(V, bool)> {
        if let Some(v) = self.get(tx, &key)? {
            return Ok((v, false));
        }
        let v = make();
        self.insert(tx, key, v.clone())?;
        Ok((v, true))
    }

    /// Remove `key`; returns the removed value.
    pub fn remove(&self, tx: &mut Tx, key: &K) -> StmResult<Option<V>> {
        let var = self.bucket(key);
        let bucket = tx.read(var)?;
        if !bucket.iter().any(|(k, _)| k == key) {
            return Ok(None);
        }
        let mut removed = None;
        let next: Vec<(K, V)> = bucket
            .iter()
            .filter_map(|(k, v)| {
                if k == key {
                    removed = Some(v.clone());
                    None
                } else {
                    Some((k.clone(), v.clone()))
                }
            })
            .collect();
        tx.write(var, Arc::new(next))?;
        Ok(removed)
    }

    /// Does the map contain `key`?
    pub fn contains_key(&self, tx: &mut Tx, key: &K) -> StmResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// Total entry count (reads every bucket — a full-map conflict; use
    /// sparingly or keep a [`TCounter`](crate::TCounter) alongside).
    pub fn len(&self, tx: &mut Tx) -> StmResult<usize> {
        let mut n = 0;
        for b in &self.buckets {
            n += tx.read(b)?.len();
        }
        Ok(n)
    }

    /// Is the map empty? (Reads every bucket.)
    pub fn is_empty(&self, tx: &mut Tx) -> StmResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Snapshot all entries (reads every bucket).
    pub fn entries(&self, tx: &mut Tx) -> StmResult<Vec<(K, V)>> {
        let mut out = Vec::new();
        for b in &self.buckets {
            out.extend(tx.read(b)?.iter().cloned());
        }
        Ok(out)
    }

    /// Non-transactional consistent-per-bucket snapshot into a standard
    /// map (diagnostics; buckets are read one at a time).
    pub fn snapshot(&self) -> FxHashMap<u64, usize> {
        let mut sizes = FxHashMap::default();
        for (i, b) in self.buckets.iter().enumerate() {
            sizes.insert(i as u64, b.load().len());
        }
        sizes
    }
}

impl<K, V> Default for TMap<K, V>
where
    K: Any + Send + Sync + Clone + Eq + Hash,
    V: Any + Send + Sync + Clone,
{
    fn default() -> Self {
        TMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ad_stm::atomically;

    #[test]
    fn insert_get_remove() {
        let m: TMap<String, u32> = TMap::new();
        atomically(|tx| m.insert(tx, "a".into(), 1));
        assert_eq!(atomically(|tx| m.get(tx, &"a".to_string())), Some(1));
        assert_eq!(
            atomically(|tx| m.insert(tx, "a".into(), 2)),
            Some(1),
            "insert must return previous"
        );
        assert_eq!(atomically(|tx| m.remove(tx, &"a".to_string())), Some(2));
        assert_eq!(atomically(|tx| m.get(tx, &"a".to_string())), None);
    }

    #[test]
    fn get_or_insert_with_reserves_once() {
        let m: TMap<u32, u32> = TMap::new();
        let (v, inserted) = atomically(|tx| m.get_or_insert_with(tx, 7, || 70));
        assert_eq!((v, inserted), (70, true));
        let (v, inserted) = atomically(|tx| m.get_or_insert_with(tx, 7, || 700));
        assert_eq!((v, inserted), (70, false));
    }

    #[test]
    fn many_keys_roundtrip() {
        let m: TMap<u32, u32> = TMap::with_buckets(32);
        atomically(|tx| {
            for i in 0..500 {
                m.insert(tx, i, i * 2)?;
            }
            Ok(())
        });
        assert_eq!(atomically(|tx| m.len(tx)), 500);
        for i in 0..500 {
            assert_eq!(atomically(|tx| m.get(tx, &i)), Some(i * 2));
        }
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let m: std::sync::Arc<TMap<u64, u64>> = std::sync::Arc::new(TMap::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..250u64 {
                        let k = t * 1000 + i;
                        atomically(|tx| m.insert(tx, k, k));
                    }
                });
            }
        });
        assert_eq!(atomically(|tx| m.len(tx)), 1000);
    }

    #[test]
    fn concurrent_get_or_insert_single_winner() {
        // All threads race to reserve the same key; exactly one wins.
        let m: std::sync::Arc<TMap<u8, u64>> = std::sync::Arc::new(TMap::new());
        let winners = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = std::sync::Arc::clone(&m);
                let winners = &winners;
                s.spawn(move || {
                    let (_, inserted) = atomically(|tx| m.get_or_insert_with(tx, 1, || t));
                    if inserted {
                        winners.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(winners.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn atomic_move_between_maps() {
        let a: TMap<u32, u32> = TMap::new();
        let b: TMap<u32, u32> = TMap::new();
        atomically(|tx| a.insert(tx, 1, 10));
        atomically(|tx| {
            let v = a.remove(tx, &1)?.expect("present");
            b.insert(tx, 1, v)
        });
        assert_eq!(atomically(|tx| a.get(tx, &1)), None);
        assert_eq!(atomically(|tx| b.get(tx, &1)), Some(10));
    }
}
