//! A transactional LIFO stack.

use std::any::Any;

use ad_stm::{StmResult, TVar, Tx};

use crate::list::List;

/// A stack whose operations compose inside transactions.
///
/// The representation is a persistent list in a single `TVar`: pushes and
/// pops by concurrent transactions conflict (a stack top is an inherent
/// hot spot), but every operation is O(1) and aborted transactions retry
/// cheaply.
pub struct TStack<T> {
    cells: TVar<List<T>>,
}

impl<T: Any + Send + Sync + Clone> TStack<T> {
    /// New empty stack.
    pub fn new() -> Self {
        TStack {
            cells: TVar::new(List::new()),
        }
    }

    /// Push `value`.
    pub fn push(&self, tx: &mut Tx, value: T) -> StmResult<()> {
        let list = tx.read(&self.cells)?;
        tx.write(&self.cells, list.push_front(value))
    }

    /// Pop the top element, or `None` when empty.
    pub fn pop(&self, tx: &mut Tx) -> StmResult<Option<T>> {
        let list = tx.read(&self.cells)?;
        match list.pop_front() {
            Some((v, rest)) => {
                let v = v.clone();
                tx.write(&self.cells, rest)?;
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    /// Pop, blocking (via `retry`) while the stack is empty.
    pub fn pop_blocking(&self, tx: &mut Tx) -> StmResult<T> {
        match self.pop(tx)? {
            Some(v) => Ok(v),
            None => tx.retry(),
        }
    }

    /// Peek at the top element.
    pub fn peek(&self, tx: &mut Tx) -> StmResult<Option<T>> {
        Ok(tx.read(&self.cells)?.front().cloned())
    }

    /// Number of elements (O(n)).
    pub fn len(&self, tx: &mut Tx) -> StmResult<usize> {
        Ok(tx.read(&self.cells)?.len())
    }

    /// Is the stack empty?
    pub fn is_empty(&self, tx: &mut Tx) -> StmResult<bool> {
        Ok(tx.read(&self.cells)?.is_empty())
    }
}

impl<T: Any + Send + Sync + Clone> Default for TStack<T> {
    fn default() -> Self {
        TStack::new()
    }
}

impl<T> Clone for TStack<T> {
    fn clone(&self) -> Self {
        TStack {
            cells: self.cells.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ad_stm::atomically;

    #[test]
    fn lifo_order() {
        let s = TStack::new();
        atomically(|tx| {
            s.push(tx, 1)?;
            s.push(tx, 2)?;
            s.push(tx, 3)
        });
        let drained = atomically(|tx| {
            let mut out = Vec::new();
            while let Some(v) = s.pop(tx)? {
                out.push(v);
            }
            Ok(out)
        });
        assert_eq!(drained, vec![3, 2, 1]);
    }

    #[test]
    fn pop_empty_is_none() {
        let s: TStack<u8> = TStack::new();
        assert_eq!(atomically(|tx| s.pop(tx)), None);
        assert!(atomically(|tx| s.is_empty(tx)));
    }

    #[test]
    fn push_pop_atomic_pair_transfer() {
        // Move elements between two stacks atomically; total count is
        // invariant under concurrency.
        let a = TStack::new();
        let b = TStack::new();
        atomically(|tx| {
            for i in 0..100 {
                a.push(tx, i)?;
            }
            Ok(())
        });
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..50 {
                        atomically(|tx| {
                            if let Some(v) = a.pop(tx)? {
                                b.push(tx, v)?;
                            } else if let Some(v) = b.pop(tx)? {
                                a.push(tx, v)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        let total = atomically(|tx| Ok(a.len(tx)? + b.len(tx)?));
        assert_eq!(total, 100);
    }

    #[test]
    fn pop_blocking_waits_for_producer() {
        let s: TStack<u32> = TStack::new();
        let s2 = s.clone();
        let consumer = std::thread::spawn(move || atomically(|tx| s2.pop_blocking(tx)));
        std::thread::sleep(std::time::Duration::from_millis(30));
        atomically(|tx| s.push(tx, 77));
        assert_eq!(consumer.join().unwrap(), 77);
    }

    #[test]
    fn peek_does_not_remove() {
        let s = TStack::new();
        atomically(|tx| s.push(tx, 5));
        assert_eq!(atomically(|tx| s.peek(tx)), Some(5));
        assert_eq!(atomically(|tx| s.len(tx)), 1);
    }
}
