//! Property tests: each transactional collection must behave exactly like
//! its standard-library model under arbitrary operation sequences.
//!
//! Seeded randomized cases over `ad_support::prng` (the `proptest` crate is
//! unavailable offline); failures reproduce from the printed case number.

use std::collections::{BTreeMap, HashMap, VecDeque};

use ad_support::prng::Rng;

use ad_collections::{TMap, TQueue, TStack, TTreeMap};
use ad_stm::atomically;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u16, i32),
    Remove(u16),
    Get(u16),
}

fn random_map_op(rng: &mut Rng) -> MapOp {
    let k = (rng.next_u64() % 64) as u16;
    match rng.random_range(0..3) {
        0 => MapOp::Insert(k, rng.next_u32() as i32),
        1 => MapOp::Remove(k),
        _ => MapOp::Get(k),
    }
}

fn random_map_ops(seed: u64) -> Vec<MapOp> {
    let mut rng = Rng::seed_from_u64(seed);
    let len = rng.random_range(0..200);
    (0..len).map(|_| random_map_op(&mut rng)).collect()
}

/// Some(v) = push, None = pop — for queue/stack models.
fn random_push_pop_ops(seed: u64) -> Vec<Option<i32>> {
    let mut rng = Rng::seed_from_u64(seed);
    let len = rng.random_range(0..200);
    (0..len)
        .map(|_| {
            if rng.random_bool(0.5) {
                Some(rng.next_u32() as i32)
            } else {
                None
            }
        })
        .collect()
}

#[test]
fn tmap_matches_hashmap() {
    for case in 0..48u64 {
        let ops = random_map_ops(0xC0_0001 + case);
        let tmap: TMap<u16, i32> = TMap::with_buckets(8);
        let mut model: HashMap<u16, i32> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let prev = atomically(|tx| tmap.insert(tx, k, v));
                    assert_eq!(prev, model.insert(k, v), "case {case}");
                }
                MapOp::Remove(k) => {
                    let prev = atomically(|tx| tmap.remove(tx, &k));
                    assert_eq!(prev, model.remove(&k), "case {case}");
                }
                MapOp::Get(k) => {
                    let got = atomically(|tx| tmap.get(tx, &k));
                    assert_eq!(got, model.get(&k).copied(), "case {case}");
                }
            }
        }
        assert_eq!(atomically(|tx| tmap.len(tx)), model.len());
        let mut entries = atomically(|tx| tmap.entries(tx));
        entries.sort_unstable();
        let mut expected: Vec<(u16, i32)> = model.into_iter().collect();
        expected.sort_unstable();
        assert_eq!(entries, expected, "case {case}");
    }
}

#[test]
fn ttreemap_matches_btreemap() {
    for case in 0..48u64 {
        let ops = random_map_ops(0xC0_0002 + case);
        let tmap: TTreeMap<u16, i32> = TTreeMap::new();
        let mut model: BTreeMap<u16, i32> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let prev = atomically(|tx| tmap.insert(tx, k, v));
                    assert_eq!(prev, model.insert(k, v), "case {case}");
                }
                MapOp::Remove(k) => {
                    let prev = atomically(|tx| tmap.remove(tx, &k));
                    assert_eq!(prev, model.remove(&k), "case {case}");
                }
                MapOp::Get(k) => {
                    let got = atomically(|tx| tmap.get(tx, &k));
                    assert_eq!(got, model.get(&k).copied(), "case {case}");
                }
            }
        }
        // In-order iteration must match the sorted model exactly.
        let entries = atomically(|tx| tmap.entries(tx));
        let expected: Vec<(u16, i32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(entries, expected, "case {case}");
        assert_eq!(
            atomically(|tx| tmap.min_key(tx)),
            model.keys().next().copied()
        );
    }
}

#[test]
fn tqueue_matches_vecdeque() {
    for case in 0..48u64 {
        let ops = random_push_pop_ops(0xC0_0003 + case);
        let tq: TQueue<i32> = TQueue::new();
        let mut model: VecDeque<i32> = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    atomically(|tx| tq.push(tx, v));
                    model.push_back(v);
                }
                None => {
                    let got = atomically(|tx| tq.pop(tx));
                    assert_eq!(got, model.pop_front(), "case {case}");
                }
            }
        }
        assert_eq!(atomically(|tx| tq.len(tx)), model.len());
    }
}

#[test]
fn tstack_matches_vec() {
    for case in 0..48u64 {
        let ops = random_push_pop_ops(0xC0_0004 + case);
        let ts: TStack<i32> = TStack::new();
        let mut model: Vec<i32> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    atomically(|tx| ts.push(tx, v));
                    model.push(v);
                }
                None => {
                    let got = atomically(|tx| ts.pop(tx));
                    assert_eq!(got, model.pop(), "case {case}");
                }
            }
        }
        assert_eq!(atomically(|tx| ts.len(tx)), model.len());
        assert_eq!(atomically(|tx| ts.peek(tx)), model.last().copied());
    }
}
