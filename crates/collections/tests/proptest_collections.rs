//! Property tests: each transactional collection must behave exactly like
//! its standard-library model under arbitrary operation sequences.

use std::collections::{BTreeMap, HashMap, VecDeque};

use proptest::prelude::*;

use ad_collections::{TMap, TQueue, TStack, TTreeMap};
use ad_stm::atomically;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u16, i32),
    Remove(u16),
    Get(u16),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u16>(), any::<i32>()).prop_map(|(k, v)| MapOp::Insert(k % 64, v)),
        any::<u16>().prop_map(|k| MapOp::Remove(k % 64)),
        any::<u16>().prop_map(|k| MapOp::Get(k % 64)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tmap_matches_hashmap(ops in prop::collection::vec(map_op(), 0..200)) {
        let tmap: TMap<u16, i32> = TMap::with_buckets(8);
        let mut model: HashMap<u16, i32> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let prev = atomically(|tx| tmap.insert(tx, k, v));
                    prop_assert_eq!(prev, model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    let prev = atomically(|tx| tmap.remove(tx, &k));
                    prop_assert_eq!(prev, model.remove(&k));
                }
                MapOp::Get(k) => {
                    let got = atomically(|tx| tmap.get(tx, &k));
                    prop_assert_eq!(got, model.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(atomically(|tx| tmap.len(tx)), model.len());
        let mut entries = atomically(|tx| tmap.entries(tx));
        entries.sort_unstable();
        let mut expected: Vec<(u16, i32)> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(entries, expected);
    }

    #[test]
    fn ttreemap_matches_btreemap(ops in prop::collection::vec(map_op(), 0..200)) {
        let tmap: TTreeMap<u16, i32> = TTreeMap::new();
        let mut model: BTreeMap<u16, i32> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let prev = atomically(|tx| tmap.insert(tx, k, v));
                    prop_assert_eq!(prev, model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    let prev = atomically(|tx| tmap.remove(tx, &k));
                    prop_assert_eq!(prev, model.remove(&k));
                }
                MapOp::Get(k) => {
                    let got = atomically(|tx| tmap.get(tx, &k));
                    prop_assert_eq!(got, model.get(&k).copied());
                }
            }
        }
        // In-order iteration must match the sorted model exactly.
        let entries = atomically(|tx| tmap.entries(tx));
        let expected: Vec<(u16, i32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(entries, expected);
        prop_assert_eq!(
            atomically(|tx| tmap.min_key(tx)),
            model.keys().next().copied()
        );
    }

    #[test]
    fn tqueue_matches_vecdeque(ops in prop::collection::vec(any::<Option<i32>>(), 0..200)) {
        // Some(v) = push, None = pop.
        let tq: TQueue<i32> = TQueue::new();
        let mut model: VecDeque<i32> = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    atomically(|tx| tq.push(tx, v));
                    model.push_back(v);
                }
                None => {
                    let got = atomically(|tx| tq.pop(tx));
                    prop_assert_eq!(got, model.pop_front());
                }
            }
        }
        prop_assert_eq!(atomically(|tx| tq.len(tx)), model.len());
    }

    #[test]
    fn tstack_matches_vec(ops in prop::collection::vec(any::<Option<i32>>(), 0..200)) {
        let ts: TStack<i32> = TStack::new();
        let mut model: Vec<i32> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    atomically(|tx| ts.push(tx, v));
                    model.push(v);
                }
                None => {
                    let got = atomically(|tx| ts.pop(tx));
                    prop_assert_eq!(got, model.pop());
                }
            }
        }
        prop_assert_eq!(atomically(|tx| ts.len(tx)), model.len());
        prop_assert_eq!(atomically(|tx| ts.peek(tx)), model.last().copied());
    }
}
