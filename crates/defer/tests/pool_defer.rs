//! Atomic deferral under the pooled executor (`DeferExecCfg::Pool`).
//!
//! These tests exercise the full cross-thread hand-off: the committing
//! thread acquires the deferral locks under the transaction's *batch
//! owner*, returns as soon as write-back and quiescence finish, and a pool
//! worker impersonates the batch owner to run the operation and release.
//! The serializability guarantee (no observable intermediate state) must be
//! exactly as strong as inline — it rests on two-phase locking, not on
//! which thread runs the operation.

#![cfg(not(loom))]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ad_defer::{
    atomic_defer, atomic_defer_tracked, atomic_defer_with_result, Defer, Deferrable, TxCondvar,
};
use ad_stm::{Runtime, TVar, TmConfig};

struct Obj {
    a: TVar<u64>,
    b: TVar<u64>,
}

fn obj() -> Defer<Obj> {
    Defer::new(Obj {
        a: TVar::new(0),
        b: TVar::new(0),
    })
}

fn pool_rt() -> Runtime {
    Runtime::new(TmConfig::stm().with_defer_pool(2, 16))
}

#[test]
fn deferred_op_runs_on_a_worker_with_locks_held() {
    let rt = pool_rt();
    let o = obj();
    let committer = std::thread::current().id();
    let ran_on = Arc::new(ad_support::sync::Mutex::new(None));
    let (o2, r2) = (o.clone(), Arc::clone(&ran_on));
    rt.atomically(move |tx| {
        let (o3, r3) = (o2.clone(), Arc::clone(&r2));
        atomic_defer(tx, &[&o2.clone()], move || {
            // `locked()` works on the worker because it impersonates the
            // batch owner that holds the lock.
            o3.locked().a.store(1);
            *r3.lock() = Some(std::thread::current().id());
        })
    });
    rt.drain_deferred();
    let worker = ran_on.lock().expect("op ran");
    assert_ne!(worker, committer, "pool mode must offload to a worker");
    assert_eq!(o.peek_unsynchronized().a.load(), 1);
    assert_eq!(o.txlock().holder(), None, "locks released after the op");
}

#[test]
fn commit_returns_before_long_op_finishes() {
    // The whole point of the executor: a commit with a slow deferred op
    // returns to the caller immediately; the op completes later.
    let rt = pool_rt();
    let o = obj();
    let done = Arc::new(AtomicBool::new(false));
    let (o2, d2) = (o.clone(), Arc::clone(&done));
    let t0 = Instant::now();
    rt.atomically(move |tx| {
        let d3 = Arc::clone(&d2);
        atomic_defer(tx, &[&o2.clone()], move || {
            std::thread::sleep(Duration::from_millis(100));
            d3.store(true, Ordering::Release);
        })
    });
    let commit_latency = t0.elapsed();
    assert!(
        commit_latency < Duration::from_millis(50),
        "commit should not wait for the 100ms op (took {commit_latency:?})"
    );
    assert!(!done.load(Ordering::Acquire));
    rt.drain_deferred();
    assert!(done.load(Ordering::Acquire));
}

#[test]
fn no_intermediate_state_is_observable_under_pool() {
    // Same serializability check as the inline test in defer.rs, but the
    // long op runs on a worker while the committer keeps going.
    let rt = pool_rt();
    let o = obj();
    let stop = Arc::new(AtomicBool::new(false));

    let (o2, stop2, rt2) = (o.clone(), Arc::clone(&stop), rt.clone());
    let observer = std::thread::spawn(move || {
        let mut observations = Vec::new();
        while !stop2.load(Ordering::Relaxed) {
            let pair = rt2.atomically(|tx| {
                o2.with(tx, |f, tx| {
                    let a = tx.read(&f.a)?;
                    let b = tx.read(&f.b)?;
                    Ok((a, b))
                })
            });
            observations.push(pair);
        }
        observations
    });

    std::thread::sleep(Duration::from_millis(10));
    let o3 = o.clone();
    rt.atomically(move |tx| {
        o3.with(tx, |f, tx| tx.write(&f.a, 1))?;
        let o4 = o3.clone();
        atomic_defer(tx, &[&o3.clone()], move || {
            std::thread::sleep(Duration::from_millis(50));
            o4.locked().b.store(1);
        })
    });
    rt.drain_deferred();
    std::thread::sleep(Duration::from_millis(10));
    stop.store(true, Ordering::Relaxed);
    for (a, b) in observer.join().unwrap() {
        assert_eq!(a, b, "observed intermediate state ({a}, {b})");
    }
}

#[test]
fn ops_of_one_txn_run_in_call_order_and_share_locks() {
    let rt = pool_rt();
    let o = obj();
    let order = Arc::new(ad_support::sync::Mutex::new(Vec::new()));
    let (o1, ordr) = (o.clone(), Arc::clone(&order));
    rt.atomically(move |tx| {
        let (oa, la) = (o1.clone(), Arc::clone(&ordr));
        atomic_defer(tx, &[&o1.clone()], move || {
            // Both ops of the batch hold the object: depth 2 here.
            assert_eq!(oa.txlock().depth(), 2);
            oa.locked().a.store(10);
            la.lock().push(1);
        })?;
        let (ob, lb) = (o1.clone(), Arc::clone(&ordr));
        atomic_defer(tx, &[&o1.clone()], move || {
            assert_eq!(ob.locked().a.load(), 10, "must see prior op's effect");
            assert_eq!(ob.txlock().depth(), 1);
            lb.lock().push(2);
        })
    });
    rt.drain_deferred();
    assert_eq!(*order.lock(), vec![1, 2]);
    assert_eq!(o.txlock().holder(), None);
    assert_eq!(o.txlock().depth(), 0);
}

#[test]
fn lock_sharing_batches_serialize_in_lock_order() {
    // Two transactions defer on the same object. Whichever commits first
    // acquires the lock first; the second transaction's acquire blocks
    // (retries) until the first batch's release — so batches that share a
    // lock serialize through the lock protocol even though the worker pool
    // itself imposes no order.
    let rt = pool_rt();
    let o = obj();
    for round in 0..20u64 {
        let (oa, ob) = (o.clone(), o.clone());
        rt.atomically(move |tx| {
            let oa2 = oa.clone();
            atomic_defer(tx, &[&oa.clone()], move || {
                oa2.locked().a.update_locked(|v| v + 1);
            })
        });
        let rt2 = rt.clone();
        std::thread::spawn(move || {
            rt2.atomically(move |tx| {
                let ob2 = ob.clone();
                atomic_defer(tx, &[&ob.clone()], move || {
                    ob2.locked().b.update_locked(|v| v + 1);
                })
            });
        })
        .join()
        .unwrap();
        let _ = round;
    }
    rt.drain_deferred();
    assert_eq!(o.peek_unsynchronized().a.load(), 20);
    assert_eq!(o.peek_unsynchronized().b.load(), 20);
    assert_eq!(o.txlock().holder(), None);
}

#[test]
fn committer_reacquiring_its_own_deferred_lock_blocks_until_batch_done() {
    // After commit the locks belong to the *batch*, not the committing
    // thread — so the committer's next transaction on the same object
    // waits for its own deferred op like any other subscriber would.
    let rt = pool_rt();
    let o = obj();
    let o2 = o.clone();
    rt.atomically(move |tx| {
        let o3 = o2.clone();
        atomic_defer(tx, &[&o2.clone()], move || {
            std::thread::sleep(Duration::from_millis(40));
            o3.locked().a.store(7);
        })
    });
    // Subscribing read from the committing thread: must see the op's final
    // state, never the pre-op state after commit.
    let o4 = o.clone();
    let a = rt.atomically(move |tx| o4.with(tx, |f, tx| tx.read(&f.a)));
    assert_eq!(a, 7);
    rt.drain_deferred();
}

#[test]
fn subscribe_after_defer_in_same_txn_does_not_self_block() {
    // The ad-kv write pattern: atomic_defer first (per the irrevocability
    // ordering discipline), then transactional writes through the
    // subscribing accessor. Under the pooled executor the deferral
    // buffers the lock's owner as the *batch* owner; subscribe must
    // recognize that as the transaction's own acquisition, not block on
    // its own uncommitted write.
    let rt = pool_rt();
    let o = obj();
    let o2 = o.clone();
    rt.atomically(move |tx| {
        let o3 = o2.clone();
        atomic_defer(tx, &[&o2.clone()], move || {
            assert_eq!(o3.locked().a.load(), 5, "op sees the txn's writes");
            o3.locked().b.store(1);
        })?;
        o2.with(tx, |f, tx| tx.write(&f.a, 5))
    });
    rt.drain_deferred();
    assert_eq!(o.peek_unsynchronized().a.load(), 5);
    assert_eq!(o.peek_unsynchronized().b.load(), 1);
    assert_eq!(o.txlock().holder(), None);
}

#[test]
fn panicking_op_releases_locks_and_is_counted() {
    let rt = pool_rt();
    let o = obj();
    let o2 = o.clone();
    rt.atomically(move |tx| {
        atomic_defer(tx, &[&o2.clone()], move || {
            panic!("deferred op failed");
        })
    });
    rt.drain_deferred();
    assert_eq!(
        o.txlock().holder(),
        None,
        "a panicking deferred op must not leak its locks"
    );
    // The object stays usable afterwards.
    let o3 = o.clone();
    rt.atomically(move |tx| o3.with(tx, |f, tx| tx.write(&f.a, 3)));
    assert_eq!(o.peek_unsynchronized().a.load(), 3);
}

#[test]
fn tracked_handle_wait_poll_is_done() {
    let rt = pool_rt();
    let o = obj();
    let o2 = o.clone();
    let handle = rt.atomically(move |tx| {
        let o3 = o2.clone();
        atomic_defer_tracked(tx, &[&o2.clone()], move || {
            std::thread::sleep(Duration::from_millis(30));
            o3.locked().a.store(9);
        })
    });
    // Commit returned early; completion is tracked by the handle.
    handle.wait(&rt);
    assert!(handle.is_done());
    assert_eq!(handle.poll(), Some(()));
    assert_eq!(o.peek_unsynchronized().a.load(), 9);
}

#[test]
fn result_handle_publishes_from_worker() {
    let rt = pool_rt();
    let o = obj();
    let o2 = o.clone();
    let handle = rt.atomically(move |tx| {
        let o3 = o2.clone();
        atomic_defer_with_result(tx, &[&o2.clone()], move || {
            o3.locked().a.store(4);
            "worker-done"
        })
    });
    assert_eq!(handle.wait(&rt), "worker-done");
    assert_eq!(o.peek_unsynchronized().a.load(), 4);
}

#[test]
fn condvar_notify_from_worker_wakes_waiter() {
    // The TxCondvar notify-from-deferred pattern must keep working when the
    // deferred op runs on a pool worker: `notify_all_now` runs its own
    // transaction on the worker thread.
    let rt = pool_rt();
    let o = obj();
    let cv = TxCondvar::new();
    let woke = Arc::new(AtomicBool::new(false));

    let (cv2, rt2, w2, ow) = (cv.clone(), rt.clone(), Arc::clone(&woke), o.clone());
    let waiter = std::thread::spawn(move || {
        let v = cv2.await_value(&rt2, |tx| {
            ow.with(tx, |f, tx| {
                let a = tx.read(&f.a)?;
                Ok(if a == 1 { Some(a) } else { None })
            })
        });
        assert_eq!(v, 1);
        w2.store(true, Ordering::Release);
    });

    std::thread::sleep(Duration::from_millis(20));
    assert!(!woke.load(Ordering::Acquire));
    let (o2, cv3) = (o.clone(), cv.clone());
    rt.atomically(move |tx| {
        let (o3, cv4) = (o2.clone(), cv3.clone());
        atomic_defer(tx, &[&o2.clone()], move || {
            o3.locked().a.store(1);
            cv4.notify_all_now();
        })
    });
    waiter.join().unwrap();
    assert!(woke.load(Ordering::Acquire));
    rt.drain_deferred();
}

#[test]
fn many_transactions_many_objects_stress() {
    // 4 committer threads × 50 txns, each deferring on one of 4 shared
    // objects; counts must balance and every lock must end free.
    let rt = pool_rt();
    let objs: Vec<Defer<Obj>> = (0..4).map(|_| obj()).collect();
    let total = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for t in 0..4usize {
        let rt = rt.clone();
        let objs = objs.clone();
        let total = Arc::clone(&total);
        handles.push(std::thread::spawn(move || {
            for i in 0..50usize {
                let ob = objs[(t + i) % objs.len()].clone();
                let total = Arc::clone(&total);
                rt.atomically(move |tx| {
                    let (ob2, t2) = (ob.clone(), Arc::clone(&total));
                    atomic_defer(tx, &[&ob.clone()], move || {
                        ob2.locked().a.update_locked(|v| v + 1);
                        t2.fetch_add(1, Ordering::Relaxed);
                    })
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    rt.drain_deferred();
    assert_eq!(total.load(Ordering::Relaxed), 200);
    let sum: u64 = objs.iter().map(|o| o.peek_unsynchronized().a.load()).sum();
    assert_eq!(sum, 200);
    for o in &objs {
        assert_eq!(o.txlock().holder(), None);
    }
}
