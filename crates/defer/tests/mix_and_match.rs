#![cfg(not(loom))]

//! §4.2's selling point, tested: with transaction-friendly locks,
//! "programmers can mix and match lock-based and transaction-based
//! synchronization, using whichever is appropriate".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ad_defer::{atomic_defer, Defer, Deferrable, TxCondvar, TxLock};
use ad_stm::{Runtime, TVar, TmConfig};

/// Lock-based critical sections and transactional subscribers cooperate on
/// one object: the lock-based side mutates non-transactional state under
/// the TxLock; the transactional side subscribes and therefore never
/// observes a mid-critical-section snapshot.
#[test]
fn lock_based_and_transactional_threads_interoperate() {
    struct Obj {
        // Updated transactionally.
        tx_counter: TVar<u64>,
        // Updated from lock-based critical sections (plain atomics written
        // non-atomically in pairs to detect exclusion violations).
        raw_a: AtomicU64,
        raw_b: AtomicU64,
    }
    let rt = Runtime::new(TmConfig::stm());
    let obj = Arc::new(Defer::new(Obj {
        tx_counter: TVar::new(0),
        raw_a: AtomicU64::new(0),
        raw_b: AtomicU64::new(0),
    }));

    std::thread::scope(|s| {
        // Lock-based mutators.
        for _ in 0..2 {
            let obj = Arc::clone(&obj);
            let rt = rt.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    obj.txlock().with_lock(&rt, || {
                        let o = obj.peek_unsynchronized();
                        let a = o.raw_a.load(Ordering::Relaxed);
                        o.raw_a.store(a + 1, Ordering::Relaxed);
                        std::hint::spin_loop();
                        let b = o.raw_b.load(Ordering::Relaxed);
                        o.raw_b.store(b + 1, Ordering::Relaxed);
                    });
                }
            });
        }
        // Transactional threads: subscribe + update transactional state and
        // verify the lock-based pair is consistent whenever observed.
        for _ in 0..2 {
            let obj = Arc::clone(&obj);
            let rt = rt.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    let o2 = Arc::clone(&obj);
                    let (a, b) = rt.atomically(move |tx| {
                        o2.with(tx, |o, tx| {
                            tx.modify(&o.tx_counter, |c| c + 1)?;
                            Ok((
                                o.raw_a.load(Ordering::Relaxed),
                                o.raw_b.load(Ordering::Relaxed),
                            ))
                        })
                    });
                    assert_eq!(a, b, "observed a lock-based critical section mid-flight");
                }
            });
        }
    });

    let o = obj.peek_unsynchronized();
    assert_eq!(o.raw_a.load(Ordering::Relaxed), 400);
    assert_eq!(o.raw_b.load(Ordering::Relaxed), 400);
    assert_eq!(o.tx_counter.load(), 400);
    assert_eq!(obj.txlock().holder(), None);
}

/// A lock-based thread blocks on a TxCondvar-backed condition that a
/// transaction (with a deferred operation) eventually establishes.
#[test]
fn condvar_bridges_locks_transactions_and_deferral() {
    struct Pipelinefile {
        flushed: TVar<bool>,
    }
    let rt = Runtime::new(TmConfig::stm());
    let file = Defer::new(Pipelinefile {
        flushed: TVar::new(false),
    });
    let cv = TxCondvar::new();
    let woke_after_flush = Arc::new(AtomicBool::new(false));

    let (f2, cv2, rt2, woke2) = (
        file.clone(),
        cv.clone(),
        rt.clone(),
        Arc::clone(&woke_after_flush),
    );
    let waiter = std::thread::spawn(move || {
        // Blocking-call shape, as lock-based code expects.
        cv2.await_value(&rt2, |tx| {
            Ok(if f2.with(tx, |f, tx| tx.read(&f.flushed))? {
                Some(())
            } else {
                None
            })
        });
        woke2.store(true, Ordering::Release);
    });

    std::thread::sleep(Duration::from_millis(30));
    assert!(!woke_after_flush.load(Ordering::Acquire));

    let (f3, cv3) = (file.clone(), cv.clone());
    rt.atomically(move |tx| {
        let (f4, cv4) = (f3.clone(), cv3.clone());
        atomic_defer(tx, &[&f3.clone()], move || {
            // "fsync"
            std::thread::sleep(Duration::from_millis(10));
            f4.locked().flushed.store(true);
            cv4.notify_all_now();
        })
    });
    waiter.join().unwrap();
    assert!(woke_after_flush.load(Ordering::Acquire));
}

/// Deadlock-freedom of transactional multi-lock acquisition survives a mix
/// of orders, reentrancy, and lock-based interference.
#[test]
fn chaotic_multi_lock_stress() {
    let rt = Runtime::new(TmConfig::stm());
    let locks: Vec<TxLock> = (0..4).map(|_| TxLock::new()).collect();
    let acquisitions = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for t in 0..4usize {
            let locks = locks.clone();
            let rt = rt.clone();
            let acq = Arc::clone(&acquisitions);
            s.spawn(move || {
                for i in 0..100usize {
                    if (t + i) % 3 == 0 {
                        // Lock-based single-lock critical section.
                        locks[(t + i) % 4].with_lock(&rt, || {
                            acq.fetch_add(1, Ordering::Relaxed);
                        });
                    } else {
                        // Transactional multi-lock acquisition in a
                        // thread-dependent order.
                        let order: Vec<usize> = if t % 2 == 0 {
                            (0..4).collect()
                        } else {
                            (0..4).rev().collect()
                        };
                        rt.atomically(|tx| {
                            for &k in &order {
                                locks[k].acquire(tx)?;
                            }
                            Ok(())
                        });
                        acq.fetch_add(1, Ordering::Relaxed);
                        rt.atomically(|tx| {
                            for &k in &order {
                                locks[k].release(tx)?;
                            }
                            Ok(())
                        });
                    }
                }
            });
        }
    });

    assert_eq!(acquisitions.load(Ordering::Relaxed), 400);
    for l in &locks {
        assert_eq!(l.holder(), None, "lock leaked");
        assert_eq!(l.depth(), 0);
    }
}
