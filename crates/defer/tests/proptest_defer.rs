#![cfg(not(loom))]

//! Property tests for the deferral layer: lock invariants and deferral
//! semantics under randomized schedules.
//!
//! Seeded randomized cases over `ad_support::prng` (the `proptest` crate is
//! unavailable offline); failures reproduce from the printed case number.

use ad_support::prng::Rng;
use std::sync::Arc;

use ad_defer::{atomic_defer, Defer, Deferrable, TxLock};
use ad_stm::{Runtime, TVar, TmConfig};

/// Mutual exclusion: N threads doing M lock-protected increments of a
/// plain (non-transactional) counter never lose updates — and the lock
/// ends up free with depth 0.
#[test]
fn txlock_mutual_exclusion() {
    for case in 0..8u64 {
        let mut rng = Rng::seed_from_u64(0xDE_0001 + case);
        let threads = rng.random_range(1..4);
        let incs = rng.random_range(1..50);
        let rt = Runtime::new(TmConfig::stm());
        let lock = TxLock::new();
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let lock = lock.clone();
                let counter = Arc::clone(&counter);
                let rt = rt.clone();
                s.spawn(move || {
                    for _ in 0..incs {
                        lock.with_lock(&rt, || {
                            // Non-atomic read-modify-write: only safe if the
                            // lock really excludes.
                            let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                            std::hint::spin_loop();
                            counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            (threads * incs) as u64,
            "case {case}"
        );
        assert_eq!(lock.holder(), None);
        assert_eq!(lock.depth(), 0);
    }
}

/// Reentrancy bookkeeping: any sequence of nested acquires is undone by
/// the same number of releases, through arbitrary transaction groupings.
#[test]
fn txlock_reentrancy_balance() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xDE_0002 + case);
        let n = rng.random_range(1..6);
        let depths: Vec<u32> = (0..n).map(|_| rng.random_range(1..5) as u32).collect();
        let rt = Runtime::new(TmConfig::stm());
        let lock = TxLock::new();
        for &d in &depths {
            rt.atomically(|tx| {
                for _ in 0..d {
                    lock.acquire(tx)?;
                }
                Ok(())
            });
            assert_eq!(lock.depth(), d);
            rt.atomically(|tx| {
                for _ in 0..d {
                    lock.release(tx)?;
                }
                Ok(())
            });
            assert_eq!(lock.depth(), 0);
            assert_eq!(lock.holder(), None);
        }
    }
}

/// Atomicity of deferral under randomized object counts: a transaction
/// defers an op over a random subset of objects; afterwards every lock
/// is free and every touched object was updated exactly once.
#[test]
fn deferral_touches_exactly_the_listed_objects() {
    struct Cell {
        v: TVar<u64>,
    }
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xDE_0003 + case);
        let n_objs = rng.random_range(1..6);
        let rounds = rng.random_range(1..10);
        let rt = Runtime::new(TmConfig::stm());
        let objs: Vec<Defer<Cell>> = (0..n_objs)
            .map(|_| Defer::new(Cell { v: TVar::new(0) }))
            .collect();
        for round in 0..rounds {
            // Rotate which objects participate.
            let chosen: Vec<Defer<Cell>> = objs
                .iter()
                .enumerate()
                .filter(|(i, _)| (i + round) % 2 == 0)
                .map(|(_, o)| o.clone())
                .collect();
            if chosen.is_empty() {
                continue;
            }
            let chosen2 = chosen.clone();
            rt.atomically(move |tx| {
                let refs: Vec<&dyn Deferrable> =
                    chosen2.iter().map(|o| o as &dyn Deferrable).collect();
                let chosen3 = chosen2.clone();
                atomic_defer(tx, &refs, move || {
                    for o in &chosen3 {
                        o.locked().v.update_locked(|v| v + 1);
                    }
                })
            });
            for o in &objs {
                assert_eq!(o.txlock().holder(), None, "case {case}");
            }
        }
    }
}

/// Deferred operations of committed transactions always run exactly
/// once, under concurrency, for arbitrary thread/op counts.
#[test]
fn deferred_ops_run_exactly_once() {
    struct Counter {
        n: TVar<u64>,
    }
    for case in 0..8u64 {
        let mut rng = Rng::seed_from_u64(0xDE_0004 + case);
        let threads = rng.random_range(1..4);
        let ops = rng.random_range(1..40);
        let rt = Runtime::new(TmConfig::stm());
        let obj = Arc::new(Defer::new(Counter { n: TVar::new(0) }));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let obj = Arc::clone(&obj);
                let rt = rt.clone();
                s.spawn(move || {
                    for _ in 0..ops {
                        let o = Arc::clone(&obj);
                        rt.atomically(move |tx| {
                            let o2 = Arc::clone(&o);
                            atomic_defer(tx, &[&*o], move || {
                                o2.locked().n.update_locked(|n| n + 1);
                            })
                        });
                    }
                });
            }
        });
        assert_eq!(
            obj.peek_unsynchronized().n.load(),
            (threads * ops) as u64,
            "case {case}"
        );
        assert_eq!(rt.stats().deferred_ops, (threads * ops) as u64);
    }
}
