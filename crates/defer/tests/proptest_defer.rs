//! Property tests for the deferral layer: lock invariants and deferral
//! semantics under randomized schedules.

use proptest::prelude::*;
use std::sync::Arc;

use ad_defer::{atomic_defer, Defer, Deferrable, TxLock};
use ad_stm::{Runtime, TVar, TmConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mutual exclusion: N threads doing M lock-protected increments of a
    /// plain (non-transactional) counter never lose updates — and the lock
    /// ends up free with depth 0.
    #[test]
    fn txlock_mutual_exclusion(threads in 1usize..4, incs in 1usize..50) {
        let rt = Runtime::new(TmConfig::stm());
        let lock = TxLock::new();
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let lock = lock.clone();
                let counter = Arc::clone(&counter);
                let rt = rt.clone();
                s.spawn(move || {
                    for _ in 0..incs {
                        lock.with_lock(&rt, || {
                            // Non-atomic read-modify-write: only safe if the
                            // lock really excludes.
                            let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                            std::hint::spin_loop();
                            counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        prop_assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            (threads * incs) as u64
        );
        prop_assert_eq!(lock.holder(), None);
        prop_assert_eq!(lock.depth(), 0);
    }

    /// Reentrancy bookkeeping: any sequence of nested acquires is undone by
    /// the same number of releases, through arbitrary transaction
    /// groupings.
    #[test]
    fn txlock_reentrancy_balance(depths in prop::collection::vec(1u32..5, 1..6)) {
        let rt = Runtime::new(TmConfig::stm());
        let lock = TxLock::new();
        for &d in &depths {
            rt.atomically(|tx| {
                for _ in 0..d {
                    lock.acquire(tx)?;
                }
                Ok(())
            });
            assert_eq!(lock.depth(), d);
            rt.atomically(|tx| {
                for _ in 0..d {
                    lock.release(tx)?;
                }
                Ok(())
            });
            assert_eq!(lock.depth(), 0);
            assert_eq!(lock.holder(), None);
        }
    }

    /// Atomicity of deferral under randomized object counts: a transaction
    /// defers an op over a random subset of objects; afterwards every lock
    /// is free and every touched object was updated exactly once.
    #[test]
    fn deferral_touches_exactly_the_listed_objects(
        n_objs in 1usize..6,
        rounds in 1usize..10,
    ) {
        struct Cell { v: TVar<u64> }
        let rt = Runtime::new(TmConfig::stm());
        let objs: Vec<Defer<Cell>> = (0..n_objs)
            .map(|_| Defer::new(Cell { v: TVar::new(0) }))
            .collect();
        for round in 0..rounds {
            // Rotate which objects participate.
            let chosen: Vec<Defer<Cell>> = objs
                .iter()
                .enumerate()
                .filter(|(i, _)| (i + round) % 2 == 0)
                .map(|(_, o)| o.clone())
                .collect();
            if chosen.is_empty() { continue; }
            let chosen2 = chosen.clone();
            rt.atomically(move |tx| {
                let refs: Vec<&dyn ad_defer::Deferrable> =
                    chosen2.iter().map(|o| o as &dyn ad_defer::Deferrable).collect();
                let chosen3 = chosen2.clone();
                atomic_defer(tx, &refs, move || {
                    for o in &chosen3 {
                        o.locked().v.update_locked(|v| v + 1);
                    }
                })
            });
            for o in &objs {
                prop_assert_eq!(o.txlock().holder(), None);
            }
        }
    }

    /// Deferred operations of committed transactions always run exactly
    /// once, under concurrency, for arbitrary thread/op counts.
    #[test]
    fn deferred_ops_run_exactly_once(threads in 1usize..4, ops in 1usize..40) {
        struct Counter { n: TVar<u64> }
        let rt = Runtime::new(TmConfig::stm());
        let obj = Arc::new(Defer::new(Counter { n: TVar::new(0) }));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let obj = Arc::clone(&obj);
                let rt = rt.clone();
                s.spawn(move || {
                    for _ in 0..ops {
                        let o = Arc::clone(&obj);
                        rt.atomically(move |tx| {
                            let o2 = Arc::clone(&o);
                            atomic_defer(tx, &[&*o], move || {
                                o2.locked().n.update_locked(|n| n + 1);
                            })
                        });
                    }
                });
            }
        });
        prop_assert_eq!(
            obj.peek_unsynchronized().n.load(),
            (threads * ops) as u64
        );
        prop_assert_eq!(rt.stats().deferred_ops, (threads * ops) as u64);
    }
}
