//! Transaction-friendly mutual exclusion locks (paper §4.2, Listing 2).
//!
//! A [`TxLock`] is a reentrant mutex whose state (`owner`, `depth`) lives in
//! transactional variables. That single design decision yields all of its
//! special properties:
//!
//! * **Acquire/release inside transactions**: the state change is buffered
//!   like any transactional write and only becomes visible when the
//!   enclosing transaction commits — so a transaction acquires all of a
//!   deferred operation's locks *atomically with its commit*, the essence of
//!   the paper's two-phase-locking argument.
//! * **Deadlock-free multi-lock acquisition**: acquiring several locks
//!   inside one transaction either commits them all or conflicts/retries as
//!   a unit; no global lock order is needed.
//! * **Subscription (lock elision)**: [`TxLock::subscribe`] merely *reads*
//!   `owner`. Concurrent subscribers do not conflict with each other, but
//!   any later acquisition makes every subscribed transaction's validation
//!   fail, aborting it — exactly the conflict the paper relies on to keep
//!   deferred operations invisible.
//!
//! `owner` and `depth` are two separate `TVar`s, as the paper notes they can
//! be: "since the implementation uses transactions, the owner and depth
//! fields need not be packed into a single machine word."

use ad_stm::{EventKind, Runtime, StmResult, TVar, Tx};

use crate::owner::OwnerId;

/// A transaction-friendly, reentrant mutex (paper Listing 2). Cloning
/// produces another handle to the same lock.
#[derive(Clone)]
pub struct TxLock {
    owner: TVar<Option<OwnerId>>,
    depth: TVar<u32>,
}

impl TxLock {
    /// Create an unheld lock.
    pub fn new() -> Self {
        TxLock {
            owner: TVar::new(None),
            depth: TVar::new(0),
        }
    }

    /// Acquire the lock within a transaction (`TxLock.Acquire`).
    ///
    /// * Unheld: becomes held by the calling thread when the enclosing
    ///   transaction commits.
    /// * Held by the calling thread (possibly by an earlier `acquire` in the
    ///   same transaction): the depth count increases — the lock is
    ///   reentrant.
    /// * Held by another thread: the transaction blocks via `retry` (the
    ///   paper's `spin(); retry`), re-executing once the owner releases.
    pub fn acquire(&self, tx: &mut Tx) -> StmResult<()> {
        self.acquire_as(tx, OwnerId::me())
    }

    /// Acquire the lock within a transaction on behalf of `me` — usually
    /// the calling thread, but for pooled deferrals the batch owner
    /// (`OwnerId::batch`), so that a pool worker impersonating that owner
    /// can run the operation and release. Reentrancy is judged against
    /// `me`, preserving the same-transaction reentrant-acquire behavior.
    pub(crate) fn acquire_as(&self, tx: &mut Tx, me: OwnerId) -> StmResult<()> {
        match tx.read(&self.owner)? {
            None => {
                // On the shared timeline (txtrace) this event marks the
                // *buffered* acquisition; it becomes real at the enclosing
                // Commit event. The lock's identity is its owner-TVar id.
                tx.trace(EventKind::LockAcquire, self.id());
                tx.write(&self.owner, Some(me))?;
                tx.write(&self.depth, 1)
            }
            Some(o) if o == me => {
                let d = tx.read(&self.depth)?;
                tx.write(&self.depth, d + 1)
            }
            Some(_) => tx.retry(),
        }
    }

    /// Release the lock within a transaction (`TxLock.Release`).
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not hold the lock — the paper's
    /// "\[optional\] forbid handoff of held lock" fatal error. Lock handoff
    /// between threads is a bug in the deferral protocol, so we always
    /// enforce this.
    pub fn release(&self, tx: &mut Tx) -> StmResult<()> {
        let me = OwnerId::me();
        match tx.read(&self.owner)? {
            Some(o) if o == me => {
                let d = tx.read(&self.depth)?;
                if d > 1 {
                    tx.write(&self.depth, d - 1)
                } else {
                    tx.write(&self.depth, 0)?;
                    tx.write(&self.owner, None)
                }
            }
            other => panic!(
                "TxLock::release by {me} but lock is held by {other:?}: \
                 releasing a lock you do not hold"
            ),
        }
    }

    /// Subscribe to the lock (`TxLock.Subscribe`): block (via `retry`) until
    /// the lock is unheld or held by the calling context. Reading `owner`
    /// puts it in the transaction's read set, so a subsequent acquisition by
    /// any other thread aborts this transaction — even after `subscribe`
    /// returns, up to commit.
    ///
    /// "Held by the calling context" covers the calling thread (or the
    /// impersonated batch owner, inside a pooled deferred op) *and* the
    /// transaction's own batch owner: under the pooled executor an earlier
    /// `atomic_defer` in this very transaction buffers the acquisition
    /// under the batch owner, and a subscribe after it must not block the
    /// transaction on its own uncommitted write.
    pub fn subscribe(&self, tx: &mut Tx) -> StmResult<()> {
        let me = OwnerId::me();
        let my_batch = tx.defer_batch_token_peek().map(OwnerId::batch);
        match tx.read(&self.owner)? {
            None => {
                tx.trace(EventKind::LockSubscribe, self.id());
                Ok(())
            }
            Some(o) if o == me || Some(o) == my_batch => {
                tx.trace(EventKind::LockSubscribe, self.id());
                Ok(())
            }
            Some(_) => tx.retry(),
        }
    }

    /// A stable identity for this lock on the observability timeline: the
    /// id of its `owner` `TVar` (the variable subscribers read, so it is
    /// also the id that shows up in `validate_fail` events when an
    /// acquisition aborts subscribed transactions).
    pub fn id(&self) -> u64 {
        self.owner.id() as u64
    }

    /// Acquire from outside any transaction: runs a small transaction that
    /// blocks until the lock is available.
    pub fn acquire_now(&self, rt: &Runtime) {
        rt.atomically(|tx| self.acquire(tx));
    }

    /// Release from outside any transaction (used by the deferral machinery
    /// after a deferred operation completes, and usable directly for
    /// lock-based critical sections that "mix and match" with transactions).
    pub fn release_now(&self, rt: &Runtime) {
        rt.atomically(|tx| self.release(tx));
    }

    /// Non-transactional snapshot of the owner (diagnostics; immediately
    /// stale).
    pub fn holder(&self) -> Option<OwnerId> {
        self.owner.load()
    }

    /// Does the calling thread hold this lock (committed state)?
    pub fn held_by_me(&self) -> bool {
        self.holder() == Some(OwnerId::me())
    }

    /// Current reentrancy depth (committed state; diagnostics).
    pub fn depth(&self) -> u32 {
        self.depth.load()
    }

    /// Run `f` as a lock-based critical section: acquire, run, release.
    /// This is the bridge for adapting lock-based code gradually — the
    /// critical section body runs *outside* any transaction, but the lock
    /// is visible to (and respected by) transactional subscribers.
    pub fn with_lock<R>(&self, rt: &Runtime, f: impl FnOnce() -> R) -> R {
        self.acquire_now(rt);
        // Release even if `f` panics so tests and long-running programs do
        // not wedge; the paper's C++ RAII idiom would do the same.
        struct ReleaseGuard<'a>(&'a TxLock, &'a Runtime);
        impl Drop for ReleaseGuard<'_> {
            fn drop(&mut self) {
                self.0.release_now(self.1);
            }
        }
        let _g = ReleaseGuard(self, rt);
        f()
    }
}

impl Default for TxLock {
    fn default() -> Self {
        TxLock::new()
    }
}

impl std::fmt::Debug for TxLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxLock")
            .field("holder", &self.holder())
            .field("depth", &self.depth())
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ad_stm::atomically;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn rt() -> &'static Runtime {
        Runtime::global()
    }

    #[test]
    fn acquire_release_roundtrip() {
        let l = TxLock::new();
        assert_eq!(l.holder(), None);
        l.acquire_now(rt());
        assert!(l.held_by_me());
        assert_eq!(l.depth(), 1);
        l.release_now(rt());
        assert_eq!(l.holder(), None);
        assert_eq!(l.depth(), 0);
    }

    #[test]
    fn reentrant_acquire_tracks_depth() {
        let l = TxLock::new();
        l.acquire_now(rt());
        l.acquire_now(rt());
        l.acquire_now(rt());
        assert_eq!(l.depth(), 3);
        l.release_now(rt());
        assert!(l.held_by_me());
        assert_eq!(l.depth(), 2);
        l.release_now(rt());
        l.release_now(rt());
        assert_eq!(l.holder(), None);
    }

    #[test]
    fn acquire_inside_transaction_is_atomic_with_commit() {
        let l = TxLock::new();
        let observed_held_mid_tx = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));

        let (l2, o2, g2, d2) = (
            l.clone(),
            Arc::clone(&observed_held_mid_tx),
            Arc::clone(&gate),
            Arc::clone(&done),
        );
        let observer = std::thread::spawn(move || {
            while !g2.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            o2.store(l2.holder().is_some(), Ordering::Release);
            d2.store(true, Ordering::Release);
        });

        atomically(|tx| {
            l.acquire(tx)?;
            gate.store(true, Ordering::Release);
            while !done.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            Ok(())
        });
        observer.join().unwrap();
        assert!(
            !observed_held_mid_tx.load(Ordering::Acquire),
            "lock acquisition leaked out of an uncommitted transaction"
        );
        assert!(l.held_by_me());
        l.release_now(rt());
    }

    #[test]
    fn acquire_blocks_other_thread_until_release() {
        let l = TxLock::new();
        l.acquire_now(rt());

        let l2 = l.clone();
        let acquired = Arc::new(AtomicBool::new(false));
        let a2 = Arc::clone(&acquired);
        let h = std::thread::spawn(move || {
            l2.acquire_now(rt());
            a2.store(true, Ordering::Release);
            l2.release_now(rt());
        });

        std::thread::sleep(Duration::from_millis(30));
        assert!(!acquired.load(Ordering::Acquire));
        l.release_now(rt());
        h.join().unwrap();
        assert!(acquired.load(Ordering::Acquire));
    }

    #[test]
    fn subscribe_passes_when_unheld_or_self_held() {
        let l = TxLock::new();
        atomically(|tx| l.subscribe(tx));
        l.acquire_now(rt());
        atomically(|tx| l.subscribe(tx)); // held by me: fine
        l.release_now(rt());
    }

    #[test]
    fn subscribe_blocks_while_other_thread_holds() {
        let l = TxLock::new();
        l.acquire_now(rt());

        let l2 = l.clone();
        let passed = Arc::new(AtomicBool::new(false));
        let p2 = Arc::clone(&passed);
        let h = std::thread::spawn(move || {
            atomically(|tx| l2.subscribe(tx));
            p2.store(true, Ordering::Release);
        });

        std::thread::sleep(Duration::from_millis(30));
        assert!(!passed.load(Ordering::Acquire));
        l.release_now(rt());
        h.join().unwrap();
        assert!(passed.load(Ordering::Acquire));
    }

    #[test]
    fn multi_lock_acquisition_is_all_or_nothing() {
        // Two threads acquire (a, b) in opposite orders inside transactions;
        // with ordinary locks this deadlocks, with TxLocks it cannot.
        let a = TxLock::new();
        let b = TxLock::new();
        let mut handles = Vec::new();
        for flip in [false, true] {
            let (a, b) = (a.clone(), b.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    atomically(|tx| {
                        if flip {
                            b.acquire(tx)?;
                            a.acquire(tx)
                        } else {
                            a.acquire(tx)?;
                            b.acquire(tx)
                        }
                    });
                    atomically(|tx| {
                        a.release(tx)?;
                        b.release(tx)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.holder(), None);
        assert_eq!(b.holder(), None);
    }

    #[test]
    #[should_panic(expected = "releasing a lock you do not hold")]
    fn releasing_unheld_lock_is_fatal() {
        let l = TxLock::new();
        l.release_now(rt());
    }

    #[test]
    fn with_lock_releases_on_panic() {
        let l = TxLock::new();
        let l2 = l.clone();
        let r = std::thread::spawn(move || {
            l2.with_lock(rt(), || panic!("inside critical section"));
        })
        .join();
        assert!(r.is_err());
        assert_eq!(l.holder(), None, "lock leaked after panic");
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let l = TxLock::new();
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let in_cs = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = l.clone();
            let counter = Arc::clone(&counter);
            let in_cs = Arc::clone(&in_cs);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    l.with_lock(rt(), || {
                        assert!(!in_cs.swap(true, Ordering::SeqCst), "two threads in CS");
                        counter.fetch_add(1, Ordering::Relaxed);
                        in_cs.store(false, Ordering::SeqCst);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 800);
    }
}
