//! # ad-defer — atomic deferral for transactional memory
//!
//! The core contribution of *"Extending Transactional Memory with Atomic
//! Deferral"* (Zhou, Luchangco, Spear — OPODIS 2017; SPAA 2017 brief
//! announcement): move long-running or irrevocable operations (I/O, system
//! calls, big pure computations) *out* of a transaction while keeping the
//! combined transaction + deferred operation **serializable** — no other
//! transaction can observe the state between the commit and the completion
//! of its deferred operations.
//!
//! ## The pieces
//!
//! * [`TxLock`] — a transaction-friendly, reentrant mutex whose state lives
//!   in transactional memory: acquirable/releasable inside transactions
//!   (deadlock-free, atomic with commit) and *subscribable* — a transaction
//!   that subscribes conflicts with any later acquisition (Listing 2).
//! * [`Deferrable`] / [`Defer<T>`] — objects carrying an implicit `TxLock`;
//!   every transactional accessor subscribes first (the paper's
//!   `deferrable class` annotation).
//! * [`atomic_defer`] — inside a transaction: transactionally acquire the
//!   locks of all objects the deferred operation will touch and queue the
//!   operation; at commit the locks become visible atomically with the
//!   transaction's writes, the operation runs, then its locks are released
//!   (Listing 1). The correctness argument is two-phase locking (§4.1).
//! * [`io`] — the paper's use cases as library types: deferred logging,
//!   ordered durable output, and a bounded file-descriptor pool.
//!
//! ## Quickstart
//!
//! ```
//! use ad_stm::{atomically, TVar};
//! use ad_defer::{atomic_defer, Defer};
//!
//! // A deferrable object: shared fields are TVars, accessed via `with`
//! // (which subscribes to the implicit lock).
//! struct Stats { flushed: TVar<u64> }
//! let stats = Defer::new(Stats { flushed: TVar::new(0) });
//!
//! let s = stats.clone();
//! atomically(|tx| {
//!     // ... arbitrary transactional work ...
//!     let s2 = s.clone();
//!     atomic_defer(tx, &[&s.clone()], move || {
//!         // Runs after commit, atomically with the transaction as far as
//!         // any other transaction can tell. Pretend this was an fsync:
//!         s2.locked().flushed.update_locked(|n| n + 1);
//!     })
//! });
//! assert_eq!(stats.peek_unsynchronized().flushed.load(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod condvar;
mod defer;
mod deferrable;
mod handle;
pub mod io;
mod owner;
mod txlock;

/// Loom-style model of the TxLock subscribe/acquire visibility protocol.
/// Compiled only under `RUSTFLAGS="--cfg loom"` test builds — see
/// VERIFICATION.md for what the model proves and how to run it.
#[cfg(all(test, loom))]
mod verify;

pub use condvar::TxCondvar;
pub use defer::{atomic_defer, atomic_defer_unordered};
pub use deferrable::{Defer, Deferrable, LockedRef};
pub use handle::{atomic_defer_tracked, atomic_defer_with_result, DeferHandle};
pub use owner::OwnerId;
pub use txlock::TxLock;
