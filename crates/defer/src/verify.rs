//! Loom-style model of the TxLock subscribe/acquire protocol (paper §4).
//!
//! The serializability argument of atomic deferral rests on one visibility
//! property: a transaction that *subscribes* to a deferrable object's lock
//! (every transactional accessor does, via [`Defer::with`]) can never
//! commit having observed the half-applied state of a deferred operation.
//! The mechanism: `subscribe` reads the lock's `owner` `TVar`, so the
//! owning transaction's commit-time acquisition — and the post-operation
//! release — both invalidate the subscriber, which aborts and re-executes.
//!
//! Two scenarios, two threads each, run under `ad_support::model`'s
//! controlled scheduler (`RUSTFLAGS="--cfg loom"`):
//!
//! * [`subscribe_vs_deferred_write`] — the green model. A writer commits a
//!   transaction whose deferred operation increments the object's two
//!   (non-transactional) counters one at a time — a torn state `a != b`
//!   exists while the lock is held. A reader repeatedly runs a subscribing
//!   transaction that loads both counters, and asserts `a == b` *after*
//!   each commit (mid-attempt observations may legitimately be torn — the
//!   commit-time validation is exactly what discards those attempts).
//! * The regression variant drops the subscription: the reader peeks at
//!   the fields through [`Defer::peek_unsynchronized`] with no transaction
//!   — the unlisted-object data race of §4.1 — and
//!   [`model_catches_unsubscribed_read`] asserts the model observes a torn
//!   pair. This guards the green model's sensitivity: if torn states ever
//!   stop being produced (or observed), the subscription model proves
//!   nothing.
//!
//! Three further models cover the pooled-executor hand-off and multi-object
//! deferral (the pool itself — OS threads, condvars — cannot run under the
//! model scheduler, so the hand-off protocol is reconstructed from the same
//! crate-internal pieces the pool path uses: `acquire_as` under a batch
//! owner, and `impersonate` on the runner):
//!
//! * [`deferred_locks_span_thread_handoff`] — green. A committer acquires
//!   the object's lock under a *batch owner*, atomically with its commit; a
//!   separate worker thread impersonates that owner, performs the two-step
//!   (torn-in-between) update, and only then releases. Subscribing readers
//!   must never commit a torn observation even though commit and operation
//!   happen on different threads.
//! * [`model_catches_release_before_op_done`] — regression. The worker
//!   releases *before* running the op (the shrinking phase misordered —
//!   exactly the bug an executor refactor could introduce), and the model
//!   must observe a torn pair through a subscribing reader.
//! * [`multi_object_defer_is_deadlock_free`] — two transactions defer over
//!   the same two objects listed in opposite orders. With ordinary mutexes
//!   this interleaving deadlocks; transactional acquisition aborts and
//!   re-executes instead, so both executions must complete within the step
//!   budget (a deadlock or livelock blows it and fails the model).
//!
//! The whole STM stack runs under the model scheduler here — TL2 reads,
//! commit-time validation, quiescence, the post-commit deferral queue, and
//! the release-time `atomically` — so an execution is hundreds of
//! scheduling points; seed counts are sized accordingly.

use std::sync::Arc;

use ad_stm::{Runtime, TmConfig};
use ad_support::model::{check, check_expect_violation, yield_point, CheckOpts, Exec};
use ad_support::sync::atomic::{AtomicU64, Ordering};

use crate::defer::atomic_defer;
use crate::deferrable::{Defer, Deferrable};
use crate::owner::{self, OwnerId};

/// The shared object: two plain (facade) atomics a deferred operation
/// updates non-atomically, one after the other. No `TVar`s on purpose —
/// nothing protects a reader from tearing except the TxLock protocol
/// under test.
struct Pair {
    a: AtomicU64,
    b: AtomicU64,
}

fn scenario(e: &mut Exec, subscribe: bool) {
    let rt = Arc::new(Runtime::new(TmConfig::stm()));
    let obj = Arc::new(Defer::new(Pair {
        a: AtomicU64::new(0),
        b: AtomicU64::new(0),
    }));

    // Writer: one transaction deferring a two-step update of the pair.
    // Between the deferred op's two stores the state is torn, but the
    // object's lock is held from the commit point until after the second
    // store — subscribers must never commit an observation of it.
    let (w_rt, w_obj) = (Arc::clone(&rt), Arc::clone(&obj));
    e.spawn(move || {
        let inner = Arc::clone(&w_obj);
        w_rt.atomically(move |tx| {
            let op_obj = Arc::clone(&inner);
            atomic_defer(tx, &[&*inner], move || {
                let p = op_obj.locked();
                let a = p.a.load(Ordering::SeqCst);
                p.a.store(a + 1, Ordering::SeqCst);
                let b = p.b.load(Ordering::SeqCst);
                p.b.store(b + 1, Ordering::SeqCst);
            })
        });
    });

    // Reader: a few observations of the pair.
    let (r_rt, r_obj) = (rt, obj);
    e.spawn(move || {
        for _ in 0..2 {
            let (a, b) = if subscribe {
                // Through the protocol: subscribe, then load. Only the
                // *committed* observation is asserted on — aborted attempts
                // are allowed to see anything.
                let o = Arc::clone(&r_obj);
                r_rt.atomically(move |tx| {
                    o.with(tx, |p, _| {
                        Ok((p.a.load(Ordering::SeqCst), p.b.load(Ordering::SeqCst)))
                    })
                })
            } else {
                // BUG (deliberate): raw access, no subscription, no
                // transaction — the §4.1 data race.
                let p = r_obj.peek_unsynchronized();
                (p.a.load(Ordering::SeqCst), p.b.load(Ordering::SeqCst))
            };
            assert_eq!(
                a, b,
                "observed a deferred operation's intermediate state: ({a}, {b})"
            );
        }
    });
}

/// Green model: subscribing readers never observe torn deferred updates.
#[test]
fn subscribe_vs_deferred_write() {
    check(
        "txlock-subscribe-vs-deferred-write",
        CheckOpts {
            seeds: 600,
            max_steps: 500_000,
        },
        |e| scenario(e, true),
    );
}

/// Regression model: without the subscription the torn state is
/// observable, and the model must find it. If this fails, the green model
/// above has rotted into always-green.
#[test]
fn model_catches_unsubscribed_read() {
    let violation = check_expect_violation(
        CheckOpts {
            seeds: 600,
            max_steps: 500_000,
        },
        |e| scenario(e, false),
    );
    let (seed, msg) =
        violation.expect("the unsubscribed-reader variant no longer observes a torn pair; re-tune");
    assert!(
        msg.contains("intermediate state"),
        "expected a torn-pair observation, got (seed {seed}): {msg}"
    );
}

/// The pooled-executor hand-off, reconstructed from its crate-internal
/// pieces: a committer acquires the object's lock under a batch owner
/// (atomically with its commit, as `atomic_defer` does in pool mode), and a
/// separate worker thread impersonates that owner to run the two-step
/// update and release. The pool's queue/condvar machinery is replaced by a
/// post-commit hand-off flag so the whole protocol runs under the model
/// scheduler.
///
/// `release_before_op` misorders the worker's shrinking phase — release
/// first, then the op — which is the lock-leak-free-but-unserializable bug
/// an executor refactor could introduce. The green variant must never show
/// a torn pair to a subscribing reader; the buggy variant must.
fn handoff_scenario(e: &mut Exec, release_before_op: bool) {
    let rt = Arc::new(Runtime::new(TmConfig::stm()));
    let obj = Arc::new(Defer::new(Pair {
        a: AtomicU64::new(0),
        b: AtomicU64::new(0),
    }));
    let batch = OwnerId::batch(1);

    fn two_step(p: &Pair) {
        let a = p.a.load(Ordering::SeqCst);
        p.a.store(a + 1, Ordering::SeqCst);
        let b = p.b.load(Ordering::SeqCst);
        p.b.store(b + 1, Ordering::SeqCst);
    }

    // The hand-off signal. Submission to the pool happens in
    // `run_post_commit`, *after* `commit()` has returned — write-back AND
    // quiescence both done. Modeling the hand-off as "worker sees the lock
    // write-back" would be wrong (and the model catches it): between
    // write-back and quiescence-end, a read-only transaction whose snapshot
    // predates the acquisition can still be live, and running the op that
    // early lets it observe the torn state. Quiescence is what retires
    // those snapshots before any deferred op may run.
    let handed_off = Arc::new(AtomicU64::new(0));

    // Committer: the growing phase. The lock becomes owned by the batch —
    // not this thread — at the commit point, and this thread never touches
    // the object again. The hand-off flag flips only once `atomically`
    // has returned (post-quiescence), mirroring `run_post_commit`.
    let (c_rt, c_obj, c_flag) = (Arc::clone(&rt), Arc::clone(&obj), Arc::clone(&handed_off));
    e.spawn(move || {
        c_rt.atomically(|tx| c_obj.txlock().acquire_as(tx, batch));
        c_flag.store(1, Ordering::SeqCst);
    });

    // Worker: waits for the hand-off, then impersonates the batch owner
    // for the op + release (the shrinking phase, on a different thread
    // than the commit).
    let (w_rt, w_obj, w_flag) = (Arc::clone(&rt), Arc::clone(&obj), handed_off);
    e.spawn(move || {
        while w_flag.load(Ordering::SeqCst) == 0 {
            yield_point();
        }
        assert_eq!(w_obj.txlock().holder(), Some(batch));
        let _scope = owner::impersonate(batch);
        if release_before_op {
            // BUG (deliberate): shrinking phase completes before the op.
            w_rt.atomically(|tx| w_obj.txlock().release(tx));
            two_step(w_obj.peek_unsynchronized());
        } else {
            two_step(&w_obj.locked());
            w_rt.atomically(|tx| w_obj.txlock().release(tx));
        }
    });

    // Reader: committed subscribing observations must never be torn.
    let (r_rt, r_obj) = (rt, obj);
    e.spawn(move || {
        for _ in 0..2 {
            let o = Arc::clone(&r_obj);
            let (a, b) = r_rt.atomically(move |tx| {
                o.with(tx, |p, _| {
                    Ok((p.a.load(Ordering::SeqCst), p.b.load(Ordering::SeqCst)))
                })
            });
            assert_eq!(
                a, b,
                "observed a deferred operation's intermediate state: ({a}, {b})"
            );
        }
    });
}

/// Green model: the lock stays held from the committer's commit through
/// the worker's op completion, so the cross-thread hand-off is invisible
/// to subscribers.
#[test]
fn deferred_locks_span_thread_handoff() {
    check(
        "defer-locks-span-thread-handoff",
        CheckOpts {
            seeds: 400,
            max_steps: 500_000,
        },
        |e| handoff_scenario(e, false),
    );
}

/// Regression model: a worker that releases before finishing the op
/// exposes the torn state, and the model must catch it.
#[test]
fn model_catches_release_before_op_done() {
    let violation = check_expect_violation(
        CheckOpts {
            seeds: 400,
            max_steps: 500_000,
        },
        |e| handoff_scenario(e, true),
    );
    let (seed, msg) =
        violation.expect("the release-before-op variant no longer exposes a torn pair; re-tune");
    assert!(
        msg.contains("intermediate state"),
        "expected a torn-pair observation, got (seed {seed}): {msg}"
    );
}

/// Multi-object deferral is deadlock-free by construction: `atomic_defer`
/// acquires its locks *transactionally*, so two transactions listing the
/// same objects in opposite orders — the classic lock-order deadlock —
/// abort and re-execute instead of waiting on each other. A deadlock (or
/// livelock) here would exhaust the step budget and fail the model.
#[test]
fn multi_object_defer_is_deadlock_free() {
    check(
        "defer-multi-object-opposite-order",
        CheckOpts {
            seeds: 400,
            max_steps: 500_000,
        },
        |e| {
            let rt = Arc::new(Runtime::new(TmConfig::stm()));
            let x = Arc::new(Defer::new(AtomicU64::new(0)));
            let y = Arc::new(Defer::new(AtomicU64::new(0)));
            for flip in [false, true] {
                let (rt, x, y) = (Arc::clone(&rt), Arc::clone(&x), Arc::clone(&y));
                e.spawn(move || {
                    let (ox, oy) = (Arc::clone(&x), Arc::clone(&y));
                    rt.atomically(move |tx| {
                        let (ix, iy) = (Arc::clone(&ox), Arc::clone(&oy));
                        let op = move || {
                            ix.locked().fetch_add(1, Ordering::SeqCst);
                            iy.locked().fetch_add(1, Ordering::SeqCst);
                        };
                        if flip {
                            atomic_defer(tx, &[&*oy, &*ox], op)
                        } else {
                            atomic_defer(tx, &[&*ox, &*oy], op)
                        }
                    });
                    // Inline executor: the op ran before `atomically`
                    // returned, with both locks held.
                    assert!(x.peek_unsynchronized().load(Ordering::SeqCst) >= 1);
                    assert!(y.peek_unsynchronized().load(Ordering::SeqCst) >= 1);
                });
            }
        },
    );
}
