//! Loom-style model of the TxLock subscribe/acquire protocol (paper §4).
//!
//! The serializability argument of atomic deferral rests on one visibility
//! property: a transaction that *subscribes* to a deferrable object's lock
//! (every transactional accessor does, via [`Defer::with`]) can never
//! commit having observed the half-applied state of a deferred operation.
//! The mechanism: `subscribe` reads the lock's `owner` `TVar`, so the
//! owning transaction's commit-time acquisition — and the post-operation
//! release — both invalidate the subscriber, which aborts and re-executes.
//!
//! Two scenarios, two threads each, run under `ad_support::model`'s
//! controlled scheduler (`RUSTFLAGS="--cfg loom"`):
//!
//! * [`subscribe_vs_deferred_write`] — the green model. A writer commits a
//!   transaction whose deferred operation increments the object's two
//!   (non-transactional) counters one at a time — a torn state `a != b`
//!   exists while the lock is held. A reader repeatedly runs a subscribing
//!   transaction that loads both counters, and asserts `a == b` *after*
//!   each commit (mid-attempt observations may legitimately be torn — the
//!   commit-time validation is exactly what discards those attempts).
//! * The regression variant drops the subscription: the reader peeks at
//!   the fields through [`Defer::peek_unsynchronized`] with no transaction
//!   — the unlisted-object data race of §4.1 — and
//!   [`model_catches_unsubscribed_read`] asserts the model observes a torn
//!   pair. This guards the green model's sensitivity: if torn states ever
//!   stop being produced (or observed), the subscription model proves
//!   nothing.
//!
//! The whole STM stack runs under the model scheduler here — TL2 reads,
//! commit-time validation, quiescence, the post-commit deferral queue, and
//! the release-time `atomically` — so an execution is hundreds of
//! scheduling points; seed counts are sized accordingly.

use std::sync::Arc;

use ad_stm::{Runtime, TmConfig};
use ad_support::model::{check, check_expect_violation, CheckOpts, Exec};
use ad_support::sync::atomic::{AtomicU64, Ordering};

use crate::defer::atomic_defer;
use crate::deferrable::Defer;

/// The shared object: two plain (facade) atomics a deferred operation
/// updates non-atomically, one after the other. No `TVar`s on purpose —
/// nothing protects a reader from tearing except the TxLock protocol
/// under test.
struct Pair {
    a: AtomicU64,
    b: AtomicU64,
}

fn scenario(e: &mut Exec, subscribe: bool) {
    let rt = Arc::new(Runtime::new(TmConfig::stm()));
    let obj = Arc::new(Defer::new(Pair {
        a: AtomicU64::new(0),
        b: AtomicU64::new(0),
    }));

    // Writer: one transaction deferring a two-step update of the pair.
    // Between the deferred op's two stores the state is torn, but the
    // object's lock is held from the commit point until after the second
    // store — subscribers must never commit an observation of it.
    let (w_rt, w_obj) = (Arc::clone(&rt), Arc::clone(&obj));
    e.spawn(move || {
        let inner = Arc::clone(&w_obj);
        w_rt.atomically(move |tx| {
            let op_obj = Arc::clone(&inner);
            atomic_defer(tx, &[&*inner], move || {
                let p = op_obj.locked();
                let a = p.a.load(Ordering::SeqCst);
                p.a.store(a + 1, Ordering::SeqCst);
                let b = p.b.load(Ordering::SeqCst);
                p.b.store(b + 1, Ordering::SeqCst);
            })
        });
    });

    // Reader: a few observations of the pair.
    let (r_rt, r_obj) = (rt, obj);
    e.spawn(move || {
        for _ in 0..2 {
            let (a, b) = if subscribe {
                // Through the protocol: subscribe, then load. Only the
                // *committed* observation is asserted on — aborted attempts
                // are allowed to see anything.
                let o = Arc::clone(&r_obj);
                r_rt.atomically(move |tx| {
                    o.with(tx, |p, _| {
                        Ok((p.a.load(Ordering::SeqCst), p.b.load(Ordering::SeqCst)))
                    })
                })
            } else {
                // BUG (deliberate): raw access, no subscription, no
                // transaction — the §4.1 data race.
                let p = r_obj.peek_unsynchronized();
                (p.a.load(Ordering::SeqCst), p.b.load(Ordering::SeqCst))
            };
            assert_eq!(
                a, b,
                "observed a deferred operation's intermediate state: ({a}, {b})"
            );
        }
    });
}

/// Green model: subscribing readers never observe torn deferred updates.
#[test]
fn subscribe_vs_deferred_write() {
    check(
        "txlock-subscribe-vs-deferred-write",
        CheckOpts {
            seeds: 600,
            max_steps: 500_000,
        },
        |e| scenario(e, true),
    );
}

/// Regression model: without the subscription the torn state is
/// observable, and the model must find it. If this fails, the green model
/// above has rotted into always-green.
#[test]
fn model_catches_unsubscribed_read() {
    let violation = check_expect_violation(
        CheckOpts {
            seeds: 600,
            max_steps: 500_000,
        },
        |e| scenario(e, false),
    );
    let (seed, msg) = violation
        .expect("the unsubscribed-reader variant no longer observes a torn pair; re-tune");
    assert!(
        msg.contains("intermediate state"),
        "expected a torn-pair observation, got (seed {seed}): {msg}"
    );
}
