//! Result-carrying deferral.
//!
//! The paper notes (§7) that atomic deferral assumes "the continuation of a
//! transaction does not depend on the result of the deferred operation" —
//! the *deferring* transaction cannot see the result, but *later*
//! transactions often want it (Listing 4's durability flag is exactly a
//! hand-rolled one-bit result). [`atomic_defer_with_result`] generalizes
//! that pattern: the deferred operation's return value is published, under
//! the deferral locks, into a [`DeferHandle`] that any transaction can
//! subscribe to and block on.

use std::any::Any;

use ad_stm::{Runtime, StmResult, TVar, Tx};

use crate::defer::atomic_defer;
use crate::deferrable::{Defer, Deferrable};

/// A handle to the eventual result of a deferred operation.
///
/// Cloning shares the handle. The handle is itself a deferrable object: its
/// cell is locked together with the operation's other objects, so observing
/// `Some(result)` means the deferred operation has fully completed — and a
/// transaction that reads `None` will be aborted by the publication, just
/// like any other subscriber.
pub struct DeferHandle<T> {
    cell: Defer<HandleCell<T>>,
}

struct HandleCell<T> {
    value: TVar<Option<T>>,
}

impl<T: Any + Send + Sync + Clone> DeferHandle<T> {
    fn new() -> Self {
        DeferHandle {
            cell: Defer::new(HandleCell {
                value: TVar::new(None),
            }),
        }
    }

    /// Transactionally read the result if the deferred operation has
    /// completed (subscribes to the handle's lock).
    pub fn try_get(&self, tx: &mut Tx) -> StmResult<Option<T>> {
        self.cell.with(tx, |c, tx| tx.read(&c.value))
    }

    /// Block (via `retry`) until the result is available.
    pub fn get(&self, tx: &mut Tx) -> StmResult<T> {
        match self.try_get(tx)? {
            Some(v) => Ok(v),
            None => tx.retry(),
        }
    }

    /// Non-transactional peek (diagnostics; immediately stale).
    pub fn peek(&self) -> Option<T> {
        self.cell.peek_unsynchronized().value.load()
    }

    /// Has the deferred operation completed (committed view)?
    pub fn is_ready(&self) -> bool {
        self.peek().is_some()
    }

    /// Block the calling thread, outside any transaction, until the
    /// deferred operation has completed, and return its result. With the
    /// pooled executor this is the synchronization point a caller uses
    /// after its commit returned early; inline the result is already
    /// published and `wait` returns immediately.
    ///
    /// Calling this *from inside a deferred operation* running on a
    /// single-worker pool is a self-deadlock (the waited-on op is queued
    /// behind the caller; DESIGN.md §10): the hazard is detected before
    /// blocking — counted, traced, and `debug_assert!`ed — via
    /// [`Runtime::check_defer_self_wait`]. Calling it from a worker of a
    /// *different* runtime's pool (a shard coordinator's deferred op
    /// waiting on a remote shard's handle) is the distinct cross-runtime
    /// hazard of DESIGN.md §14, detected via
    /// [`Runtime::check_defer_remote_wait`] — counted and traced on the
    /// waited-on runtime, but not asserted: bounded remote waits are how
    /// ad-shard's 2-phase commit blocks for acks.
    pub fn wait(&self, rt: &Runtime) -> T {
        if !self.is_ready() {
            rt.check_defer_self_wait();
            rt.check_defer_remote_wait();
        }
        rt.atomically(|tx| self.get(tx))
    }

    /// Non-blocking completion check: `Some(result)` once the deferred
    /// operation has finished, `None` while it is still queued or running.
    pub fn poll(&self) -> Option<T> {
        self.peek()
    }

    /// Block the calling thread until *every* handle has a result, and
    /// return the results in `handles` order.
    ///
    /// One transaction reads all the handles, so a fan-out of N deferred
    /// operations (say, a burst of `ad-kv` `put_async` writes under its
    /// `Async` sync policy) resolves through a single blocking call
    /// instead of N sequential [`wait`](DeferHandle::wait)s: while any
    /// handle is still empty the transaction parks on its `retry` watch
    /// list — which covers every handle's cell — wakes as publications
    /// land, and commits once the last one is in. Handles that are
    /// already complete cost one transactional read each.
    ///
    /// The single-worker self-deadlock check of
    /// [`wait`](DeferHandle::wait) applies here too: it fires if any
    /// handle is still unresolved when called from the pool's own sole
    /// worker.
    pub fn wait_all(rt: &Runtime, handles: &[DeferHandle<T>]) -> Vec<T> {
        if handles.iter().any(|h| !h.is_ready()) {
            rt.check_defer_self_wait();
            rt.check_defer_remote_wait();
        }
        rt.atomically(|tx| handles.iter().map(|h| h.get(tx)).collect())
    }

    /// Has the deferred operation completed? Alias of [`is_ready`]
    /// (`is_ready` reads as "result available", `is_done` as "work
    /// finished" — both are the same instant under the deferral locks).
    ///
    /// [`is_ready`]: DeferHandle::is_ready
    pub fn is_done(&self) -> bool {
        self.is_ready()
    }
}

impl<T> Clone for DeferHandle<T> {
    fn clone(&self) -> Self {
        DeferHandle {
            cell: self.cell.clone(),
        }
    }
}

impl<T: Any + Send + Sync + Clone> Default for DeferHandle<T> {
    fn default() -> Self {
        DeferHandle::new()
    }
}

/// Like [`atomic_defer`](crate::atomic_defer), but `op` returns a value
/// that is published into the returned [`DeferHandle`] while the locks are
/// still held.
///
/// ```
/// use ad_stm::{atomically, TVar};
/// use ad_defer::{atomic_defer_with_result, Defer};
///
/// struct Disk { writes: TVar<u64> }
/// let disk = Defer::new(Disk { writes: TVar::new(0) });
///
/// let d = disk.clone();
/// let handle = atomically(|tx| {
///     let d2 = d.clone();
///     atomic_defer_with_result(tx, &[&d.clone()], move || {
///         d2.locked().writes.update_locked(|w| w + 1);
///         "fsync-ok" // the deferred operation's result
///     })
/// });
///
/// // Any transaction can now wait for the result.
/// let status = atomically(|tx| handle.get(tx));
/// assert_eq!(status, "fsync-ok");
/// ```
pub fn atomic_defer_with_result<T, F>(
    tx: &mut Tx,
    objs: &[&dyn Deferrable],
    op: F,
) -> StmResult<DeferHandle<T>>
where
    T: Any + Send + Sync + Clone,
    F: FnOnce() -> T + Send + 'static,
{
    let handle = DeferHandle::<T>::new();
    let publish = handle.clone();
    // The handle participates in the lock set: acquire its lock along with
    // the caller's objects, so readers of the handle are ordered exactly
    // like readers of the other deferrable objects.
    let mut all: Vec<&dyn Deferrable> = Vec::with_capacity(objs.len() + 1);
    all.extend_from_slice(objs);
    all.push(&handle.cell);
    atomic_defer(tx, &all, move || {
        let result = op();
        publish.cell.locked().value.store(Some(result));
    })?;
    Ok(handle)
}

/// Like [`atomic_defer`](crate::atomic_defer), but returns a
/// [`DeferHandle<()>`] tracking the operation's *completion* (rather than a
/// result). This is the natural commit API under the pooled executor:
/// commit returns as soon as the transaction is durable in memory, and the
/// caller holds a handle it can [`wait`](DeferHandle::wait) on — or
/// [`poll`](DeferHandle::poll) / [`is_done`](DeferHandle::is_done) — when
/// it actually needs the deferred effect (an fsync, say) to have happened.
pub fn atomic_defer_tracked<F>(
    tx: &mut Tx,
    objs: &[&dyn Deferrable],
    op: F,
) -> StmResult<DeferHandle<()>>
where
    F: FnOnce() + Send + 'static,
{
    atomic_defer_with_result(tx, objs, op)
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ad_stm::atomically;
    use std::time::Duration;

    struct Obj {
        v: TVar<u64>,
    }

    #[test]
    fn result_is_published_after_commit() {
        let obj = Defer::new(Obj { v: TVar::new(0) });
        let o = obj.clone();
        let handle = atomically(move |tx| {
            let o2 = o.clone();
            atomic_defer_with_result(tx, &[&o.clone()], move || {
                o2.locked().v.store(5);
                21u64 * 2
            })
        });
        assert_eq!(handle.peek(), Some(42));
        assert!(handle.is_ready());
        let got = atomically(|tx| handle.get(tx));
        assert_eq!(got, 42);
    }

    #[test]
    fn get_blocks_until_deferred_op_finishes() {
        let obj = Defer::new(Obj { v: TVar::new(0) });
        let o = obj.clone();
        let handle = std::sync::Arc::new(ad_support::sync::Mutex::new(None::<DeferHandle<u32>>));
        let h2 = std::sync::Arc::clone(&handle);

        let deferring = std::thread::spawn(move || {
            atomically(move |tx| {
                let h = atomic_defer_with_result(tx, &[&o.clone()], move || {
                    std::thread::sleep(Duration::from_millis(40));
                    7u32
                })?;
                *h2.lock() = Some(h);
                Ok(())
            });
        });

        // Wait until the handle exists, then block on it from this thread.
        let h = loop {
            if let Some(h) = handle.lock().clone() {
                break h;
            }
            std::hint::spin_loop();
        };
        let t0 = std::time::Instant::now();
        let v = atomically(|tx| h.get(tx));
        assert_eq!(v, 7);
        // We either observed the wait or arrived after it — but if we
        // started before the op finished we must have blocked.
        let _ = t0;
        deferring.join().unwrap();
    }

    #[test]
    fn try_get_sees_none_only_before_publication() {
        let obj = Defer::new(Obj { v: TVar::new(0) });
        let o = obj.clone();
        let handle = atomically(move |tx| atomic_defer_with_result(tx, &[&o.clone()], move || 1u8));
        // After `atomically` returns, deferred ops have completed.
        let got = atomically(|tx| handle.try_get(tx));
        assert_eq!(got, Some(1));
    }

    #[test]
    fn wait_all_collects_a_fanout_in_order() {
        use ad_stm::{Runtime, TmConfig};
        // Pooled executor so some ops are genuinely still in flight when
        // wait_all is called; each op bumps the shared counter under its
        // lock, so the final count proves all of them ran.
        let rt = Runtime::new(TmConfig::stm().with_defer_pool(2, 16));
        let obj = Defer::new(Obj { v: TVar::new(0) });
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let o = obj.clone();
            let h = rt.atomically(move |tx| {
                let o2 = o.clone();
                atomic_defer_with_result(tx, &[&o.clone()], move || {
                    std::thread::sleep(Duration::from_millis(1));
                    o2.locked().v.update_locked(|v| v + 1);
                    i * 10
                })
            });
            handles.push(h);
        }
        let results = DeferHandle::wait_all(&rt, &handles);
        assert_eq!(results, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        assert!(handles.iter().all(DeferHandle::is_done));
        assert_eq!(obj.peek_unsynchronized().v.load(), 8);
    }

    #[test]
    fn wait_all_on_no_handles_returns_immediately() {
        use ad_stm::{Runtime, TmConfig};
        let rt = Runtime::new(TmConfig::stm());
        let none: Vec<DeferHandle<u32>> = Vec::new();
        assert_eq!(DeferHandle::wait_all(&rt, &none), Vec::<u32>::new());
    }

    #[test]
    #[cfg(debug_assertions)]
    fn self_wait_on_sole_worker_is_detected_not_deadlocked() {
        use ad_stm::{Runtime, TmConfig};
        // A deferred op on a single-worker pool blocks on a handle nobody
        // has published: without the guard this hangs forever (the op that
        // could publish would be queued behind the blocked worker). The
        // guard fires first — counter bump, trace event, debug_assert —
        // and the pool's catch_unwind turns the assert into a counted
        // panic instead of a wedged test.
        let rt = Runtime::new(TmConfig::stm().with_defer_pool(1, 16));
        let obj = Defer::new(Obj { v: TVar::new(0) });
        let orphan = DeferHandle::<u32>::default();
        let rt2 = rt.clone();
        let o = obj.clone();
        rt.atomically(move |tx| {
            let orphan = orphan.clone();
            let rt2 = rt2.clone();
            atomic_defer(tx, &[&o.clone()], move || {
                // Deliberately the §10 (i) mistake this test exists to catch:
                // ad-lint: allow(defer-waits-on-defer)
                let _ = orphan.wait(&rt2);
            })
        });
        rt.drain_deferred();
        assert_eq!(rt.stats().defer_self_wait_hazards, 1);
    }

    #[test]
    fn wait_from_submitter_thread_is_not_a_hazard() {
        use ad_stm::{Runtime, TmConfig};
        // The legitimate shape: commit returns early, the *submitting*
        // thread waits. No hazard is counted even on a 1-worker pool.
        let rt = Runtime::new(TmConfig::stm().with_defer_pool(1, 16));
        let obj = Defer::new(Obj { v: TVar::new(0) });
        let o = obj.clone();
        let handle = rt.atomically(move |tx| {
            let o2 = o.clone();
            atomic_defer_with_result(tx, &[&o.clone()], move || {
                o2.locked().v.store(9);
                9u64
            })
        });
        assert_eq!(handle.wait(&rt), 9);
        assert_eq!(rt.stats().defer_self_wait_hazards, 0);
    }

    #[test]
    fn remote_wait_from_other_pools_worker_is_counted_not_asserted() {
        use ad_stm::{Runtime, TmConfig};
        // The cross-shard shape (DESIGN.md §14): a worker of runtime A's
        // pool blocks on a handle whose progress belongs to runtime B.
        // That is legal — B's own pool resolves the handle — but it is the
        // remote-wait hazard: counted and traced on B, never asserted.
        let rt_a = Runtime::new(TmConfig::stm().with_defer_pool(1, 16));
        let rt_b = Runtime::new(TmConfig::stm().with_defer_pool(1, 16));
        let obj_a = Defer::new(Obj { v: TVar::new(0) });
        let obj_b = Defer::new(Obj { v: TVar::new(0) });

        // Publish a slow op on B so its handle is not yet ready when A's
        // worker starts waiting on it.
        let ob = obj_b.clone();
        let b_handle = rt_b.atomically(move |tx| {
            atomic_defer_with_result(tx, &[&ob.clone()], move || {
                std::thread::sleep(Duration::from_millis(30));
                11u32
            })
        });

        let oa = obj_a.clone();
        let rt_b2 = rt_b.clone();
        let bh = b_handle.clone();
        let got = rt_a.atomically(move |tx| {
            let rt_b2 = rt_b2.clone();
            let bh = bh.clone();
            atomic_defer_with_result(tx, &[&oa.clone()], move || {
                // Cross-runtime wait from a foreign pool worker: the
                // self-wait guard must NOT fire (it is not B's worker),
                // the remote-wait guard must.
                // ad-lint: allow(defer-waits-on-defer)
                bh.wait(&rt_b2)
            })
        });
        assert_eq!(got.wait(&rt_a), 11);
        assert_eq!(rt_b.stats().defer_remote_wait_hazards, 1);
        assert_eq!(rt_b.stats().defer_self_wait_hazards, 0);
        assert_eq!(rt_a.stats().defer_self_wait_hazards, 0);
        // Submitter-thread waits (the two `.wait` calls above made from
        // this test thread) never count as remote hazards.
        assert_eq!(rt_a.stats().defer_remote_wait_hazards, 0);
    }

    #[test]
    fn handle_clone_shares_result() {
        let obj = Defer::new(Obj { v: TVar::new(0) });
        let o = obj.clone();
        let handle = atomically(move |tx| {
            atomic_defer_with_result(tx, &[&o.clone()], move || String::from("shared"))
        });
        let h2 = handle.clone();
        assert_eq!(h2.peek().as_deref(), Some("shared"));
    }
}
