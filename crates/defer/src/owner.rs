//! Stable owner identities for transaction-friendly locks.
//!
//! The paper's `TxLock` stores `owner : transaction_id` (Listing 2). Under
//! the default inline executor we use a process-unique id per OS thread: a
//! lock acquired inside a transaction is logically held by the *thread*
//! from commit time until its deferred operations release it.
//!
//! Under a pooled executor the committing thread and the thread that runs
//! the deferred operation differ, so thread identity no longer works as an
//! owner. The owner space is therefore split in two disjoint halves:
//!
//! * **Thread owners** (`me()`): low half, allocated per thread on first
//!   use — never reused.
//! * **Batch owners** (`batch(token)`): high half (top bit set), one per
//!   deferring transaction, derived from the runtime's batch token. The
//!   locks of a pooled deferral are acquired under the batch owner, and the
//!   worker that runs the operation *impersonates* that owner for the
//!   duration ([`impersonate`]) so that `locked()` assertions and the
//!   shrinking-phase releases see a consistent identity. Correctness never
//!   depended on thread identity — only on two-phase locking (§4.1) — so
//!   renaming the owner is semantics-preserving.

use ad_support::sync::atomic::{AtomicU64, Ordering};
use std::cell::Cell;
use std::fmt;

static NEXT_OWNER: AtomicU64 = AtomicU64::new(1);

/// Top bit of the owner space: set for batch owners, clear for threads.
const BATCH_BIT: u64 = 1 << 63;

thread_local! {
    static MY_ID: Cell<u64> = const { Cell::new(0) };
    /// Non-zero while this thread runs a pooled deferred batch and acts as
    /// that batch's owner. Read by `me()` before the thread id.
    static IMPERSONATING: Cell<u64> = const { Cell::new(0) };
}

/// Identity of a (potential) lock owner. `OwnerId` values are never reused
/// within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OwnerId(u64);

impl OwnerId {
    /// The calling context's identity: the impersonated batch owner if a
    /// pooled deferred batch is running on this thread, otherwise the
    /// thread's own id (allocated on first use).
    pub fn me() -> OwnerId {
        let imp = IMPERSONATING.with(Cell::get);
        if imp != 0 {
            return OwnerId(imp);
        }
        MY_ID.with(|c| {
            let v = c.get();
            if v != 0 {
                return OwnerId(v);
            }
            let fresh = NEXT_OWNER.fetch_add(1, Ordering::Relaxed);
            c.set(fresh);
            OwnerId(fresh)
        })
    }

    /// The owner identity of a pooled deferred batch. `token` comes from
    /// `Tx::defer_batch_token` (process-unique, non-zero) and is namespaced
    /// into the high half of the owner space, so batch owners can never
    /// collide with thread owners.
    pub fn batch(token: u64) -> OwnerId {
        debug_assert!(token != 0, "batch tokens are non-zero");
        debug_assert!(
            token & BATCH_BIT == 0,
            "batch token overflowed the owner namespace"
        );
        OwnerId(BATCH_BIT | token)
    }

    /// Is this a batch owner (as opposed to a thread)?
    pub fn is_batch(self) -> bool {
        self.0 & BATCH_BIT != 0
    }

    /// Raw numeric value (diagnostics).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Run the rest of the scope as `owner`: until the returned guard drops,
/// [`OwnerId::me`] on this thread answers `owner`. Used by the deferral
/// machinery so a pool worker can run an operation — `locked()` accesses,
/// nested releases and all — under the batch owner that holds its locks.
/// The guard restores the previous identity on drop, including during
/// unwinding, so a panicking operation cannot leak the impersonation.
pub(crate) fn impersonate(owner: OwnerId) -> ImpersonationGuard {
    let prev = IMPERSONATING.with(|c| c.replace(owner.0));
    ImpersonationGuard { prev }
}

/// RAII guard for [`impersonate`]; restores the previous identity on drop.
pub(crate) struct ImpersonationGuard {
    prev: u64,
}

impl Drop for ImpersonationGuard {
    fn drop(&mut self) {
        IMPERSONATING.with(|c| c.set(self.prev));
    }
}

impl fmt::Display for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "owner#{}", self.0)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn same_thread_same_id() {
        assert_eq!(OwnerId::me(), OwnerId::me());
    }

    #[test]
    fn distinct_threads_distinct_ids() {
        let mine = OwnerId::me();
        let theirs = std::thread::spawn(OwnerId::me).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn ids_are_nonzero_and_display() {
        let id = OwnerId::me();
        assert!(id.as_u64() > 0);
        assert!(id.to_string().starts_with("owner#"));
    }

    #[test]
    fn batch_owners_live_in_a_disjoint_namespace() {
        let b = OwnerId::batch(7);
        assert!(b.is_batch());
        assert!(!OwnerId::me().is_batch());
        assert_ne!(b, OwnerId::me());
        assert_eq!(OwnerId::batch(7), OwnerId::batch(7));
        assert_ne!(OwnerId::batch(7), OwnerId::batch(8));
    }

    #[test]
    fn impersonation_is_scoped_and_nests() {
        let me = OwnerId::me();
        let a = OwnerId::batch(100);
        let b = OwnerId::batch(101);
        {
            let _g = impersonate(a);
            assert_eq!(OwnerId::me(), a);
            {
                let _g2 = impersonate(b);
                assert_eq!(OwnerId::me(), b);
            }
            assert_eq!(OwnerId::me(), a);
        }
        assert_eq!(OwnerId::me(), me);
    }

    #[test]
    fn impersonation_unwinds_with_a_panic() {
        let me = OwnerId::me();
        let r = std::panic::catch_unwind(|| {
            let _g = impersonate(OwnerId::batch(42));
            panic!("boom");
        });
        assert!(r.is_err());
        assert_eq!(OwnerId::me(), me, "impersonation leaked across a panic");
    }
}
