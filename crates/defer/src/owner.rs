//! Stable per-thread owner identities for transaction-friendly locks.
//!
//! The paper's `TxLock` stores `owner : transaction_id` (Listing 2). We use
//! a process-unique id per OS thread: a lock acquired inside a transaction
//! is logically held by the *thread* from commit time until its deferred
//! operations release it.

use std::cell::Cell;
use std::fmt;
use ad_support::sync::atomic::{AtomicU64, Ordering};

static NEXT_OWNER: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static MY_ID: Cell<u64> = const { Cell::new(0) };
}

/// Identity of a (potential) lock owner. `OwnerId` values are never reused
/// within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OwnerId(u64);

impl OwnerId {
    /// The calling thread's identity (allocated on first use).
    pub fn me() -> OwnerId {
        MY_ID.with(|c| {
            let v = c.get();
            if v != 0 {
                return OwnerId(v);
            }
            let fresh = NEXT_OWNER.fetch_add(1, Ordering::Relaxed);
            c.set(fresh);
            OwnerId(fresh)
        })
    }

    /// Raw numeric value (diagnostics).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "owner#{}", self.0)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn same_thread_same_id() {
        assert_eq!(OwnerId::me(), OwnerId::me());
    }

    #[test]
    fn distinct_threads_distinct_ids() {
        let mine = OwnerId::me();
        let theirs = std::thread::spawn(OwnerId::me).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn ids_are_nonzero_and_display() {
        let id = OwnerId::me();
        assert!(id.as_u64() > 0);
        assert!(id.to_string().starts_with("owner#"));
    }
}
