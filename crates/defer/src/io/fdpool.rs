//! A bounded file-descriptor pool with deferred open/close (paper §5.3,
//! Listing 5 — MySQL InnoDB's file-space management).
//!
//! InnoDB keeps a lock-protected pool of file descriptors capped at a
//! maximum number of open files. Reads and writes happen *outside* the
//! critical section (asynchronous I/O against metadata claimed inside it);
//! only the uncommon open/close path mutates the pool. In a transactional
//! port, that open/close forces irrevocability and serializes every
//! transaction in the program. With atomic deferral, the pool is a
//! deferrable object: metadata transactions subscribe to it and run fully in
//! parallel, while `open`/`close` system calls are deferred — concurrent
//! pool accesses stall only while an open/close is actually in flight.
//!
//! The control flow mirrors Listing 5's `mySQL_io_prepare`: a transaction
//! that finds its file closed *schedules* the open (possibly closing a
//! victim) and then loops back (`goto close_more`) to run a fresh
//! transaction once the pool has been repaired.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use ad_stm::{Runtime, StmResult, TVar, Tx};
use ad_support::sync::Mutex;

use crate::defer::atomic_defer;
use crate::deferrable::Defer;

/// Lifecycle state of one pooled file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// No descriptor; must be opened before I/O.
    Closed,
    /// Descriptor available for I/O.
    Open,
    /// An open or close is deferred and in flight.
    Busy,
}

/// One file's metadata + handle.
pub struct Slot {
    path: PathBuf,
    state: TVar<SlotState>,
    /// Logical size; appends reserve their offset here transactionally
    /// (InnoDB's "update the size, then issue an asynchronous write").
    size: TVar<u64>,
    /// Appends in flight outside the critical section; a slot with pending
    /// I/O is not eligible for victim-close.
    pending: TVar<u32>,
    handle: Mutex<Option<File>>,
}

struct PoolInner {
    slots: Vec<Slot>,
    n_open: TVar<usize>,
    max_open: usize,
}

/// The deferrable descriptor pool.
#[derive(Clone)]
pub struct FdPool {
    inner: Defer<PoolInner>,
}

/// What a pool transaction decided (the Listing 5 `need_close` loop states).
enum Plan {
    /// Offset reserved; perform the write.
    Reserved(u64),
    /// An open (and possibly a victim close) was deferred; run another
    /// transaction afterwards.
    Repairing,
}

impl FdPool {
    /// Create a pool over `paths`, all initially closed, with at most
    /// `max_open` files open at once.
    ///
    /// # Panics
    ///
    /// Panics if `max_open == 0` or `paths` is empty.
    pub fn new(paths: Vec<PathBuf>, max_open: usize) -> Self {
        assert!(max_open > 0, "pool must allow at least one open file");
        assert!(!paths.is_empty(), "pool needs at least one file");
        let slots = paths
            .into_iter()
            .map(|path| Slot {
                path,
                state: TVar::new(SlotState::Closed),
                size: TVar::new(0),
                pending: TVar::new(0),
                handle: Mutex::new(None),
            })
            .collect();
        FdPool {
            inner: Defer::new(PoolInner {
                slots,
                n_open: TVar::new(0),
                max_open,
            }),
        }
    }

    /// Number of files in the pool.
    pub fn len(&self) -> usize {
        self.inner.peek_unsynchronized().slots.len()
    }

    /// True if the pool has no files (cannot happen for constructed pools).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Currently open descriptor count (committed state).
    pub fn open_count(&self) -> usize {
        self.inner.peek_unsynchronized().n_open.load()
    }

    /// Configured cap on open descriptors.
    pub fn max_open(&self) -> usize {
        self.inner.peek_unsynchronized().max_open
    }

    /// Logical size of file `idx` (committed state).
    pub fn size_of(&self, idx: usize) -> u64 {
        self.inner.peek_unsynchronized().slots[idx].size.load()
    }

    /// Append `data` to file `idx`, returning the offset at which it was
    /// written. The metadata claim is a subscribing transaction; the write
    /// itself happens outside any critical section; opens/closes are
    /// deferred operations on the pool.
    pub fn append(&self, rt: &Runtime, idx: usize, data: &[u8]) -> std::io::Result<u64> {
        let len = data.len() as u64;
        loop {
            let plan = rt.atomically(|tx| self.plan_append(tx, idx, len));
            match plan {
                Plan::Reserved(offset) => {
                    // "Asynchronous" I/O: positioned write outside the
                    // critical section. The pending count keeps the
                    // descriptor from being victimized meanwhile.
                    let res = self.write_at(idx, offset, data);
                    rt.atomically(|tx| {
                        self.inner.with(tx, |p, tx| {
                            let pend = tx.read(&p.slots[idx].pending)?;
                            tx.write(&p.slots[idx].pending, pend - 1)
                        })
                    });
                    res?;
                    return Ok(offset);
                }
                Plan::Repairing => continue, // goto close_more
            }
        }
    }

    /// The transactional part of an append: subscribe, and either reserve
    /// an offset (file open) or schedule the repair (file closed).
    fn plan_append(&self, tx: &mut Tx, idx: usize, len: u64) -> StmResult<Plan> {
        self.inner.with(tx, |p, tx| {
            let slot = &p.slots[idx];
            match tx.read(&slot.state)? {
                SlotState::Open => {
                    let offset = tx.read(&slot.size)?;
                    tx.write(&slot.size, offset + len)?;
                    let pend = tx.read(&slot.pending)?;
                    tx.write(&slot.pending, pend + 1)?;
                    Ok(Plan::Reserved(offset))
                }
                SlotState::Busy => tx.retry(), // open/close in flight: stall
                SlotState::Closed => {
                    self.schedule_open(tx, p, idx)?;
                    Ok(Plan::Repairing)
                }
            }
        })
    }

    /// Defer `open(idx)` — first deferring `close(victim)` if the pool is at
    /// capacity (Listing 5's `n_open >= max_n_open` branch).
    fn schedule_open(&self, tx: &mut Tx, p: &PoolInner, idx: usize) -> StmResult<()> {
        let n_open = tx.read(&p.n_open)?;
        let victim = if n_open >= p.max_open {
            let Some(v) = self.pick_victim(tx, p, idx)? else {
                // Every open file has I/O in flight: wait for one to drain.
                return tx.retry();
            };
            tx.write(&p.slots[v].state, SlotState::Busy)?;
            Some(v)
        } else {
            tx.write(&p.n_open, n_open + 1)?;
            None
        };
        tx.write(&p.slots[idx].state, SlotState::Busy)?;

        let pool = self.inner.clone();
        atomic_defer(tx, &[&self.inner], move || {
            let guard = pool.locked();
            if let Some(v) = victim {
                let vslot = &guard.slots[v];
                // close(node)
                *vslot.handle.lock() = None;
                vslot.state.store(SlotState::Closed);
            }
            let slot = &guard.slots[idx];
            // node = open(...): append mode semantics are modelled with
            // positioned writes, so open read+write.
            let file = OpenOptions::new()
                .create(true)
                .read(true)
                .write(true)
                .truncate(false)
                .open(&slot.path)
                // Failing to open the backing file is unrecoverable for
                // this op chain; abort-the-batch is the intended policy.
                // ad-lint: allow(panic-in-deferred)
                .expect("deferred open failed");
            // Recover the logical size from the file (first open) — Listing
            // 5's "get file size ... save metadata for future I/O".
            if slot.size.load() == 0 {
                let disk_len = file.metadata().map(|m| m.len()).unwrap_or(0);
                if disk_len > 0 {
                    slot.size.store(disk_len);
                }
            }
            *slot.handle.lock() = Some(file);
            slot.state.store(SlotState::Open);
        })
    }

    /// Choose an open, I/O-quiescent slot to close.
    fn pick_victim(&self, tx: &mut Tx, p: &PoolInner, avoid: usize) -> StmResult<Option<usize>> {
        for (i, slot) in p.slots.iter().enumerate() {
            if i == avoid {
                continue;
            }
            if tx.read(&slot.state)? == SlotState::Open && tx.read(&slot.pending)? == 0 {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    fn write_at(&self, idx: usize, offset: u64, data: &[u8]) -> std::io::Result<()> {
        let slot = &self.inner.peek_unsynchronized().slots[idx];
        let mut guard = slot.handle.lock();
        let file = guard
            .as_mut()
            .expect("descriptor closed while pending I/O outstanding");
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(data)
    }

    /// Read the entire current contents of file `idx` (test/verification
    /// helper; opens an independent descriptor).
    pub fn read_file(&self, idx: usize) -> std::io::Result<Vec<u8>> {
        let slot = &self.inner.peek_unsynchronized().slots[idx];
        let mut buf = Vec::new();
        File::open(&slot.path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    /// The pool as a deferrable object (to compose with other deferrals).
    pub fn deferrable(&self) -> &Defer<impl Sized + Send + Sync> {
        &self.inner
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ad_stm::Runtime;

    fn temp_paths(tag: &str, n: usize) -> Vec<PathBuf> {
        (0..n)
            .map(|i| {
                let mut p = std::env::temp_dir();
                p.push(format!(
                    "ad_defer_pool_{}_{}_{tag}_{i}",
                    std::process::id(),
                    ad_stm::internals::clock_now(),
                ));
                p
            })
            .collect()
    }

    fn cleanup(paths: &[PathBuf]) {
        for p in paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn appends_open_lazily_and_write_data() {
        let paths = temp_paths("lazy", 2);
        let pool = FdPool::new(paths.clone(), 2);
        let rt = Runtime::global();
        assert_eq!(pool.open_count(), 0);
        let off0 = pool.append(rt, 0, b"abc").unwrap();
        let off1 = pool.append(rt, 0, b"def").unwrap();
        assert_eq!(off0, 0);
        assert_eq!(off1, 3);
        assert_eq!(pool.read_file(0).unwrap(), b"abcdef");
        assert_eq!(pool.open_count(), 1);
        cleanup(&paths);
    }

    #[test]
    fn pool_never_exceeds_max_open() {
        let paths = temp_paths("cap", 6);
        let pool = FdPool::new(paths.clone(), 2);
        let rt = Runtime::global();
        for round in 0..3 {
            for i in 0..6 {
                pool.append(rt, i, format!("r{round}f{i};").as_bytes())
                    .unwrap();
                assert!(
                    pool.open_count() <= 2,
                    "open_count {} exceeded max_open 2",
                    pool.open_count()
                );
            }
        }
        for i in 0..6 {
            let content = pool.read_file(i).unwrap();
            assert_eq!(
                content,
                format!("r0f{i};r1f{i};r2f{i};").as_bytes(),
                "file {i} corrupted"
            );
        }
        cleanup(&paths);
    }

    #[test]
    fn concurrent_appends_are_offset_disjoint() {
        let paths = temp_paths("conc", 4);
        let pool = FdPool::new(paths.clone(), 2);
        let rt = Runtime::global();
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..30u8 {
                        let idx = ((t as usize) + (i as usize)) % 4;
                        let rec = [t, i, b'|'];
                        pool.append(rt, idx, &rec).unwrap();
                    }
                });
            }
        });
        // Every file's size matches its contents, and all 120 records exist
        // exactly once across the pool.
        let mut records = 0;
        for i in 0..4 {
            let content = pool.read_file(i).unwrap();
            assert_eq!(content.len() as u64, pool.size_of(i));
            assert_eq!(content.len() % 3, 0);
            records += content.len() / 3;
            for chunk in content.chunks(3) {
                assert_eq!(chunk[2], b'|', "interleaved/corrupt record");
            }
        }
        assert_eq!(records, 120);
        cleanup(&paths);
    }

    #[test]
    fn size_recovered_after_reopen() {
        let paths = temp_paths("reopen", 3);
        let pool = FdPool::new(paths.clone(), 1);
        let rt = Runtime::global();
        pool.append(rt, 0, b"0123456789").unwrap();
        // Touch the other files so slot 0 gets victimized (max_open = 1).
        pool.append(rt, 1, b"x").unwrap();
        pool.append(rt, 2, b"y").unwrap();
        assert_eq!(pool.open_count(), 1);
        // Re-open slot 0: its logical size must continue from 10.
        let off = pool.append(rt, 0, b"ABC").unwrap();
        assert_eq!(off, 10);
        assert_eq!(pool.read_file(0).unwrap(), b"0123456789ABC");
        cleanup(&paths);
    }
}
