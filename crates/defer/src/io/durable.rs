//! Durable output with guaranteed order (paper §5.2, Listing 4).
//!
//! Some programs (durable databases) must not update file F2 until F1's
//! updates have *reached the disk* (`fsync` returned). Deferring the
//! `fsync` naively breaks that ordering. The paper's solution: encapsulate
//! a completion flag in the deferrable object associated with the deferred
//! `write+fsync`, so the flag is set while the implicit lock is held — a
//! transaction that subscribes and checks the flag either sees "not yet
//! written" (and can retry), waits out the in-flight sync, or sees "synced"
//! and may proceed.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use ad_stm::{StmResult, TVar, Tx};
use ad_support::sync::Mutex;

use crate::defer::atomic_defer;
use crate::deferrable::Defer;

/// Deferrable wrapper for a file descriptor (the paper's `defer_fd`).
pub struct DeferFd {
    file: Mutex<File>,
}

/// A deferrable output file handle.
#[derive(Clone)]
pub struct DurableFile {
    fd: Defer<DeferFd>,
}

impl DurableFile {
    /// Create (truncating) a durable output file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(DurableFile {
            fd: Defer::new(DeferFd {
                file: Mutex::new(file),
            }),
        })
    }

    /// The deferrable file-descriptor object (for passing to
    /// `atomic_defer` alongside a buffer).
    pub fn deferrable(&self) -> &Defer<DeferFd> {
        &self.fd
    }
}

/// Deferrable wrapper for an output buffer with a durability flag (the
/// paper's `defer_buffer`: `buf` + `flag: is buffer written?`).
pub struct BufferState {
    data: TVar<Arc<Vec<u8>>>,
    synced: TVar<bool>,
}

/// A buffer whose durable write can be atomically deferred, carrying the
/// "has reached the disk" flag used for cross-file ordering.
#[derive(Clone)]
pub struct DeferBuffer {
    inner: Defer<BufferState>,
}

impl DeferBuffer {
    /// New buffer holding `data`, not yet synced.
    pub fn new(data: Vec<u8>) -> Self {
        DeferBuffer {
            inner: Defer::new(BufferState {
                data: TVar::new(Arc::new(data)),
                synced: TVar::new(false),
            }),
        }
    }

    /// Transactionally replace the buffer contents (clears the synced flag).
    pub fn set_data(&self, tx: &mut Tx, data: Vec<u8>) -> StmResult<()> {
        self.inner.with(tx, |b, tx| {
            tx.write(&b.data, Arc::new(data))?;
            tx.write(&b.synced, false)
        })
    }

    /// Listing 4, T2's condition (lines 7–8): subscribe to the buffer and
    /// report whether its durable write has completed. Three outcomes map to
    /// the paper's three cases: the deferring transaction has not committed
    /// yet → `false`; the deferred `write+fsync` is in flight → this call
    /// blocks (the subscription retries on the held lock); the sync is done
    /// → `true`.
    pub fn is_synced(&self, tx: &mut Tx) -> StmResult<bool> {
        self.inner.with(tx, |b, tx| tx.read(&b.synced))
    }

    /// Convenience: retry until the buffer is durable.
    pub fn await_synced(&self, tx: &mut Tx) -> StmResult<()> {
        if self.is_synced(tx)? {
            Ok(())
        } else {
            tx.retry()
        }
    }

    /// Non-transactional flag read (diagnostics/tests).
    pub fn synced_now(&self) -> bool {
        self.inner.peek_unsynchronized().synced.load()
    }
}

/// Listing 4, T1 (lines 1–6): atomically defer `write(fd, buf); fsync(fd);
/// buf.flag = true` from the enclosing transaction, holding both the file's
/// and the buffer's implicit locks until the data is on disk and the flag is
/// set.
pub fn durable_write(tx: &mut Tx, file: &DurableFile, buf: &DeferBuffer) -> StmResult<()> {
    let fd = file.fd.clone();
    let b = buf.inner.clone();
    atomic_defer(tx, &[&file.fd, &buf.inner], move || {
        let data = b.locked().data.load();
        {
            let guard = fd.locked();
            let mut f = guard.file.lock();
            // Durable output to unreliable media: retry transient short
            // writes (the paper's pipeline_out loop, Listing 7).
            let mut sent = 0usize;
            while sent < data.len() {
                match f.write(&data[sent..]) {
                    Ok(0) => break,
                    Ok(n) => sent += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    // Aborting the batch on unrecoverable media failure is
                    // the intended policy: durability cannot be faked.
                    // ad-lint: allow(panic-in-deferred)
                    Err(e) => panic!("durable write failed irrecoverably: {e}"),
                }
            }
            // ad-lint: allow(panic-in-deferred)
            f.sync_all().expect("fsync failed");
        }
        // Set the completion flag while the locks are still held: only
        // after the release can a subscriber observe synced = true.
        b.locked().synced.store(true);
    })
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ad_stm::atomically;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "ad_defer_durable_{}_{}_{name}",
            std::process::id(),
            ad_stm::internals::clock_now(),
        ));
        p
    }

    #[test]
    fn durable_write_persists_and_sets_flag() {
        let path = temp_path("basic");
        let file = DurableFile::create(&path).unwrap();
        let buf = DeferBuffer::new(b"hello disk".to_vec());
        assert!(!buf.synced_now());

        atomically(|tx| durable_write(tx, &file, &buf));

        assert!(buf.synced_now());
        assert_eq!(std::fs::read(&path).unwrap(), b"hello disk");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn second_output_orders_after_first_sync() {
        // Listing 4 end-to-end: T2 writes F2 only after T1's F1 write is
        // durable.
        let p1 = temp_path("f1");
        let p2 = temp_path("f2");
        let f1 = DurableFile::create(&p1).unwrap();
        let f2 = DurableFile::create(&p2).unwrap();
        let b1 = DeferBuffer::new(b"first".to_vec());
        let b2 = DeferBuffer::new(b"second".to_vec());

        let t2_done = std::sync::Arc::new(AtomicBool::new(false));
        let (b1c, f2c, b2c, done) = (
            b1.clone(),
            f2.clone(),
            b2.clone(),
            std::sync::Arc::clone(&t2_done),
        );
        let t2 = std::thread::spawn(move || {
            atomically(|tx| {
                // Subscribe + check flag; retry until T1's fsync completed.
                b1c.await_synced(tx)?;
                durable_write(tx, &f2c, &b2c)
            });
            done.store(true, Ordering::Release);
        });

        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!t2_done.load(Ordering::Acquire), "T2 ran before T1 synced");

        atomically(|tx| durable_write(tx, &f1, &b1));
        t2.join().unwrap();

        assert_eq!(std::fs::read(&p1).unwrap(), b"first");
        assert_eq!(std::fs::read(&p2).unwrap(), b"second");
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn set_data_clears_synced_flag() {
        let path = temp_path("reset");
        let file = DurableFile::create(&path).unwrap();
        let buf = DeferBuffer::new(b"v1".to_vec());
        atomically(|tx| durable_write(tx, &file, &buf));
        assert!(buf.synced_now());
        atomically(|tx| buf.set_data(tx, b"v2".to_vec()));
        assert!(!buf.synced_now());
        atomically(|tx| durable_write(tx, &file, &buf));
        assert_eq!(std::fs::read(&path).unwrap(), b"v1v2");
        let _ = std::fs::remove_file(&path);
    }
}
