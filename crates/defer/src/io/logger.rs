//! Deferred diagnostic logging (paper §5.1, Listing 3).
//!
//! Critical sections in programs like memcached and Atomic Quake log
//! diagnostics. With plain TM the `fprintf` forces irrevocability
//! (serializing *every* transaction) — so transactional ports usually just
//! delete the logging. [`DeferLogger`] keeps it: the message is formatted
//! *inside* the transaction (reading shared state transactionally) and the
//! write is deferred, atomic with the transaction.

use std::io::Write;
use std::sync::Arc;

use ad_stm::{StmResult, Tx};
use ad_support::sync::Mutex;

use crate::defer::{atomic_defer, atomic_defer_unordered};
use crate::deferrable::Defer;

/// The deferrable wrapper for the log sink — the paper's `defer_fprintf`
/// class encapsulating the output file descriptor.
struct LogSink {
    out: Mutex<Box<dyn Write + Send>>,
}

/// A logger whose writes are atomically deferred from transactions.
#[derive(Clone)]
pub struct DeferLogger {
    sink: Defer<LogSink>,
}

impl DeferLogger {
    /// Create a logger writing to `out` (a file, a pipe, an in-memory
    /// buffer...).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        DeferLogger {
            sink: Defer::new(LogSink {
                out: Mutex::new(out),
            }),
        }
    }

    /// Log `line` atomically with the enclosing transaction: the output is
    /// deferred, and the sink's implicit lock orders all logging operations
    /// on this sink with respect to each other and to the deferring
    /// transactions.
    pub fn log(&self, tx: &mut Tx, line: String) -> StmResult<()> {
        let sink = self.sink.clone();
        atomic_defer(tx, &[&self.sink], move || {
            let guard = sink.locked();
            let mut out = guard.out.lock();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        })
    }

    /// Log without ordering (the "`nil` second argument" variant, §5.1):
    /// the write still happens after commit but does not serialize
    /// transactions that use this logger. Appropriate for timestamped logs
    /// whose order is reconstructed post-mortem. The internal mutex makes
    /// the sink itself race-free.
    pub fn log_unordered(&self, tx: &mut Tx, line: String) -> StmResult<()> {
        let sink = self.sink.clone();
        atomic_defer_unordered(tx, move || {
            // Not atomic with the transaction: access the sink through its
            // own mutex rather than the (unheld) TxLock.
            let mut out = sink.peek_unsynchronized().out.lock();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        })
    }
}

/// An in-memory sink for tests and examples: lines written through a
/// [`DeferLogger`] can be read back.
#[derive(Clone, Default)]
pub struct MemorySink {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl MemorySink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The logged content so far, as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.buf.lock()).into_owned()
    }

    /// The logged lines so far.
    pub fn lines(&self) -> Vec<String> {
        self.contents().lines().map(str::to_owned).collect()
    }
}

impl Write for MemorySink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.lock().extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ad_stm::{atomically, TVar};

    #[test]
    fn logs_are_written_after_commit() {
        let sink = MemorySink::new();
        let logger = DeferLogger::new(Box::new(sink.clone()));
        let x = TVar::new(String::from("world"));
        let i = TVar::new(3u32);

        atomically(|tx| {
            // Listing 3: format from mutable shared data inside the
            // transaction, defer the output.
            let xv = tx.read(&x)?;
            let iv = tx.read(&i)?;
            logger.log(tx, format!("hello {xv} {iv}"))
        });

        assert_eq!(sink.lines(), vec!["hello world 3"]);
    }

    #[test]
    fn ordered_logging_preserves_transaction_order() {
        let sink = MemorySink::new();
        let logger = DeferLogger::new(Box::new(sink.clone()));
        for i in 0..20 {
            atomically(|tx| logger.log(tx, format!("line {i}")));
        }
        let lines = sink.lines();
        assert_eq!(lines.len(), 20);
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(line, &format!("line {i}"));
        }
    }

    #[test]
    fn concurrent_ordered_logging_loses_nothing() {
        let sink = MemorySink::new();
        let logger = DeferLogger::new(Box::new(sink.clone()));
        std::thread::scope(|s| {
            for t in 0..4 {
                let logger = logger.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        atomically(|tx| logger.log(tx, format!("t{t} m{i}")));
                    }
                });
            }
        });
        assert_eq!(sink.lines().len(), 200);
    }

    #[test]
    fn unordered_logging_loses_nothing_either() {
        let sink = MemorySink::new();
        let logger = DeferLogger::new(Box::new(sink.clone()));
        std::thread::scope(|s| {
            for t in 0..4 {
                let logger = logger.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        atomically(|tx| logger.log_unordered(tx, format!("t{t} m{i}")));
                    }
                });
            }
        });
        assert_eq!(sink.lines().len(), 200);
    }

    #[test]
    fn aborted_transactions_do_not_log() {
        let sink = MemorySink::new();
        let logger = DeferLogger::new(Box::new(sink.clone()));
        let first = std::sync::atomic::AtomicBool::new(true);
        atomically(|tx| {
            logger.log(tx, "maybe".into())?;
            if first.swap(false, std::sync::atomic::Ordering::Relaxed) {
                return Err(ad_stm::StmError::Conflict);
            }
            Ok(())
        });
        // Logged exactly once: the aborted attempt's deferred write vanished.
        assert_eq!(sink.lines(), vec!["maybe"]);
    }
}
