//! Ready-made atomic-deferral patterns for I/O — the paper's §5 use cases
//! as reusable library types.
//!
//! * [`DeferLogger`]: non-serializing diagnostic logging from transactions
//!   (Listing 3).
//! * [`DurableFile`] / [`DeferBuffer`] / [`durable_write`]: ordered durable
//!   output with `fsync` completion flags (Listing 4).
//! * [`FdPool`]: a bounded descriptor pool with deferred open/close
//!   (Listing 5, MySQL InnoDB).

mod durable;
mod fdpool;
mod logger;

pub use durable::{durable_write, DeferBuffer, DeferFd, DurableFile};
pub use fdpool::{FdPool, SlotState};
pub use logger::{DeferLogger, MemorySink};
