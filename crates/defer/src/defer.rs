//! `atomic_defer` itself (paper §4, Listing 1).
//!
//! `atomic_defer(tx, objs, op)` schedules `op` to run immediately after the
//! enclosing transaction commits (and, for writers, quiesces), in call
//! order, with the implicit locks of every object in `objs` held from the
//! commit point until `op` completes. Because the lock acquisitions are
//! transactional writes, the whole protocol is two-phase locking:
//!
//! 1. *Growing phase*: during the transaction, locks are only acquired
//!    (buffered); they all become visible atomically at commit, together
//!    with the transaction's own updates.
//! 2. *Shrinking phase*: after each deferred operation finishes, its locks
//!    are released.
//!
//! Any other transaction that touches a deferrable object meanwhile — via
//! its subscribing accessors — blocks or aborts, so no transaction can
//! observe the state between "transaction committed" and "deferred
//! operation done". That is the paper's serializability guarantee.
//!
//! If the transaction aborts, the buffered lock acquisitions and the queued
//! operation simply evaporate — deferred operations of aborted transactions
//! never run.
//!
//! With the runtime's observability layer on (`Runtime::set_tracing`), the
//! whole protocol is visible on the merged event timeline: `lock_acquire`
//! events for the growing phase, `defer_enqueue` when the operation is
//! queued, the enclosing `commit`, then paired `defer_exec_start` /
//! `defer_exec_end` events with the same queue index — and the
//! queue-to-completion latency lands in the `defer_queue_to_done_ns`
//! histogram of `Runtime::snapshot_stats()`. See `OBSERVABILITY.md`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use ad_stm::{StmResult, Tx};

use crate::deferrable::Deferrable;
use crate::owner::{self, OwnerId};
use crate::txlock::TxLock;

/// Atomically defer `op` until after the enclosing transaction commits,
/// holding the implicit locks of all `objs` until `op` completes.
///
/// `objs` must list **every** shared (deferrable) object `op` accesses; an
/// access to an unlisted object is a data race (paper §4.1). Thread-private
/// data may be captured freely. Passing the same object (or two handles to
/// it) more than once is fine — the locks are reentrant.
///
/// Multiple `atomic_defer` calls in one transaction run in call order, each
/// seeing the effects of the previous ones.
///
/// **Ordering discipline:** in a transaction that may execute irrevocably
/// (via `synchronized`, `require_irrevocable`, or contention-manager
/// escalation), call `atomic_defer` — and any other potentially blocking
/// operation — *before* the transaction's first write. Irrevocable writes
/// are applied eagerly and cannot be rolled back, so blocking on a held
/// lock after them is a fatal error. (Speculative transactions have no such
/// restriction.)
///
/// ```
/// use ad_stm::{atomically, TVar};
/// use ad_defer::{atomic_defer, Defer};
///
/// struct LogFile { lines: TVar<Vec<String>> }
/// let log = Defer::new(LogFile { lines: TVar::new(Vec::new()) });
///
/// let log2 = log.clone();
/// atomically(|tx| {
///     let msg = format!("x = {}", 42); // prepared inside the transaction
///     let log2 = log2.clone();
///     atomic_defer(tx, &[&log2.clone()], move || {
///         // Runs after commit; the lock is held, so transactional readers
///         // of `log` wait rather than observing a partial update.
///         log2.locked().lines.update_locked(|mut l| { l.push(msg.clone()); l });
///     })
/// });
/// assert_eq!(log.peek_unsynchronized().lines.load().len(), 1);
/// ```
pub fn atomic_defer<F>(tx: &mut Tx, objs: &[&dyn Deferrable], op: F) -> StmResult<()>
where
    F: FnOnce() + Send + 'static,
{
    // Under the pooled executor the operation may run on a worker thread,
    // so the locks are acquired under the transaction's batch owner rather
    // than the committing thread's identity; the runner impersonates that
    // owner. Inline (the default), `batch_owner` is `None` and the locks
    // belong to the committing thread, exactly as before.
    let batch_owner = tx.defer_batch_token().map(OwnerId::batch);

    // Growing phase: acquire every lock inside the transaction. A lock held
    // by another owner makes the whole transaction retry — "use transaction
    // to acquire locks without deadlock" (Listing 1).
    let mut locks: Vec<TxLock> = Vec::with_capacity(objs.len());
    for obj in objs {
        match batch_owner {
            Some(owner) => obj.txlock().acquire_as(tx, owner)?,
            None => obj.txlock().acquire(tx)?,
        }
        locks.push(obj.txlock().clone());
    }
    tx.defer_post_commit(Box::new(move |rt| {
        let _scope = batch_owner.map(owner::impersonate);
        // A panicking operation must not leak its locks forever — that
        // would wedge every later subscriber. Release first, then let the
        // panic continue (the pool counts it; inline it propagates).
        let outcome = catch_unwind(AssertUnwindSafe(op));
        // Shrinking phase: release this operation's locks. Reentrancy means
        // an object shared with a later deferred operation stays held until
        // that operation's own release.
        for lock in locks {
            lock.release_now(rt);
        }
        if let Err(panic) = outcome {
            resume_unwind(panic);
        }
    }));
    Ok(())
}

/// The "pass nil as the second argument" variant from §5.1: defer `op` with
/// **no** associated objects. The operation runs after commit but is not
/// atomic with the transaction — appropriate when `op` synchronizes
/// internally (e.g. appending to a timestamped log where order is
/// reconstructed post-mortem).
pub fn atomic_defer_unordered<F>(tx: &mut Tx, op: F) -> StmResult<()>
where
    F: FnOnce() + Send + 'static,
{
    tx.defer_post_commit(Box::new(move |_rt| op()));
    Ok(())
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::deferrable::Defer;
    use ad_stm::{atomically, Runtime, StmError, TVar, TmConfig};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    struct Obj {
        a: TVar<u64>,
        b: TVar<u64>,
    }

    fn obj() -> Defer<Obj> {
        Defer::new(Obj {
            a: TVar::new(0),
            b: TVar::new(0),
        })
    }

    #[test]
    fn deferred_op_runs_after_commit() {
        let o = obj();
        let ran = Arc::new(AtomicBool::new(false));
        let (o2, r2) = (o.clone(), Arc::clone(&ran));
        atomically(|tx| {
            let (o3, r3) = (o2.clone(), Arc::clone(&r2));
            atomic_defer(tx, &[&o2.clone()], move || {
                o3.locked().a.store(1);
                r3.store(true, Ordering::Release);
            })
        });
        assert!(ran.load(Ordering::Acquire));
        assert_eq!(o.peek_unsynchronized().a.load(), 1);
        assert_eq!(
            o.txlock().holder(),
            None,
            "lock must be released after the op"
        );
    }

    #[test]
    fn deferred_ops_run_in_call_order_and_see_prior_effects() {
        let o = obj();
        let order = Arc::new(ad_support::sync::Mutex::new(Vec::new()));
        let o1 = o.clone();
        let ordr = Arc::clone(&order);
        atomically(move |tx| {
            let (oa, la) = (o1.clone(), Arc::clone(&ordr));
            atomic_defer(tx, &[&o1.clone()], move || {
                oa.locked().a.store(10);
                la.lock().push(1);
            })?;
            let (ob, lb) = (o1.clone(), Arc::clone(&ordr));
            atomic_defer(tx, &[&o1.clone()], move || {
                // Effects of the earlier deferred op must be visible.
                assert_eq!(ob.locked().a.load(), 10);
                ob.locked().b.store(20);
                lb.lock().push(2);
            })
        });
        assert_eq!(*order.lock(), vec![1, 2]);
        assert_eq!(o.txlock().holder(), None);
        assert_eq!(o.txlock().depth(), 0);
    }

    #[test]
    fn aborted_transaction_never_runs_deferred_op() {
        let o = obj();
        let ran = Arc::new(AtomicBool::new(false));
        let first = Arc::new(AtomicBool::new(true));
        let (o2, r2, f2) = (o.clone(), Arc::clone(&ran), Arc::clone(&first));
        atomically(move |tx| {
            if f2.swap(false, Ordering::Relaxed) {
                let r3 = Arc::clone(&r2);
                atomic_defer(tx, &[&o2.clone()], move || {
                    r3.store(true, Ordering::Relaxed);
                })?;
                return Err(StmError::Conflict);
            }
            Ok(())
        });
        assert!(!ran.load(Ordering::Relaxed));
        assert_eq!(o.txlock().holder(), None, "aborted defer leaked a lock");
    }

    #[test]
    fn no_intermediate_state_is_observable() {
        // The serializability property (Figure 1 / §4): a transaction that
        // writes `a` transactionally and `b` in its deferred op must appear
        // atomic — observers reading both through subscribing accessors must
        // see either (0, 0) or (1, 1), never (1, 0).
        let o = obj();
        let stop = Arc::new(AtomicBool::new(false));

        let (o2, stop2) = (o.clone(), Arc::clone(&stop));
        let observer = std::thread::spawn(move || {
            let mut observations = Vec::new();
            while !stop2.load(Ordering::Relaxed) {
                let pair = atomically(|tx| {
                    o2.with(tx, |f, tx| {
                        let a = tx.read(&f.a)?;
                        let b = tx.read(&f.b)?;
                        Ok((a, b))
                    })
                });
                observations.push(pair);
            }
            observations
        });

        std::thread::sleep(Duration::from_millis(10));
        let o3 = o.clone();
        atomically(move |tx| {
            o3.with(tx, |f, tx| tx.write(&f.a, 1))?;
            let o4 = o3.clone();
            atomic_defer(tx, &[&o3.clone()], move || {
                // Simulate a long-running deferred operation.
                std::thread::sleep(Duration::from_millis(50));
                o4.locked().b.store(1);
            })
        });
        std::thread::sleep(Duration::from_millis(10));
        stop.store(true, Ordering::Relaxed);
        let observations = observer.join().unwrap();
        for (a, b) in observations {
            assert_eq!(a, b, "observed intermediate state ({a}, {b})");
        }
    }

    #[test]
    fn subscriber_aborts_when_lock_acquired_after_subscription() {
        // A transaction subscribes while the lock is free, then the lock is
        // acquired before it commits: its commit must fail and re-execute.
        let o = obj();
        let first = Arc::new(AtomicBool::new(true));
        let attempts = Arc::new(AtomicU64::new(0));
        let saboteur: Arc<ad_support::sync::Mutex<Option<std::thread::JoinHandle<()>>>> =
            Arc::new(ad_support::sync::Mutex::new(None));

        let (o2, f2, at2, sab2) = (
            o.clone(),
            Arc::clone(&first),
            Arc::clone(&attempts),
            Arc::clone(&saboteur),
        );
        atomically(move |tx| {
            at2.fetch_add(1, Ordering::Relaxed);
            o2.with(tx, |fields, tx| {
                let a = tx.read(&fields.a)?;
                tx.write(&fields.a, a + 1)
            })?;
            if f2.swap(false, Ordering::Relaxed) {
                // Sabotage: another thread runs a transaction+deferral cycle
                // on the object before we commit. We must NOT join it here —
                // its commit quiesces waiting for *this* transaction to end —
                // so we only wait until its lock acquisition is visible (the
                // write-back happens before its quiescence).
                let o3 = o2.clone();
                *sab2.lock() = Some(std::thread::spawn(move || {
                    atomically(|tx| {
                        let o4 = o3.clone();
                        atomic_defer(tx, &[&o3.clone()], move || {
                            o4.locked().b.store(99);
                        })
                    });
                }));
                while o2.peek_unsynchronized().b.load() != 99 && o2.txlock().holder().is_none() {
                    std::hint::spin_loop();
                }
            }
            Ok(())
        });
        saboteur.lock().take().unwrap().join().unwrap();
        assert!(
            attempts.load(Ordering::Relaxed) >= 2,
            "subscribing transaction should have aborted and re-executed"
        );
        assert_eq!(o.peek_unsynchronized().a.load(), 1);
        assert_eq!(o.peek_unsynchronized().b.load(), 99);
    }

    #[test]
    fn multiple_objects_locked_and_released_together() {
        let x = obj();
        let y = obj();
        let (x2, y2) = (x.clone(), y.clone());
        atomically(move |tx| {
            let (x3, y3) = (x2.clone(), y2.clone());
            atomic_defer(tx, &[&x2.clone(), &y2.clone()], move || {
                assert!(x3.txlock().held_by_me());
                assert!(y3.txlock().held_by_me());
                x3.locked().a.store(1);
                y3.locked().a.store(2);
            })
        });
        assert_eq!(x.txlock().holder(), None);
        assert_eq!(y.txlock().holder(), None);
        assert_eq!(x.peek_unsynchronized().a.load(), 1);
        assert_eq!(y.peek_unsynchronized().a.load(), 2);
    }

    #[test]
    fn same_object_in_two_deferred_ops_stays_locked_between_them() {
        let o = obj();
        let o1 = o.clone();
        atomically(move |tx| {
            let oa = o1.clone();
            atomic_defer(tx, &[&o1.clone()], move || {
                // Depth 2 while both deferred ops hold the object; after our
                // release it must still be held for op 2.
                assert_eq!(oa.txlock().depth(), 2);
            })?;
            let ob = o1.clone();
            atomic_defer(tx, &[&o1.clone()], move || {
                assert!(ob.txlock().held_by_me());
                assert_eq!(ob.txlock().depth(), 1);
            })
        });
        assert_eq!(o.txlock().holder(), None);
    }

    #[test]
    fn unordered_defer_runs_without_locks() {
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        atomically(move |tx| {
            let r3 = Arc::clone(&r2);
            atomic_defer_unordered(tx, move || r3.store(true, Ordering::Relaxed))
        });
        assert!(ran.load(Ordering::Relaxed));
    }

    #[test]
    fn deferred_op_may_run_transactions_internally() {
        let o = obj();
        let side = TVar::new(0u64);
        let (o2, s2) = (o.clone(), side.clone());
        atomically(move |tx| {
            let s3 = s2.clone();
            atomic_defer(tx, &[&o2.clone()], move || {
                // Deferred operations are outside the transaction and may
                // use transactions themselves (paper §4.1).
                atomically(|tx| tx.write(&s3, 77));
            })
        });
        assert_eq!(side.load(), 77);
    }

    #[test]
    fn works_under_htm_runtime_too() {
        let rt = Runtime::new(TmConfig::htm());
        let o = obj();
        let (o2,) = (o.clone(),);
        rt.atomically(move |tx| {
            let o3 = o2.clone();
            atomic_defer(tx, &[&o2.clone()], move || {
                o3.locked().a.store(5);
            })
        });
        assert_eq!(o.peek_unsynchronized().a.load(), 5);
        assert_eq!(o.txlock().holder(), None);
    }

    #[test]
    fn deferred_frees_outlive_deferred_ops() {
        // Model the tm_free_list interaction: the transaction "frees" a
        // buffer the deferred op still reads.
        let o = obj();
        let buffer: Arc<Vec<u8>> = Arc::new(vec![1, 2, 3]);
        let o2 = o.clone();
        let buf2 = Arc::clone(&buffer);
        atomically(move |tx| {
            let weak = Arc::downgrade(&buf2);
            let o3 = o2.clone();
            atomic_defer(tx, &[&o2.clone()], move || {
                let strong = weak.upgrade().expect("buffer freed before deferred op ran");
                o3.locked().a.store(strong.iter().map(|&b| b as u64).sum());
            })?;
            // Queue the "free": dropping the last strong ref is deferred
            // until after the deferred ops have completed.
            tx.defer_drop(Box::new(Arc::clone(&buf2)));
            Ok(())
        });
        drop(buffer);
        assert_eq!(o.peek_unsynchronized().a.load(), 6);
    }
}
