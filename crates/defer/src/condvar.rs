//! Transaction-friendly condition variables.
//!
//! The dedup study the paper builds on (Wang et al., "Transaction-Friendly
//! Condition Variables", SPAA 2014 — reference [21]) needed condition
//! synchronization that composes with transactions. With `retry` available,
//! a condition variable reduces to a *generation counter in transactional
//! memory*: waiters read the generation and `retry` until it moves;
//! notifiers bump it. Because the generation is a `TVar`, waits and
//! notifications compose with arbitrary transactional state — the common
//! "recheck the predicate under the lock" dance disappears.

use ad_stm::{Runtime, StmResult, TVar, Tx};

/// A condition variable whose state lives in transactional memory.
///
/// Typical use:
///
/// ```
/// use ad_stm::{atomically, TVar};
/// use ad_defer::TxCondvar;
///
/// let items = TVar::new(0u32);
/// let cv = TxCondvar::new();
///
/// // Consumer thread:
/// let (items2, cv2) = (items.clone(), cv.clone());
/// let consumer = std::thread::spawn(move || {
///     atomically(|tx| {
///         let n = tx.read(&items2)?;
///         if n == 0 {
///             return cv2.wait(tx); // composes: re-runs when notified OR
///                                  // when `items` itself changes
///         }
///         tx.write(&items2, n - 1)
///     });
/// });
///
/// // Producer:
/// atomically(|tx| {
///     let cv3 = cv.clone();
///     tx.modify(&items, |n| n + 1)?;
///     cv3.notify_all(tx)
/// });
/// consumer.join().unwrap();
/// ```
#[derive(Clone)]
pub struct TxCondvar {
    generation: TVar<u64>,
}

impl TxCondvar {
    /// New condition variable.
    pub fn new() -> Self {
        TxCondvar {
            generation: TVar::new(0),
        }
    }

    /// Block the transaction until the next notification (or until anything
    /// else in its read set changes — which is a feature: the predicate the
    /// caller checked is in the read set, so a direct state change also
    /// wakes the waiter even if the changer forgot to notify).
    ///
    /// Typed like [`Tx::retry`] so it can tail a closure of any type.
    pub fn wait<T>(&self, tx: &mut Tx) -> StmResult<T> {
        // Reading the generation puts it in the read set; the retry wait
        // then watches it.
        let _gen = tx.read(&self.generation)?;
        tx.retry()
    }

    /// Wake all transactional waiters when the enclosing transaction
    /// commits. (There is no `notify_one`: waiters re-check their
    /// predicates on wake-up, exactly like condition-variable loops, so
    /// broadcast is the only semantics that composes with aborts.)
    pub fn notify_all(&self, tx: &mut Tx) -> StmResult<()> {
        tx.modify(&self.generation, |g| g.wrapping_add(1))
    }

    /// Notify from outside any transaction (e.g. from a deferred operation
    /// or plain lock-based code).
    pub fn notify_all_now(&self) {
        self.generation.update_locked(|g| g.wrapping_add(1));
    }

    /// Convenience: `wait` until `pred` holds, then return its payload.
    /// Re-evaluates `pred` on every wake-up.
    pub fn wait_until<T>(
        &self,
        tx: &mut Tx,
        pred: impl FnOnce(&mut Tx) -> StmResult<Option<T>>,
    ) -> StmResult<T> {
        match pred(tx)? {
            Some(v) => Ok(v),
            None => self.wait(tx),
        }
    }

    /// Run `rt.atomically`, waiting on this condition variable until `f`
    /// returns `Some` — the blocking-call shape lock-based code expects.
    pub fn await_value<T>(
        &self,
        rt: &Runtime,
        mut f: impl FnMut(&mut Tx) -> StmResult<Option<T>>,
    ) -> T {
        rt.atomically(|tx| self.wait_until(tx, &mut f))
    }
}

impl Default for TxCondvar {
    fn default() -> Self {
        TxCondvar::new()
    }
}

impl std::fmt::Debug for TxCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxCondvar")
            .field("generation", &self.generation.load())
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ad_stm::{atomically, TmConfig};
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn notify_wakes_waiter() {
        let cv = TxCondvar::new();
        let flag = TVar::new(false);
        let (cv2, f2) = (cv.clone(), flag.clone());
        let waiter = std::thread::spawn(move || {
            atomically(|tx| {
                if !tx.read(&f2)? {
                    return cv2.wait(tx);
                }
                Ok(())
            });
        });
        std::thread::sleep(Duration::from_millis(30));
        atomically(|tx| {
            tx.write(&flag, true)?;
            cv.notify_all(tx)
        });
        waiter.join().unwrap();
    }

    #[test]
    fn direct_state_change_also_wakes() {
        // The waiter read `flag`, so a write to flag wakes it even without
        // a notify call.
        let cv = TxCondvar::new();
        let flag = TVar::new(false);
        let (cv2, f2) = (cv.clone(), flag.clone());
        let waiter = std::thread::spawn(move || {
            atomically(|tx| {
                if !tx.read(&f2)? {
                    return cv2.wait(tx);
                }
                Ok(())
            });
        });
        std::thread::sleep(Duration::from_millis(30));
        atomically(|tx| tx.write(&flag, true));
        waiter.join().unwrap();
    }

    #[test]
    fn bounded_buffer_producer_consumer() {
        const CAP: usize = 4;
        const ITEMS: u32 = 500;
        let rt = Runtime::new(TmConfig::stm());
        let queue: TVar<VecDeque<u32>> = TVar::new(VecDeque::new());
        let not_full = TxCondvar::new();
        let not_empty = TxCondvar::new();

        std::thread::scope(|s| {
            let (q, nf, ne, rt2) = (
                queue.clone(),
                not_full.clone(),
                not_empty.clone(),
                rt.clone(),
            );
            s.spawn(move || {
                for i in 0..ITEMS {
                    rt2.atomically(|tx| {
                        let mut q_val = tx.read(&q)?;
                        if q_val.len() >= CAP {
                            return nf.wait(tx);
                        }
                        q_val.push_back(i);
                        tx.write(&q, q_val)?;
                        ne.notify_all(tx)
                    });
                }
            });

            let (q, nf, ne, rt2) = (
                queue.clone(),
                not_full.clone(),
                not_empty.clone(),
                rt.clone(),
            );
            let consumer = s.spawn(move || {
                let mut got = Vec::new();
                while got.len() < ITEMS as usize {
                    let v = rt2.atomically(|tx| {
                        let mut q_val = tx.read(&q)?;
                        let Some(v) = q_val.pop_front() else {
                            return ne.wait(tx);
                        };
                        tx.write(&q, q_val)?;
                        nf.notify_all(tx)?;
                        Ok(v)
                    });
                    got.push(v);
                }
                got
            });
            let got = consumer.join().unwrap();
            assert_eq!(got, (0..ITEMS).collect::<Vec<_>>(), "FIFO order violated");
        });
    }

    #[test]
    fn await_value_blocks_until_some() {
        let rt = Runtime::new(TmConfig::stm());
        let cv = TxCondvar::new();
        let slot: TVar<Option<u32>> = TVar::new(None);
        let produced = Arc::new(AtomicBool::new(false));

        let (cv2, s2, rt2, p2) = (cv.clone(), slot.clone(), rt.clone(), Arc::clone(&produced));
        let waiter = std::thread::spawn(move || {
            let v = cv2.await_value(&rt2, |tx| tx.read(&s2));
            assert!(p2.load(Ordering::Acquire), "woke before production");
            v
        });

        std::thread::sleep(Duration::from_millis(30));
        produced.store(true, Ordering::Release);
        rt.atomically(|tx| {
            tx.write(&slot, Some(99))?;
            cv.notify_all(tx)
        });
        assert_eq!(waiter.join().unwrap(), 99);
    }

    #[test]
    fn notify_from_deferred_operation() {
        use crate::defer::atomic_defer;
        use crate::deferrable::Defer;

        struct Disk {
            written: TVar<bool>,
        }
        let disk = Defer::new(Disk {
            written: TVar::new(false),
        });
        let cv = TxCondvar::new();

        let (d2, cv2) = (disk.clone(), cv.clone());
        let waiter = std::thread::spawn(move || {
            atomically(|tx| {
                let done = d2.with(tx, |d, tx| tx.read(&d.written))?;
                if !done {
                    return cv2.wait(tx);
                }
                Ok(())
            });
        });

        std::thread::sleep(Duration::from_millis(20));
        let (d3, cv3) = (disk.clone(), cv.clone());
        atomically(move |tx| {
            let (d4, cv4) = (d3.clone(), cv3.clone());
            atomic_defer(tx, &[&d3.clone()], move || {
                d4.locked().written.store(true);
                cv4.notify_all_now();
            })
        });
        waiter.join().unwrap();
        assert!(disk.peek_unsynchronized().written.load());
    }
}
