//! Deferrable objects (paper §4, Listing 1).
//!
//! A *deferrable* object carries an implicit [`TxLock`], and every
//! transactional access to its fields first **subscribes** to that lock —
//! the paper's compiler extension injects `TxLock.Subscribe` as the first
//! instruction of every transaction-safe member function; here the
//! [`Defer::with`] accessor plays that role. Deferred operations, which run
//! after commit while the lock is held, access the fields through
//! [`Defer::locked`], which asserts ownership.

use std::ops::Deref;
use std::sync::Arc;

use ad_stm::{StmResult, Tx};

use crate::owner::OwnerId;
use crate::txlock::TxLock;

/// Anything protected by an implicit transaction-friendly lock. The
/// `atomic_defer` machinery only needs the lock, so heterogeneous deferrable
/// objects can be passed together as `&dyn Deferrable`.
pub trait Deferrable {
    /// The object's implicit lock.
    fn txlock(&self) -> &TxLock;
}

/// The standard way to make a value deferrable: wrap it.
///
/// `T` is typically a struct whose shared fields are `TVar`s (so
/// transactional accessors can read/write them) and whose external-resource
/// fields (files, sockets) are plain values used only by deferred
/// operations. Cloning a `Defer<T>` clones the handle, not the value.
pub struct Defer<T: ?Sized> {
    lock: TxLock,
    inner: Arc<T>,
}

impl<T> Defer<T> {
    /// Wrap `value` with a fresh implicit lock.
    pub fn new(value: T) -> Self {
        Defer {
            lock: TxLock::new(),
            inner: Arc::new(value),
        }
    }
}

impl<T: ?Sized> Defer<T> {
    /// Transactional access to the object: subscribes to the implicit lock
    /// (blocking while another thread's deferred operation owns the object),
    /// then runs `f`. This is the analogue of calling a transaction-safe
    /// member function on a `deferrable` class.
    pub fn with<R>(
        &self,
        tx: &mut Tx,
        f: impl FnOnce(&T, &mut Tx) -> StmResult<R>,
    ) -> StmResult<R> {
        self.lock.subscribe(tx)?;
        f(&self.inner, tx)
    }

    /// Access from a deferred operation (or any other context) that holds
    /// the implicit lock.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not hold the lock: unlocked access
    /// to a deferrable object's fields is exactly the data race the paper's
    /// protocol exists to prevent (§4.3).
    pub fn locked(&self) -> LockedRef<'_, T> {
        assert_eq!(
            self.lock.holder(),
            Some(OwnerId::me()),
            "deferred access to a Deferrable whose lock this thread does not hold"
        );
        LockedRef { inner: &self.inner }
    }

    /// Escape hatch for read-only access to fields that are themselves
    /// synchronized (e.g. to read a `TVar` field non-transactionally for
    /// diagnostics). Does not check the lock; named loudly on purpose.
    pub fn peek_unsynchronized(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deferrable for Defer<T> {
    fn txlock(&self) -> &TxLock {
        &self.lock
    }
}

impl<T: ?Sized> Clone for Defer<T> {
    fn clone(&self) -> Self {
        Defer {
            lock: self.lock.clone(),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: ?Sized> std::fmt::Debug for Defer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Defer").field("lock", &self.lock).finish()
    }
}

/// Proof-of-lock access to a deferrable object's contents.
pub struct LockedRef<'a, T: ?Sized> {
    inner: &'a T,
}

impl<T: ?Sized> Deref for LockedRef<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ad_stm::{atomically, Runtime, TVar};

    struct Counter {
        value: TVar<u64>,
    }

    #[test]
    fn with_subscribes_and_accesses_fields() {
        let obj = Defer::new(Counter {
            value: TVar::new(5),
        });
        let seen = atomically(|tx| obj.with(tx, |c, tx| tx.read(&c.value)));
        assert_eq!(seen, 5);
    }

    #[test]
    fn locked_access_requires_holding_the_lock() {
        let obj = Defer::new(Counter {
            value: TVar::new(0),
        });
        obj.txlock().acquire_now(Runtime::global());
        obj.locked().value.store(7);
        assert_eq!(obj.peek_unsynchronized().value.load(), 7);
        obj.txlock().release_now(Runtime::global());
    }

    #[test]
    #[should_panic(expected = "lock this thread does not hold")]
    fn locked_access_without_lock_panics() {
        let obj = Defer::new(Counter {
            value: TVar::new(0),
        });
        let _ = obj.locked();
    }

    #[test]
    #[should_panic(expected = "lock this thread does not hold")]
    fn locked_access_from_wrong_thread_panics() {
        let obj = Defer::new(Counter {
            value: TVar::new(0),
        });
        obj.txlock().acquire_now(Runtime::global());
        let obj2 = obj.clone();
        let err = std::thread::spawn(move || {
            let _ = obj2.locked();
        })
        .join();
        obj.txlock().release_now(Runtime::global());
        // Re-panic the inner panic so should_panic observes it.
        std::panic::resume_unwind(err.unwrap_err());
    }

    #[test]
    fn clone_shares_lock_and_value() {
        let a = Defer::new(Counter {
            value: TVar::new(1),
        });
        let b = a.clone();
        b.peek_unsynchronized().value.store(2);
        assert_eq!(a.peek_unsynchronized().value.load(), 2);
        a.txlock().acquire_now(Runtime::global());
        assert!(b.txlock().held_by_me());
        a.txlock().release_now(Runtime::global());
    }
}
