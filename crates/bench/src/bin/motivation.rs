//! Figure 1 (motivation): quantify the quiescence stall that a long
//! operation inside a transaction inflicts on *unrelated* transactions, and
//! how atomic deferral removes it.
//!
//! T1 runs a transaction touching A, B, C followed by a long operation on C
//! (inline vs atomically deferred); T2 (touches B) and T3 (touches only D)
//! measure their own latency.
//!
//! ```text
//! cargo run --release -p ad-bench --bin motivation \
//!     [-- --ms 50 --rounds 10 --stats-json PATH --trace-json PATH]
//! ```
//!
//! With `--stats-json PATH`, tracing is enabled on both arms' runtimes and
//! their full observability reports are dumped as a two-cell JSON array —
//! the inline arm's `quiesce_wait_ns` histogram shows p99 near the long-op
//! duration; the deferred arm's shows the stall gone.
//!
//! With `--trace-json PATH`, the deferred arm's event timeline is exported
//! as chrome://tracing JSON (the `defer_enqueue`/`defer_exec_*` spans show
//! the long operation running after T1's commit while T2/T3 proceed).

use ad_bench::{arg_num, arg_value, motivation_arms};
use ad_workloads::{stats_json, Measurement};
use std::time::Duration;

fn main() {
    let ms: u64 = arg_num("--ms", 50);
    let rounds: usize = arg_num("--rounds", 10);
    let stats_out = arg_value("--stats-json");
    let trace_out = arg_value("--trace-json");
    let long_op = Duration::from_millis(ms);

    println!("Figure 1 scenario: long operation = {ms}ms, {rounds} rounds");
    let (inline_arm, deferred_arm) =
        motivation_arms(long_op, rounds, stats_out.is_some() || trace_out.is_some());
    let (inline_stall, deferred_stall) = (inline_arm.mean_stall, deferred_arm.mean_stall);

    println!("\n| configuration | mean stall of unrelated transactions |");
    println!("|---|---|");
    println!(
        "| long op inside transaction | {:.1}ms |",
        inline_stall.as_secs_f64() * 1e3
    );
    println!(
        "| long op atomically deferred | {:.1}ms |",
        deferred_stall.as_secs_f64() * 1e3
    );
    println!(
        "\nDeferral reduced the stall by {:.0}x (paper Figure 1: T2/T3 stop \
         waiting for T1's long operation on C).",
        inline_stall.as_secs_f64() / deferred_stall.as_secs_f64().max(1e-9)
    );

    if let Some(path) = &trace_out {
        std::fs::write(path, deferred_arm.trace.to_chrome_json())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote chrome trace to {path} (deferred arm)");
    }

    if let Some(path) = stats_out {
        let cells =
            [("inline", inline_arm), ("deferred", deferred_arm)].map(|(name, arm)| Measurement {
                series: name.to_string(),
                threads: 3,
                elapsed: arm.mean_stall,
                note: String::new(),
                stats: Some(arm.stats),
            });
        std::fs::write(&path, stats_json(&cells)).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
