//! Figure 1 (motivation): quantify the quiescence stall that a long
//! operation inside a transaction inflicts on *unrelated* transactions, and
//! how atomic deferral removes it.
//!
//! T1 runs a transaction touching A, B, C followed by a long operation on C
//! (inline vs atomically deferred); T2 (touches B) and T3 (touches only D)
//! measure their own latency.
//!
//! ```text
//! cargo run --release -p ad-bench --bin motivation [-- --ms 50 --rounds 10]
//! ```

use ad_bench::{arg_num, motivation_stalls};
use std::time::Duration;

fn main() {
    let ms: u64 = arg_num("--ms", 50);
    let rounds: usize = arg_num("--rounds", 10);
    let long_op = Duration::from_millis(ms);

    println!("Figure 1 scenario: long operation = {ms}ms, {rounds} rounds");
    let (inline_stall, deferred_stall) = motivation_stalls(long_op, rounds);

    println!("\n| configuration | mean stall of unrelated transactions |");
    println!("|---|---|");
    println!("| long op inside transaction | {:.1}ms |", inline_stall.as_secs_f64() * 1e3);
    println!("| long op atomically deferred | {:.1}ms |", deferred_stall.as_secs_f64() * 1e3);
    println!(
        "\nDeferral reduced the stall by {:.0}x (paper Figure 1: T2/T3 stop \
         waiting for T1's long operation on C).",
        inline_stall.as_secs_f64() / deferred_stall.as_secs_f64().max(1e-9)
    );
}
