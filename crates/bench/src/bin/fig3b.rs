//! Figure 3b: dedup scalability at higher thread counts — STM baseline vs
//! STM-Best / HTM-Best (the +DeferAll variants) vs Pthread. The paper's HTM
//! baseline is omitted, as in the paper ("the performance of the baseline
//! HTM is not shown").
//!
//! ```text
//! cargo run --release -p ad-bench --bin fig3b \
//!     [-- --size BYTES --max-threads N --csv --stats-json PATH --trace-json PATH]
//! ```
//!
//! `--trace-json PATH` captures the busiest deferral cell (`STM-Best` at
//! the highest thread count) with tracing enabled and exports its event
//! timeline as chrome://tracing JSON.

use ad_bench::{
    arg_flag, arg_num, arg_value, make_corpus, run_dedup_cell_traced, DedupRunParams, DedupSeries,
};
use ad_workloads::{print_csv, print_time_table, stats_json};

fn main() {
    let stats_out = arg_value("--stats-json");
    let trace_out = arg_value("--trace-json");
    let params = DedupRunParams {
        corpus_size: arg_num("--size", 8 << 20),
        dup_ratio: 0.5,
        file_output: !arg_flag("--memory"),
        obs: stats_out.is_some(),
    };
    let max_threads: usize = arg_num("--max-threads", 32);
    let threads: Vec<usize> = [4usize, 8, 12, 16, 20, 24, 28, 32]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();

    println!(
        "Figure 3b: dedup pipeline at scale, corpus {} MiB ({} hardware threads available)",
        params.corpus_size >> 20,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    );
    let corpus = make_corpus(&params);

    let mut results = Vec::new();
    for series in DedupSeries::fig3b() {
        for &t in &threads {
            let capture = trace_out.is_some()
                && series == DedupSeries::StmDeferAll
                && Some(&t) == threads.last();
            let cell_params = DedupRunParams {
                obs: params.obs || capture,
                ..params.clone()
            };
            let (m, trace) =
                run_dedup_cell_traced(series, t, &corpus, &cell_params, series.fig3b_label());
            if capture {
                let path = trace_out.as_ref().unwrap();
                let trace = trace.expect("TM backends produce a trace");
                std::fs::write(path, trace.to_chrome_json())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                eprintln!("  wrote chrome trace to {path}");
            }
            eprintln!(
                "  {:<10} {:>2}t: {:>8.3}s  {}",
                m.series,
                t,
                m.secs(),
                m.note
            );
            results.push(m);
        }
    }

    print_time_table("Figure 3b: dedup overall performance", &threads, &results);
    if arg_flag("--csv") {
        print_csv(&results);
    }
    if let Some(path) = stats_out {
        std::fs::write(&path, stats_json(&results))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
