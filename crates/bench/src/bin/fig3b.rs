//! Figure 3b: dedup scalability at higher thread counts — STM baseline vs
//! STM-Best / HTM-Best (the +DeferAll variants) vs Pthread. The paper's HTM
//! baseline is omitted, as in the paper ("the performance of the baseline
//! HTM is not shown").
//!
//! ```text
//! cargo run --release -p ad-bench --bin fig3b \
//!     [-- --size BYTES --max-threads N --csv --stats-json PATH]
//! ```

use ad_bench::{
    arg_flag, arg_num, arg_value, make_corpus, run_dedup_cell, DedupRunParams, DedupSeries,
};
use ad_workloads::{print_csv, print_time_table, stats_json};

fn main() {
    let stats_out = arg_value("--stats-json");
    let params = DedupRunParams {
        corpus_size: arg_num("--size", 8 << 20),
        dup_ratio: 0.5,
        file_output: !arg_flag("--memory"),
        obs: stats_out.is_some(),
    };
    let max_threads: usize = arg_num("--max-threads", 32);
    let threads: Vec<usize> = [4usize, 8, 12, 16, 20, 24, 28, 32]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();

    println!(
        "Figure 3b: dedup pipeline at scale, corpus {} MiB ({} hardware threads available)",
        params.corpus_size >> 20,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    );
    let corpus = make_corpus(&params);

    let mut results = Vec::new();
    for series in DedupSeries::fig3b() {
        for &t in &threads {
            let m = run_dedup_cell(series, t, &corpus, &params, series.fig3b_label());
            eprintln!(
                "  {:<10} {:>2}t: {:>8.3}s  {}",
                m.series,
                t,
                m.secs(),
                m.note
            );
            results.push(m);
        }
    }

    print_time_table("Figure 3b: dedup overall performance", &threads, &results);
    if arg_flag("--csv") {
        print_csv(&results);
    }
    if let Some(path) = stats_out {
        std::fs::write(&path, stats_json(&results))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
