//! `txtrace` — run a small deferral workload with event tracing enabled and
//! dump the merged per-thread event timeline (see OBSERVABILITY.md for the
//! event schema).
//!
//! The workload is a miniature of the paper's §5.1 logging scenario: every
//! transaction increments one of a few contended counters and atomically
//! defers an operation on a shared deferrable object, so the timeline shows
//! the full event vocabulary — `begin`, `lock_acquire`, `defer_enqueue`,
//! `commit`, `defer_exec_start`/`defer_exec_end`, plus `abort`/`backoff`
//! under contention and `quiesce_enter`/`quiesce_exit` when writers overlap.
//!
//! ```text
//! cargo run --release -p ad-bench --bin txtrace [-- --ops 64 --threads 2 --vars 2]
//! ```
//!
//! Options: `--ops N` total transactions (default 64), `--threads N`
//! (default 2), `--vars N` shared counters (default 2; fewer = more
//! conflicts), `--stats` (append the runtime's full stats report),
//! `--trace-json PATH` (additionally export the timeline as
//! chrome://tracing / Perfetto trace-event JSON — load the file in
//! `about:tracing` or <https://ui.perfetto.dev>).
//!
//! `--shards N` switches to the cross-shard mode: `--ops` write batches
//! spanning all `N` shards of an `ad-shard` router (each shard its own
//! runtime), with the per-runtime trace rings merged into **one**
//! timeline. Rows are tagged `r<runtime>.t<thread>`, so a single
//! cross-shard commit reads as one story: the coordinator's
//! `shard_prepare` → the participant's `shard_prepare`/`shard_ack` on
//! its own runtime → the coordinator's decision `shard_release` → the
//! participant's release. In the chrome export each runtime is its own
//! process row.
//!
//! After the timeline, the per-TVar contention report
//! ([`ad_stm::Trace::contention_report`]) ranks the variables whose
//! commit-time validation failures caused the aborts — the quickest answer
//! to "which variable is my bottleneck?".

use ad_support::sync::atomic::{AtomicU64, Ordering};

use ad_bench::{arg_flag, arg_num, arg_value};
use ad_defer::{atomic_defer, Defer};
use ad_stm::{Runtime, TVar, TmConfig};
use ad_workloads::run_fixed_work;

/// `--shards N`: run cross-shard batches on a volatile router and
/// render the merged multi-runtime timeline.
fn shard_mode(shards: usize, ops: usize) {
    use ad_shard::ShardRouter;

    let router = ShardRouter::open_volatile(shards.max(2));
    let n = router.shard_count();
    router.set_tracing(true);
    // One key per shard so every batch is a full-width cross-shard
    // commit: 1 coordinator + (n-1) participants.
    let keys: Vec<String> = (0..n)
        .map(|s| {
            (0..)
                .map(|i| format!("k{i}"))
                .find(|k| router.shard_of(k) == s)
                .expect("keys cover shards")
        })
        .collect();
    for round in 0..ops.max(1) {
        let mut b = ad_kv::WriteBatch::new();
        for k in &keys {
            b = b.put(k, round.to_le_bytes().to_vec());
        }
        router.write_batch(&b);
        std::hint::black_box(router.get(&keys[round % n]));
    }
    // Participants finish their release-side work asynchronously on the
    // transport workers; quiesce so the drain sees every protocol
    // instant — (5*(n-1)+1) per batch — without racing a live writer.
    router.quiesce();
    router.set_tracing(false);
    let trace = router.take_trace();

    println!(
        "txtrace --shards: {} cross-shard batch(es) over {} runtimes — {} events \
         ({} dropped) in one merged timeline",
        ops.max(1),
        trace.runtime_ids().len(),
        trace.events.len(),
        trace.dropped
    );
    println!();
    print!("{}", trace.render());

    if let Some(path) = arg_value("--trace-json") {
        std::fs::write(&path, trace.to_chrome_json())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!();
        println!("wrote chrome trace to {path} (one process row per runtime)");
    }

    if arg_flag("--stats") {
        println!();
        println!("{}", router.stats());
    }
}

fn main() {
    let total_ops: usize = arg_num("--ops", 64);
    let threads: usize = arg_num("--threads", 2);
    let nvars: usize = arg_num("--vars", 2);

    if let Some(shards) = arg_value("--shards") {
        let shards: usize = shards.parse().expect("--shards takes a count");
        shard_mode(
            shards,
            if arg_value("--ops").is_some() {
                total_ops
            } else {
                2
            },
        );
        return;
    }

    let rt = Runtime::new(TmConfig::stm());
    rt.set_tracing(true);

    struct Sink {
        applied: AtomicU64,
    }
    let vars: Vec<TVar<u64>> = (0..nvars.max(1)).map(|_| TVar::new(0)).collect();
    let sink = Defer::new(Sink {
        applied: AtomicU64::new(0),
    });

    run_fixed_work(threads, total_ops, |_, i| {
        let slot = i % vars.len();
        rt.atomically(|tx| {
            let v = tx.read(&vars[slot])?;
            // Deferral registered before the first write (DESIGN.md §9).
            let s = sink.clone();
            atomic_defer(tx, &[&sink], move || {
                s.locked().applied.fetch_add(1, Ordering::Relaxed);
            })?;
            tx.write(&vars[slot], v + 1)
        });
    });

    let applied = sink.peek_unsynchronized().applied.load(Ordering::Relaxed);
    assert_eq!(applied, total_ops as u64, "deferred ops lost");

    let trace = rt.take_trace();
    println!(
        "txtrace: {} transactions on {} thread(s) over {} var(s) — {} events ({} dropped)",
        total_ops,
        threads,
        vars.len(),
        trace.events.len(),
        trace.dropped
    );
    println!();
    print!("{}", trace.render());

    let contention = trace.contention_report(8);
    if contention.total_fails > 0 {
        println!();
        print!("{contention}");
    }

    if let Some(path) = arg_value("--trace-json") {
        std::fs::write(&path, trace.to_chrome_json())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!();
        println!("wrote chrome trace to {path} (open in about:tracing or ui.perfetto.dev)");
    }

    if arg_flag("--stats") {
        println!();
        println!("{}", rt.snapshot_stats());
    }
}
