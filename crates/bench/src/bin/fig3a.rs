//! Figure 3a: PARSEC-dedup-style pipeline, 1–8 threads, all seven series
//! (STM, HTM, ±DeferIO, ±DeferAll, Pthread).
//!
//! ```text
//! cargo run --release -p ad-bench --bin fig3a \
//!     [-- --size BYTES --max-threads N --csv --stats-json PATH --trace-json PATH]
//! ```
//!
//! `--trace-json PATH` captures the busiest deferral cell
//! (`STM+DeferAll` at max threads) with tracing enabled and exports its
//! event timeline as chrome://tracing JSON.

use ad_bench::{
    arg_flag, arg_num, arg_value, make_corpus, run_dedup_cell_traced, DedupRunParams, DedupSeries,
};
use ad_workloads::{print_csv, print_time_table, stats_json};

fn main() {
    let stats_out = arg_value("--stats-json");
    let trace_out = arg_value("--trace-json");
    let params = DedupRunParams {
        corpus_size: arg_num("--size", 4 << 20),
        dup_ratio: 0.5,
        file_output: !arg_flag("--memory"),
        obs: stats_out.is_some(),
    };
    let max_threads: usize = arg_num("--max-threads", 8);
    let threads: Vec<usize> = (1..=max_threads).collect();

    println!(
        "Figure 3a: dedup pipeline, corpus {} MiB, dup_ratio {:.1}",
        params.corpus_size >> 20,
        params.dup_ratio
    );
    let corpus = make_corpus(&params);

    let mut results = Vec::new();
    for series in DedupSeries::fig3a() {
        for &t in &threads {
            let capture = trace_out.is_some()
                && series == DedupSeries::StmDeferAll
                && t == *threads.last().unwrap();
            let cell_params = DedupRunParams {
                obs: params.obs || capture,
                ..params.clone()
            };
            let (m, trace) =
                run_dedup_cell_traced(series, t, &corpus, &cell_params, series.label());
            if capture {
                let path = trace_out.as_ref().unwrap();
                let trace = trace.expect("TM backends produce a trace");
                eprint!("{}", trace.contention_report(8));
                std::fs::write(path, trace.to_chrome_json())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                eprintln!("  wrote chrome trace to {path}");
            }
            eprintln!(
                "  {:<14} {:>2}t: {:>8.3}s  {}",
                m.series,
                t,
                m.secs(),
                m.note
            );
            results.push(m);
        }
    }

    print_time_table(
        "Figure 3a: dedup with atomic_defer (I/O and pure functions)",
        &threads,
        &results,
    );
    if arg_flag("--csv") {
        print_csv(&results);
    }
    if let Some(path) = stats_out {
        std::fs::write(&path, stats_json(&results))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
