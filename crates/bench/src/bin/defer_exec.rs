//! `defer_exec` — commit-latency comparison of the two deferred-op
//! executors (DESIGN.md §10), and the tracked evidence that the pooled
//! executor earns its complexity.
//!
//! The workload is the shape atomic deferral exists for: every transaction
//! makes a small transactional update and atomically defers a *long
//! blocking* operation (~`--op-us`, modeling the paper's buffered file
//! I/O) on its own deferrable object, then does some non-transactional
//! application work (~`--think-us`) before the next transaction. Under the
//! `Inline` executor the committing thread runs the deferred op before
//! `atomically` returns, so the op's full duration lands on the caller's
//! commit latency. Under `Pool` the commit returns right after
//! write-back and quiescence and a worker absorbs the op — the
//! caller-observed latency drops by the op duration, and the think time
//! gives workers room to drain the queue so it stays bounded. Both the
//! op and the think time sleep rather than spin: the op models blocking
//! I/O and the think time models off-CPU application work, which keeps
//! the comparison meaningful even on single-core machines (a spinning
//! op would just re-serialize everything on the CPU).
//!
//! Each cell times every `atomically()` call on the calling thread (the
//! runtime's own `commit_latency_ns` histogram is recorded *before*
//! post-commit work runs, deliberately — it measures the protocol, not the
//! executor; see OBSERVABILITY.md). Emits `BENCH_defer_exec.json` with
//! per-executor p50/p99/max and the headline `p99_speedup`; the tracked
//! floor is ≥5× (EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p ad-bench --bin defer_exec                 # full run
//! cargo run --release -p ad-bench --bin defer_exec -- --smoke     # CI: quick + asserts
//! cargo run --release -p ad-bench --bin defer_exec -- \
//!     --threads 4 --ops 200 --op-us 100 --think-us 300 --out PATH
//! ```

use std::time::{Duration, Instant};

use ad_bench::{arg_flag, arg_num, arg_value};
use ad_defer::{atomic_defer, Defer};
use ad_stm::{Runtime, StatsReport, TVar, TmConfig};
use ad_support::hist::Histogram;
use ad_support::sync::atomic::{AtomicU64, Ordering};

struct Cell {
    executor: &'static str,
    ops_per_sec: f64,
    commit_p50_ns: u64,
    commit_p99_ns: u64,
    commit_max_ns: u64,
    stats: StatsReport,
}

/// One arm: `threads` workers, each running `ops` transactions against its
/// own deferrable object (disjoint locks — the arms compare executor
/// placement, not lock contention).
fn run_arm(
    cfg: TmConfig,
    executor: &'static str,
    threads: usize,
    ops: usize,
    op_cost: Duration,
    think: Duration,
) -> Cell {
    let rt = Runtime::new(cfg);
    rt.set_tracing(true); // fills defer_queue_wait_ns; identical cost in both arms

    struct Obj {
        applied: AtomicU64,
    }
    let objs: Vec<Defer<Obj>> = (0..threads)
        .map(|_| {
            Defer::new(Obj {
                applied: AtomicU64::new(0),
            })
        })
        .collect();
    let vars: Vec<TVar<u64>> = (0..threads).map(|_| TVar::new(0)).collect();
    let commit_ns = Histogram::default();

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let (rt, obj, var) = (rt.clone(), objs[t].clone(), vars[t].clone());
            let commit_ns = &commit_ns;
            s.spawn(move || {
                for _ in 0..ops {
                    let c0 = Instant::now();
                    rt.atomically(|tx| {
                        obj.with(tx, |_, tx| tx.modify(&var, |x| x + 1))?;
                        let o = obj.clone();
                        atomic_defer(tx, &[&obj], move || {
                            std::thread::sleep(op_cost);
                            o.locked().applied.fetch_add(1, Ordering::Relaxed);
                        })
                    });
                    commit_ns.record(c0.elapsed().as_nanos() as u64);
                    std::thread::sleep(think);
                }
            });
        }
    });
    rt.drain_deferred();
    let elapsed = t0.elapsed();

    let total = (threads * ops) as u64;
    let applied: u64 = objs
        .iter()
        .map(|o| o.peek_unsynchronized().applied.load(Ordering::Relaxed))
        .sum();
    assert_eq!(applied, total, "{executor}: deferred ops lost");

    let snap = commit_ns.snapshot();
    Cell {
        executor,
        ops_per_sec: total as f64 / elapsed.as_secs_f64(),
        commit_p50_ns: snap.quantile(0.50),
        commit_p99_ns: snap.quantile(0.99),
        commit_max_ns: snap.max(),
        stats: rt.snapshot_stats(),
    }
}

fn main() {
    let smoke = arg_flag("--smoke");
    let threads: usize = arg_num("--threads", 2);
    let ops: usize = arg_num("--ops", if smoke { 100 } else { 500 });
    let op_us: u64 = arg_num("--op-us", 200);
    let think_us: u64 = arg_num("--think-us", 600);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_defer_exec.json".to_string());
    let op_cost = Duration::from_micros(op_us);
    let think = Duration::from_micros(think_us);

    println!("defer_exec: {threads} threads x {ops} ops, op {op_us}us, think {think_us}us");

    let cells = [
        run_arm(TmConfig::stm(), "inline", threads, ops, op_cost, think),
        run_arm(
            TmConfig::stm().with_defer_pool(threads, threads * 64),
            "pool",
            threads,
            ops,
            op_cost,
            think,
        ),
    ];
    for c in &cells {
        println!(
            "  {:<7} {:>10.0} ops/s  commit p50 {:>9}ns  p99 {:>9}ns  max {:>9}ns  \
             (offloads {}, queue wait p99 {}ns)",
            c.executor,
            c.ops_per_sec,
            c.commit_p50_ns,
            c.commit_p99_ns,
            c.commit_max_ns,
            c.stats.counters.defer_offloads,
            c.stats.defer_queue_wait_ns.quantile(0.99),
        );
    }

    let inline_p99 = cells[0].commit_p99_ns;
    let pool_p99 = cells[1].commit_p99_ns.max(1);
    let speedup = inline_p99 as f64 / pool_p99 as f64;
    println!("pool commit-latency p99 speedup over inline: {speedup:.1}x");

    // Sanity that the arms actually exercised the executors as configured.
    assert_eq!(
        cells[0].stats.counters.defer_offloads, 0,
        "inline arm offloaded"
    );
    // Every batch is accounted once: offloaded, or diverted inline when
    // the bounded queue was momentarily full (the backpressure fallback).
    assert_eq!(
        cells[1].stats.counters.defer_offloads + cells[1].stats.counters.defer_inline_fallbacks,
        (threads * ops) as u64,
        "pool arm lost batches"
    );
    assert!(
        cells[1].stats.counters.defer_offloads > 0,
        "pool arm never offloaded"
    );
    if smoke {
        // CI floor: looser than the tracked 5x so scheduling noise on
        // loaded runners doesn't flake, but still proof the pool moved the
        // op cost off the commit path (the op alone is `op_us`).
        assert!(
            speedup >= 2.0,
            "pool executor did not reduce commit p99: inline {inline_p99}ns, pool {pool_p99}ns"
        );
        println!("smoke ok");
        return;
    }

    let mut json = String::from("{\n  \"bench\": \"defer_exec\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"ops_per_thread\": {ops},\n"));
    json.push_str(&format!("  \"op_us\": {op_us},\n"));
    json.push_str(&format!("  \"think_us\": {think_us},\n"));
    json.push_str(&format!("  \"p99_speedup\": {speedup:.2},\n"));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"executor\": \"{}\", \"ops_per_sec\": {:.0}, \
             \"commit_p50_ns\": {}, \"commit_p99_ns\": {}, \"commit_max_ns\": {}, \
             \"stats\": {}}}{}\n",
            c.executor,
            c.ops_per_sec,
            c.commit_p50_ns,
            c.commit_p99_ns,
            c.commit_max_ns,
            c.stats.to_json(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}
