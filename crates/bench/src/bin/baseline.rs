//! STM hot-path throughput baseline.
//!
//! Emits `BENCH_stm_ops.json` (at the repo root by default): ops/sec for
//! four canonical access patterns at 1, 4 and 8 threads. The file is
//! committed, so every PR that touches the STM hot path re-runs this and
//! diffs against the tracked numbers — the coarse-grained regression tripwire
//! that complements the fine-grained `stm_ops` criterion bench.
//!
//! ```text
//! cargo run --release -p ad-bench --bin baseline            # write BENCH_stm_ops.json
//! cargo run --release -p ad-bench --bin baseline -- --ms 500 --out /tmp/b.json
//! cargo run --release -p ad-bench --bin baseline -- --clock gv2    # A/B the clock
//! cargo run --release -p ad-bench --bin baseline -- --smoke --clock sharded  # CI gate
//! cargo run --release -p ad-bench --bin baseline -- --stats-json /tmp/stats.json
//! ```
//!
//! `--clock {gv2,sloppy,sharded}` selects the commit-clock policy
//! (DESIGN.md §11) for every cell's runtime. The tracked
//! `BENCH_stm_ops.json` is taken with `sharded` — the scalable clock that
//! keeps the write/contended curves from inverting with cores — so that is
//! the default here; pass `gv2` to reproduce the paper-faithful TL2 clock's
//! numbers (the library default, `TmConfig::stm()`, remains `Gv2`).
//!
//! `--smoke` shrinks the run for CI and asserts the scalability gate: under
//! a scalable policy (`sloppy`/`sharded`), 8-thread `write` throughput must
//! be ≥ 0.9× the 1-thread value. `gv2` is exempt — collapsing under its
//! clock-line contention is exactly the pathology the policies exist to fix.
//! The 0.9× curve gate only makes sense when 8 threads have 8 cores: with
//! fewer, the dominant 8-thread cost is lock-holder preemption (a committer
//! descheduled mid-commit stalls quiescence), which no clock policy can
//! remove. On such hosts the gate degrades to an A/B floor instead — the
//! scalable policy's 8-thread write throughput must stay within 0.75× of
//! `gv2`'s, proving the looser clock itself costs nothing.
//!
//! `--stats-json PATH` additionally enables the observability layer on every
//! cell's runtime and dumps the per-cell [`ad_stm::StatsReport`] (counters +
//! the four latency histograms) as a JSON array. Note tracing costs a few
//! percent of throughput, so don't compare a `--stats-json` run's ops/sec
//! against a tracked baseline taken without it.
//!
//! Scenarios:
//! * `read_only`  — each thread sums 16 shared variables transactionally
//!   (no conflicts; exercises the lock-free snapshot read path);
//! * `write`      — each thread increments its own private variable
//!   (no conflicts; exercises commit, write-back and quiescence);
//! * `mixed`      — 90% single-var reads / 10% read-modify-writes over 64
//!   shared variables at random (low conflict);
//! * `contended`  — every thread increments the *same* variable (maximum
//!   conflict; throughput is dominated by aborts and retries).

use ad_support::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ad_bench::{arg_flag, arg_num, arg_value};
use ad_stm::{ClockPolicy, Runtime, StatsReport, TVar, TmConfig};
use ad_support::prng::Rng;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

struct Row {
    scenario: &'static str,
    threads: usize,
    ops_per_sec: f64,
    stats: Option<StatsReport>,
}

/// Run `op` from `threads` workers for roughly `dur`, returning total
/// ops/sec. `op` receives (thread index, iteration counter, rng).
fn run_scenario(
    threads: usize,
    dur: Duration,
    op: impl Fn(usize, u64, &mut Rng) + Send + Sync + 'static,
) -> f64 {
    let op = Arc::new(op);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));

    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let op = Arc::clone(&op);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut rng = Rng::seed_from_u64(0x0BA5E11E + t as u64);
                let mut ops = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    // Amortize the stop check over a small batch.
                    for _ in 0..64 {
                        op(t, ops, &mut rng);
                        ops += 1;
                    }
                }
                ops
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(dur);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    total as f64 / start.elapsed().as_secs_f64()
}

fn bench_read_only(rt: &Arc<Runtime>, threads: usize, dur: Duration) -> f64 {
    let vars: Arc<Vec<TVar<u64>>> = Arc::new((0..16).map(TVar::new).collect());
    let rt = Arc::clone(rt);
    run_scenario(threads, dur, move |_, _, _| {
        let sum = rt.atomically(|tx| {
            let mut s = 0u64;
            for v in vars.iter() {
                s = s.wrapping_add(tx.read(v)?);
            }
            Ok(s)
        });
        std::hint::black_box(sum);
    })
}

fn bench_write(rt: &Arc<Runtime>, threads: usize, dur: Duration) -> f64 {
    let vars: Arc<Vec<TVar<u64>>> = Arc::new((0..threads as u64).map(TVar::new).collect());
    let rt = Arc::clone(rt);
    run_scenario(threads, dur, move |t, _, _| {
        rt.atomically(|tx| tx.modify(&vars[t], |x| x.wrapping_add(1)));
    })
}

fn bench_mixed(rt: &Arc<Runtime>, threads: usize, dur: Duration) -> f64 {
    let vars: Arc<Vec<TVar<u64>>> = Arc::new((0..64).map(TVar::new).collect());
    let rt = Arc::clone(rt);
    run_scenario(threads, dur, move |_, _, rng| {
        let i = rng.random_range(0..64);
        if rng.random_bool(0.1) {
            rt.atomically(|tx| tx.modify(&vars[i], |x| x.wrapping_add(1)));
        } else {
            let v = rt.atomically(|tx| tx.read(&vars[i]));
            std::hint::black_box(v);
        }
    })
}

fn bench_contended(rt: &Arc<Runtime>, threads: usize, dur: Duration) -> f64 {
    let v = Arc::new(TVar::new(0u64));
    let rt = Arc::clone(rt);
    run_scenario(threads, dur, move |_, _, _| {
        rt.atomically(|tx| tx.modify(&v, |x| x.wrapping_add(1)));
    })
}

fn main() {
    let smoke = arg_flag("--smoke");
    let ms: u64 = arg_num("--ms", if smoke { 150 } else { 300 });
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_stm_ops.json".to_string());
    let stats_out = arg_value("--stats-json");
    let clock_name = arg_value("--clock").unwrap_or_else(|| "sharded".to_string());
    let clock = ClockPolicy::parse(&clock_name)
        .unwrap_or_else(|| panic!("unknown --clock {clock_name} (gv2|sloppy|sharded)"));
    let dur = Duration::from_millis(ms);
    println!("baseline: clock={}, {ms}ms per cell", clock.name());

    type ScenarioFn = fn(&Arc<Runtime>, usize, Duration) -> f64;
    let scenarios: [(&'static str, ScenarioFn); 4] = [
        ("read_only", bench_read_only),
        ("write", bench_write),
        ("mixed", bench_mixed),
        ("contended", bench_contended),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, f) in scenarios {
        for &threads in &THREAD_COUNTS {
            // A fresh runtime per cell keeps stats and slot lists isolated.
            let rt = Arc::new(Runtime::new(TmConfig::stm().with_clock(clock)));
            rt.set_tracing(stats_out.is_some());
            let ops_per_sec = f(&rt, threads, dur);
            println!("{name:<10} threads={threads}  {ops_per_sec:>14.0} ops/s");
            rows.push(Row {
                scenario: name,
                threads,
                ops_per_sec,
                stats: stats_out.is_some().then(|| rt.snapshot_stats()),
            });
        }
    }

    // The CI scalability gate: a scalable clock must not let per-core
    // write throughput collapse. Checked in smoke runs only (full runs are
    // for recording numbers, not gating), and only for sloppy/sharded —
    // gv2's collapse under clock-line contention is the known pathology.
    if smoke {
        // Gate on best-of-3 re-measurements, not the table rows: on a
        // loaded or oversubscribed runner a single 150ms cell can lose an
        // entire scheduling quantum and read 10x low.
        let best = |clk: ClockPolicy, threads: usize| -> f64 {
            (0..3)
                .map(|_| {
                    let rt = Arc::new(Runtime::new(TmConfig::stm().with_clock(clk)));
                    bench_write(&rt, threads, dur)
                })
                .fold(0.0, f64::max)
        };
        if clock != ClockPolicy::Gv2 {
            let (w1, w8) = (best(clock, 1), best(clock, 8));
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            if cores >= 8 {
                assert!(
                    w8 >= 0.9 * w1,
                    "clock={} write curve inverted: 8 threads {w8:.0} ops/s < 0.9x 1 thread {w1:.0} ops/s",
                    clock.name()
                );
                println!(
                    "smoke ok: clock={} write 8t/1t = {:.2}x",
                    clock.name(),
                    w8 / w1.max(1.0)
                );
            } else {
                // Oversubscribed host: the curve gate would measure the
                // scheduler, not the clock. Gate policy-vs-gv2 parity at
                // the same thread count instead.
                let g8 = best(ClockPolicy::Gv2, 8);
                assert!(
                    w8 >= 0.75 * g8,
                    "clock={} regresses 8-thread write vs gv2 on a {cores}-core host: \
                     {w8:.0} ops/s < 0.75x {g8:.0} ops/s",
                    clock.name()
                );
                println!(
                    "smoke ok: clock={} write 8t = {:.2}x of gv2 ({cores}-core host, curve gate skipped)",
                    clock.name(),
                    w8 / g8.max(1.0)
                );
            }
        } else {
            println!("smoke ok: clock=gv2 (no scalability gate)");
        }
        return;
    }

    // Hand-formatted JSON (no serde in the offline workspace).
    let mut json = String::from("{\n  \"bench\": \"stm_ops_baseline\",\n");
    json.push_str(&format!("  \"duration_ms_per_cell\": {ms},\n"));
    json.push_str(&format!("  \"clock\": \"{}\",\n", clock.name()));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"threads\": {}, \"ops_per_sec\": {:.0}}}{}\n",
            r.scenario,
            r.threads,
            r.ops_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if let Some(path) = stats_out {
        let mut sj = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                sj.push_str(",\n");
            }
            sj.push_str(&format!(
                "  {{\"scenario\":\"{}\",\"threads\":{},\"ops_per_sec\":{:.0},\"stats\":{}}}",
                r.scenario,
                r.threads,
                r.ops_per_sec,
                r.stats
                    .as_ref()
                    .map_or_else(|| "null".to_string(), |s| s.to_json()),
            ));
        }
        sj.push_str("\n]\n");
        std::fs::write(&path, sj).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
