//! Figure 2 (a–d): the transactional-I/O microbenchmark.
//!
//! ```text
//! cargo run --release -p ad-bench --bin fig2 -- --files 1             # Fig 2a
//! cargo run --release -p ad-bench --bin fig2 -- --files 2             # Fig 2b
//! cargo run --release -p ad-bench --bin fig2 -- --files 4             # Fig 2c
//! cargo run --release -p ad-bench --bin fig2 -- --files 4 --keep-open # Fig 2d
//! ```
//!
//! Options: `--ops N` (default 100000; paper uses 1M), `--max-threads N`
//! (default 8), `--htm` (run TM variants on the simulated-HTM runtime),
//! `--csv` (machine-readable output), `--stats-json PATH` (per-cell
//! observability reports; enables tracing on the TM runtimes),
//! `--trace-json PATH` (capture the Defer cell at max threads with tracing
//! on and export its event timeline as chrome://tracing JSON).

use ad_bench::{arg_flag, arg_num, arg_value};
use ad_workloads::{
    print_csv, print_time_table, run_iobench_traced, stats_json, IoBenchConfig, Variant,
};

fn main() {
    let files: usize = arg_num("--files", 1);
    let total_ops: usize = arg_num("--ops", 100_000);
    let max_threads: usize = arg_num("--max-threads", 8);
    let keep_open = arg_flag("--keep-open");
    let htm = arg_flag("--htm");
    let stats_out = arg_value("--stats-json");
    let trace_out = arg_value("--trace-json");

    let cfg = IoBenchConfig::new(files, total_ops)
        .with_keep_open(keep_open)
        .with_htm(htm)
        .with_obs(stats_out.is_some());

    // The paper's Figure 2a has no FGL series (1 file makes FGL == CGL).
    let variants: Vec<Variant> = if files == 1 && !keep_open {
        vec![Variant::Cgl, Variant::Irrevoc, Variant::Defer]
    } else {
        Variant::all().to_vec()
    };
    let threads: Vec<usize> = (1..=max_threads).collect();

    let which = match (files, keep_open) {
        (1, false) => "2a",
        (2, false) => "2b",
        (4, false) => "2c",
        (4, true) => "2d",
        _ => "2?",
    };
    println!(
        "Figure {which}: {files} file(s), {total_ops} ops, keep_open={keep_open}, \
         TM runtime={}",
        if htm { "HTM-sim" } else { "STM" }
    );

    let mut results = Vec::new();
    for &variant in &variants {
        for &t in &threads {
            let capture = trace_out.is_some() && variant == Variant::Defer && t == max_threads;
            let (m, trace) = run_iobench_traced(&cfg, variant, t, capture);
            if capture {
                let path = trace_out.as_ref().unwrap();
                let trace = trace.expect("TM variants produce a trace");
                std::fs::write(path, trace.to_chrome_json())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                eprintln!("  wrote chrome trace to {path}");
            }
            eprintln!(
                "  {:<8} {:>2}t: {:>8.3}s  {}",
                m.series,
                t,
                m.secs(),
                m.note
            );
            results.push(m);
        }
    }

    print_time_table(
        &format!(
            "Figure {which}: I/O microbenchmark ({files} files{})",
            if keep_open { ", kept open" } else { "" }
        ),
        &threads,
        &results,
    );
    if arg_flag("--csv") {
        print_csv(&results);
    }
    if let Some(path) = stats_out {
        std::fs::write(&path, stats_json(&results))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
