//! The paper's §5 use cases, quantified: logging from critical sections
//! (§5.1, memcached-style) and the bounded file-descriptor pool (§5.3,
//! MySQL InnoDB-style). The paper reports these qualitatively ("we did not
//! observe a performance impact when applying atomic_defer to memcached";
//! "file operations can proceed fully in parallel"); these sweeps put
//! numbers behind both claims.
//!
//! ```text
//! cargo run --release -p ad-bench --bin usecases [-- --ops 20000 --max-threads 8 --csv]
//! ```

use ad_bench::{arg_flag, arg_num};
use ad_workloads::{
    print_csv, print_time_table, run_logbench, run_poolbench, LogBenchConfig, LogVariant,
    PoolBenchConfig, PoolVariant,
};

fn main() {
    let total_ops: usize = arg_num("--ops", 20_000);
    let max_threads: usize = arg_num("--max-threads", 8);
    let threads: Vec<usize> = (1..=max_threads).collect();

    // ---- §5.1: logging --------------------------------------------------
    println!("Use case §5.1: diagnostic logging from transactions ({total_ops} ops)");
    let log_cfg = LogBenchConfig::new(total_ops);
    let mut log_results = Vec::new();
    for v in LogVariant::all() {
        for &t in &threads {
            let m = run_logbench(&log_cfg, v, t);
            eprintln!(
                "  {:<16} {:>2}t: {:>8.3}s  {}",
                m.series,
                t,
                m.secs(),
                m.note
            );
            log_results.push(m);
        }
    }
    print_time_table("Use case: logging (Listing 3)", &threads, &log_results);

    // ---- §5.3: descriptor pool ------------------------------------------
    let pool_ops = total_ops / 2;
    println!("\nUse case §5.3: bounded descriptor pool ({pool_ops} appends, 8 files, 2 open)");
    let pool_cfg = PoolBenchConfig::new(pool_ops);
    let mut pool_results = Vec::new();
    for v in PoolVariant::all() {
        for &t in &threads {
            let m = run_poolbench(&pool_cfg, v, t);
            eprintln!(
                "  {:<10} {:>2}t: {:>8.3}s  {}",
                m.series,
                t,
                m.secs(),
                m.note
            );
            pool_results.push(m);
        }
    }
    print_time_table("Use case: fd pool (Listing 5)", &threads, &pool_results);

    if arg_flag("--csv") {
        print_csv(&log_results);
        print_csv(&pool_results);
    }
}
