//! `shard_bench` — closed-loop throughput benchmark for `ad-shard`'s
//! cross-shard transactions, and the tracked evidence of what a 2-phase
//! commit across runtimes costs relative to single-shard batches.
//!
//! Emits `BENCH_kv_shard.json` (repo root by default): ops/sec at 1, 2
//! and 4 shards under a zipf-skewed (θ=0.99, YCSB-style) mixed workload
//! — 50% routed gets, 40% single-shard put batches, 10% multi-key
//! batches that span shards whenever their sampled keys hash apart —
//! with batch-commit latency quantiles split by class (single-shard vs
//! cross-shard) and the merged per-runtime STM counters alongside. Every
//! shard is its own `KvStore` on its own WAL (`SyncPolicy::GroupCommit`
//! on real files), so a cross-shard batch pays real prepare/ack round
//! trips and at least two covering fsyncs; the `cross_p50_ns` vs
//! `single_p50_ns` gap is the protocol's price tag (EXPERIMENTS.md for
//! methodology and the 1-core caveat).
//!
//! ```text
//! cargo run --release -p ad-bench --bin shard_bench                 # full grid
//! cargo run --release -p ad-bench --bin shard_bench -- --ms 500
//! cargo run --release -p ad-bench --bin shard_bench -- --smoke     # CI: quick + asserts
//! ```
//!
//! * `--ms N` — steady-state milliseconds per cell (default 200), warm-up
//!   a quarter of that (min 50 ms), excluded from the numbers.
//! * `--dir PATH` — where shard WALs go (default: system temp dir).
//! * `--out PATH` — JSON destination (default `BENCH_kv_shard.json`).
//! * `--smoke` — one short 2-shard cell plus the correctness gates CI
//!   runs: atomicity probes (readers racing cross-shard commits must
//!   never see a partial per-shard slice), the durability round trip
//!   (reopening the same WALs reproduces the live state exactly), and
//!   the merged-trace contract (one cross-shard commit renders as one
//!   timeline with both runtimes' protocol instants on it).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ad_bench::{arg_flag, arg_num, arg_value};
use ad_kv::{KvConfig, KvStore, SyncPolicy, WriteBatch};
use ad_shard::ShardRouter;
use ad_support::hist::Histogram;
use ad_support::prng::Rng;
use ad_support::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const KEYSPACE: usize = 10_000;
const VALUE_LEN: usize = 64;
const THREADS: usize = 4;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const ZIPF_THETA: f64 = 0.99;
/// Keys per multi-key batch; with skew some may collide on one shard,
/// so the *actual* cross-shard ratio is measured and reported.
const BATCH_KEYS: usize = 4;

/// YCSB-style zipf sampler: item 0 is the hottest, `eta`/`zetan` are the
/// usual precomputed constants so sampling is O(1).
#[derive(Clone, Copy)]
struct Zipf {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Zipf {
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let idx = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        idx.min(self.n - 1)
    }
}

fn key(i: usize) -> String {
    format!("key{i:05}")
}

fn cleanup_cell(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

/// One router over `shards` stores, each on its own WAL file inside
/// `dir` (created fresh).
fn open_router(shards: usize, dir: &Path) -> ShardRouter {
    std::fs::create_dir_all(dir).expect("creating shard WAL dir");
    let stores = (0..shards)
        .map(|s| {
            let path = dir.join(format!("shard{s}.wal"));
            Arc::new(
                KvStore::open(KvConfig::durable(&path, SyncPolicy::GroupCommit))
                    .expect("opening shard store"),
            )
        })
        .collect();
    ShardRouter::from_stores(stores)
}

fn preload(router: &ShardRouter) {
    let mut batch = WriteBatch::new();
    for i in 0..KEYSPACE {
        batch = batch.put(key(i), vec![0u8; VALUE_LEN]);
        if batch.len() == 256 {
            // Preload batches span shards; correctness is the point of
            // the protocol, so the preload exercises it too.
            router.write_batch(&batch);
            batch = WriteBatch::new();
        }
    }
    if !batch.is_empty() {
        router.write_batch(&batch);
    }
}

struct CellOut {
    ops_per_sec: f64,
    single_batches: u64,
    cross_batches: u64,
    single_ns: Histogram,
    cross_ns: Histogram,
}

/// One op: 50% routed get, 40% single-key put batch, 10% multi-key
/// batch (classified by how many shards its sampled keys actually hit).
fn one_op(router: &ShardRouter, zipf: &Zipf, rng: &mut Rng, op_seq: u64, out: &CellCounters) {
    let roll = rng.next_u64() % 100;
    if roll < 50 {
        std::hint::black_box(router.get(&key(zipf.sample(rng))));
        return;
    }
    let mut value = vec![0u8; VALUE_LEN];
    value[..8].copy_from_slice(&op_seq.to_le_bytes());
    if roll < 90 {
        let k = key(zipf.sample(rng));
        let t0 = Instant::now();
        router.write_batch(&WriteBatch::new().put(&k, value.clone()));
        out.single_ns.record(t0.elapsed().as_nanos() as u64);
        out.single.fetch_add(1, Ordering::Relaxed);
    } else {
        let mut b = WriteBatch::new();
        let mut shards = std::collections::BTreeSet::new();
        for _ in 0..BATCH_KEYS {
            let k = key(zipf.sample(rng));
            shards.insert(router.shard_of(&k));
            b = b.put(&k, value.clone());
        }
        let t0 = Instant::now();
        router.write_batch(&b);
        let ns = t0.elapsed().as_nanos() as u64;
        if shards.len() > 1 {
            out.cross_ns.record(ns);
            out.cross.fetch_add(1, Ordering::Relaxed);
        } else {
            out.single_ns.record(ns);
            out.single.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct CellCounters {
    single: AtomicU64,
    cross: AtomicU64,
    single_ns: Histogram,
    cross_ns: Histogram,
}

fn run_cell(router: &Arc<ShardRouter>, warm: Duration, steady: Duration) -> CellOut {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let ops: Arc<Vec<AtomicU64>> = Arc::new((0..THREADS).map(|_| AtomicU64::new(0)).collect());
    let counters = Arc::new(CellCounters {
        single: AtomicU64::new(0),
        cross: AtomicU64::new(0),
        single_ns: Histogram::new(),
        cross_ns: Histogram::new(),
    });
    let zipf = Zipf::new(KEYSPACE, ZIPF_THETA);

    let ops_per_sec = std::thread::scope(|s| {
        for t in 0..THREADS {
            let router = Arc::clone(router);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let ops = Arc::clone(&ops);
            let counters = Arc::clone(&counters);
            s.spawn(move || {
                let mut rng = Rng::seed_from_u64(0x5AA4_D000 + t as u64);
                let mut n = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..8 {
                        one_op(&router, &zipf, &mut rng, n, &counters);
                        n += 1;
                    }
                    ops[t].store(n, Ordering::Relaxed);
                }
            });
        }
        barrier.wait();
        std::thread::sleep(warm);
        // Latency histograms include warm-up; the throughput window does
        // not (quantiles are robust to a short warm tail, rates are not).
        let ops0: u64 = ops.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        let t0 = Instant::now();
        std::thread::sleep(steady);
        let ops1: u64 = ops.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        let elapsed = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        (ops1 - ops0) as f64 / elapsed.as_secs_f64()
    });
    // Workers joined at scope exit; the counters Arc is sole-owned now.
    let c = Arc::try_unwrap(counters).ok().expect("workers joined");
    CellOut {
        ops_per_sec,
        single_batches: c.single.load(Ordering::Relaxed),
        cross_batches: c.cross.load(Ordering::Relaxed),
        single_ns: c.single_ns,
        cross_ns: c.cross_ns,
    }
}

/// The merged-trace contract, used by both smoke and the unit-level CI
/// gate: one cross-shard commit must render as a single timeline with
/// both runtimes tagged and all six protocol instants present.
fn assert_merged_trace(router: &ShardRouter) {
    // Two keys guaranteed on different shards.
    let on = |s: usize| {
        (0..)
            .map(|i| format!("t{i}"))
            .find(|k| router.shard_of(k) == s)
            .expect("keys cover shards")
    };
    let (a, b) = (on(0), on(1));
    router.set_tracing(true);
    router.write_batch(&WriteBatch::new().put(&a, b"1").put(&b, b"2"));
    // Quiesce before draining: the participant's release-side instants
    // land asynchronously, and draining a live ring can lose the event
    // being written.
    router.quiesce();
    router.set_tracing(false);
    let trace = router.take_trace();
    assert_eq!(
        trace.render().matches("shard_").count(),
        6,
        "one 2-shard commit is six protocol instants:\n{}",
        trace.render()
    );
    let runtimes = trace.runtime_ids();
    assert!(
        runtimes.len() >= 2,
        "merged timeline shows {} runtime(s): {runtimes:?}",
        runtimes.len()
    );
    let rendered = trace.render();
    for kind in ["shard_prepare", "shard_ack", "shard_release"] {
        assert!(rendered.contains(kind), "missing {kind} in merged timeline");
    }
    println!(
        "merged trace ok: {} events across runtimes {runtimes:?}",
        trace.events.len()
    );
}

fn smoke(dir: &Path) {
    let cell_dir = dir.join("shard-smoke");
    cleanup_cell(&cell_dir);
    let router = Arc::new(open_router(2, &cell_dir));
    preload(&router);
    let out = run_cell(
        &router,
        Duration::from_millis(25),
        Duration::from_millis(50),
    );
    assert!(
        out.cross_batches > 0,
        "smoke never committed a cross-shard batch"
    );

    // Atomicity probe: readers race cross-shard commits; a reader that
    // sees one key of a shard's slice without its sibling (values
    // disagreeing) caught a partial batch.
    let on = |p: &str, s: usize| {
        (0..)
            .map(|i| format!("{p}{i}"))
            .find(|k| router.shard_of(k) == s)
            .expect("keys cover shards")
    };
    let probe = [on("p", 0), on("q", 0), on("r", 1), on("s", 1)];
    for k in &probe {
        router.put(k, &0u64.to_le_bytes());
    }
    let stop = Arc::new(AtomicBool::new(false));
    let checker = {
        let router = Arc::clone(&router);
        let probe = probe.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let got = router.get_many(&[&probe[0], &probe[1], &probe[2], &probe[3]]);
                let round = |v: &Option<Arc<[u8]>>| {
                    u64::from_le_bytes(v.as_deref().unwrap().try_into().unwrap())
                };
                assert_eq!(round(&got[0]), round(&got[1]), "partial batch on shard 0");
                assert_eq!(round(&got[2]), round(&got[3]), "partial batch on shard 1");
            }
        })
    };
    for round in 1u64..200 {
        let v = round.to_le_bytes();
        router.write_batch(
            &WriteBatch::new()
                .put(&probe[0], v)
                .put(&probe[1], v)
                .put(&probe[2], v)
                .put(&probe[3], v),
        );
    }
    stop.store(true, Ordering::Relaxed);
    checker.join().expect("atomicity checker");

    // Merged observability contract.
    assert_merged_trace(&router);

    // Durability round trip: reopening the same WALs must reproduce the
    // live state exactly — acked means durable on every shard.
    let live: BTreeMap<String, Vec<u8>> = router.dump();
    let stats = router.stats();
    drop(router);
    let reopened = open_router(2, &cell_dir);
    assert_eq!(
        reopened.dump(),
        live,
        "recovered cross-shard state differs from live state"
    );
    drop(reopened);
    cleanup_cell(&cell_dir);
    println!(
        "smoke ok: {:.0} ops/s, {} single / {} cross batches, {} commits across runtimes, \
         recovery reproduced {} keys",
        out.ops_per_sec,
        out.single_batches,
        out.cross_batches,
        stats.counters.commits,
        live.len()
    );
}

fn main() {
    let ms: u64 = arg_num("--ms", 200);
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_kv_shard.json".to_string());
    let dir = arg_value("--dir")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    std::fs::create_dir_all(&dir).expect("creating WAL dir");

    if arg_flag("--smoke") {
        smoke(&dir);
        return;
    }

    let steady = Duration::from_millis(ms);
    let warm = Duration::from_millis((ms / 4).max(50));

    struct Row {
        shards: usize,
        ops_per_sec: f64,
        single_batches: u64,
        cross_batches: u64,
        cross_pct: f64,
        single_p50_ns: u64,
        single_p99_ns: u64,
        cross_p50_ns: u64,
        cross_p99_ns: u64,
        commits: u64,
        wal_records: u64,
    }
    let mut rows: Vec<Row> = Vec::new();

    for &shards in &SHARD_COUNTS {
        let cell_dir = dir.join(format!("shard-bench-{shards}"));
        cleanup_cell(&cell_dir);
        let router = Arc::new(open_router(shards, &cell_dir));
        preload(&router);
        let out = run_cell(&router, warm, steady);
        let stats = router.stats();
        let wal_records: u64 = (0..shards)
            .map(|s| router.store(s).wal_stats().map_or(0, |w| w.records))
            .sum();
        let batches = out.single_batches + out.cross_batches;
        let cross_pct = if batches > 0 {
            100.0 * out.cross_batches as f64 / batches as f64
        } else {
            0.0
        };
        let sh = out.single_ns.snapshot();
        let ch = out.cross_ns.snapshot();
        println!(
            "shards={shards}  {:>12.0} ops/s  cross {:.1}% of batches  \
             single p50 {} ns  cross p50 {} ns",
            out.ops_per_sec,
            cross_pct,
            sh.quantile(0.50),
            ch.quantile(0.50)
        );
        rows.push(Row {
            shards,
            ops_per_sec: out.ops_per_sec,
            single_batches: out.single_batches,
            cross_batches: out.cross_batches,
            cross_pct,
            single_p50_ns: sh.quantile(0.50),
            single_p99_ns: sh.quantile(0.99),
            cross_p50_ns: ch.quantile(0.50),
            cross_p99_ns: ch.quantile(0.99),
            commits: stats.counters.commits,
            wal_records,
        });
        drop(router);
        cleanup_cell(&cell_dir);
    }

    let mut json = String::from("{\n  \"bench\": \"kv_shard\",\n");
    json.push_str(&format!("  \"duration_ms_per_cell\": {ms},\n"));
    json.push_str(&format!("  \"threads\": {THREADS},\n"));
    json.push_str(&format!("  \"keyspace\": {KEYSPACE},\n"));
    json.push_str(&format!("  \"value_len\": {VALUE_LEN},\n"));
    json.push_str(&format!("  \"zipf_theta\": {ZIPF_THETA},\n"));
    json.push_str(&format!("  \"batch_keys\": {BATCH_KEYS},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"ops_per_sec\": {:.0}, \"single_batches\": {}, \
             \"cross_batches\": {}, \"cross_pct\": {:.2}, \"single_p50_ns\": {}, \
             \"single_p99_ns\": {}, \"cross_p50_ns\": {}, \"cross_p99_ns\": {}, \
             \"commits\": {}, \"wal_records\": {}}}{}\n",
            r.shards,
            r.ops_per_sec,
            r.single_batches,
            r.cross_batches,
            r.cross_pct,
            r.single_p50_ns,
            r.single_p99_ns,
            r.cross_p50_ns,
            r.cross_p99_ns,
            r.commits,
            r.wal_records,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
