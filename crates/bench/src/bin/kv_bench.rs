//! `kv_bench` — closed-loop throughput benchmark for the `ad-kv` durable
//! store, and the tracked evidence that group commit earns its complexity.
//!
//! Emits `BENCH_kv.json` (at the repo root by default): ops/sec for
//! YCSB-flavoured mixes at 1, 4 and 8 threads, with the WAL's coalescing
//! counters and per-append latency quantiles (p50/p99/max of
//! [`ad_kv::WalStats`]'s `append_ns` histogram — enqueue to covering
//! fsync) alongside. The headline cells are `update_heavy` under
//! `group` vs `percommit` at 8 threads: concurrent committers sharing
//! fsyncs must beat one-fsync-per-commit by a wide margin (≥2× is the
//! tracked floor; see EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p ad-bench --bin kv_bench                    # full grid
//! cargo run --release -p ad-bench --bin kv_bench -- --ms 500
//! cargo run --release -p ad-bench --bin kv_bench -- --smoke        # CI: quick + asserts
//! cargo run --release -p ad-bench --bin kv_bench -- --stats-json /tmp/kv-stats.json
//! cargo run --release -p ad-bench --bin kv_bench -- --trace-json /tmp/kv-trace.json
//! ```
//!
//! * `--ms N` — steady-state milliseconds per cell (default 200). Each
//!   cell also gets a warm-up of a quarter of that (min 50 ms) which is
//!   *excluded* from the reported numbers via [`ad_stm::StatsReport::delta`]
//!   interval snapshots.
//! * `--dir PATH` — where WAL files go (default: the system temp dir).
//!   Point it at a real disk: group commit's advantage is the fsync it
//!   amortizes.
//! * `--stats-json PATH` — enable the observability layer and dump each
//!   cell's *steady-state* stats report (end snapshot minus warm-up
//!   snapshot) as a JSON array. Tracing costs a few percent; don't compare
//!   such a run against a tracked baseline.
//! * `--trace-json PATH` — additionally capture the busiest cell
//!   (`update_heavy`/`group`/8 threads) with tracing on and export its
//!   timeline as chrome://tracing JSON (`wal_append`/`wal_fsync` instants
//!   included).
//! * `--smoke` — 50 ms cells, 4 threads only, plus correctness asserts:
//!   recovery from the just-written WAL must reproduce the live store
//!   exactly, group commit must have coalesced, and the per-TVar
//!   contention report must show load spread across shards. Add `--async`
//!   to run the same smoke on `SyncPolicy::Async`, i.e. with deferred WAL
//!   appends on the pooled executor, or `--ckpt` to run the
//!   checkpointing smoke instead: an auto-checkpointing store under the
//!   same load must bound its live WAL and replay only the post-cut
//!   suffix on reopen (CI runs all three).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ad_bench::{arg_flag, arg_num, arg_value};
use ad_kv::{CkptPolicy, KvConfig, KvStore, SyncPolicy, WriteBatch};
use ad_stm::StatsReport;
use ad_support::prng::Rng;
use ad_support::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const KEYSPACE: usize = 10_000;
const VALUE_LEN: usize = 64;
const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mix {
    /// 95% get / 5% put.
    ReadMostly,
    /// 50% get / 50% put — the fsync-bound mix group commit targets.
    UpdateHeavy,
    /// 90% get / 5% short scan / 5% put.
    ScanHeavy,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::ReadMostly => "read_mostly",
            Mix::UpdateHeavy => "update_heavy",
            Mix::ScanHeavy => "scan_mix",
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Persistence {
    Volatile,
    Group,
    PerCommit,
    /// Group commit plus background checkpointing (`CkptPolicy::Auto`
    /// at a 256 KiB WAL threshold): same sync path as `group`, but the
    /// live log stays bounded and recovery replays only the suffix.
    GroupCkpt,
}

impl Persistence {
    fn name(self) -> &'static str {
        match self {
            Persistence::Volatile => "volatile",
            Persistence::Group => "group",
            Persistence::PerCommit => "percommit",
            Persistence::GroupCkpt => "group_ckpt",
        }
    }
}

struct Row {
    mix: Mix,
    persistence: Persistence,
    threads: usize,
    ops_per_sec: f64,
    wal_records: u64,
    wal_batches: u64,
    coalescing: f64,
    /// Per-append WAL latency quantiles (`WalStats::append_ns`), i.e. what
    /// a durable write pays end to end: enqueue + wait for the covering
    /// fsync. 0 for volatile cells.
    append_p50_ns: u64,
    append_p99_ns: u64,
    append_max_ns: u64,
    /// Checkpoints published during the cell (0 without a ckpt tier).
    ckpt_count: u64,
    /// On-disk WAL bytes (base file + live segments) at the end of the
    /// cell — what a reopen has to scan. Unbounded under `group`,
    /// bounded under `group_ckpt`.
    wal_live_bytes: u64,
    /// Size of the current published snapshot, 0 when none.
    snapshot_bytes: u64,
    /// Wall-clock milliseconds of a cold reopen of the cell's files
    /// (two-tier recovery: snapshot load + suffix replay). 0 for
    /// volatile cells.
    recovery_ms: f64,
    /// Redo records the reopen actually replayed.
    recovery_replayed: u64,
    steady_stats: Option<StatsReport>,
}

fn key(i: usize) -> String {
    format!("key{i:05}")
}

fn open_store(persistence: Persistence, path: &Path) -> KvStore {
    let config = match persistence {
        Persistence::Volatile => KvConfig::volatile(),
        Persistence::Group => KvConfig::durable(path, SyncPolicy::GroupCommit),
        Persistence::PerCommit => KvConfig::durable(path, SyncPolicy::PerCommit),
        Persistence::GroupCkpt => {
            KvConfig::durable(path, SyncPolicy::GroupCommit).with_ckpt(CkptPolicy::Auto {
                wal_bytes: 256 << 10,
                wal_records: u64::MAX,
            })
        }
    };
    KvStore::open(config).expect("opening store")
}

/// Remove the cell's base WAL plus any rotated segments and snapshot
/// files beside it (`{name}.seg*`, `{name}.ckpt.*`).
fn cleanup_files(path: &Path) {
    let _ = std::fs::remove_file(path);
    let (Some(parent), Some(fname)) = (path.parent(), path.file_name().and_then(|s| s.to_str()))
    else {
        return;
    };
    let Ok(rd) = std::fs::read_dir(parent) else {
        return;
    };
    for e in rd.flatten() {
        if let Some(n) = e.file_name().to_str() {
            if n.starts_with(&format!("{fname}.seg")) || n.starts_with(&format!("{fname}.ckpt")) {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
}

/// On-disk bytes a reopen has to scan: base WAL file plus live segments.
fn wal_live_bytes(path: &Path) -> u64 {
    let mut total = path.metadata().map_or(0, |m| m.len());
    let (Some(parent), Some(fname)) = (path.parent(), path.file_name().and_then(|s| s.to_str()))
    else {
        return total;
    };
    let Ok(rd) = std::fs::read_dir(parent) else {
        return total;
    };
    for e in rd.flatten() {
        if let Some(n) = e.file_name().to_str() {
            if n.starts_with(&format!("{fname}.seg")) {
                total += e.metadata().map_or(0, |m| m.len());
            }
        }
    }
    total
}

fn snapshot_bytes(path: &Path) -> u64 {
    let mut cur = path.as_os_str().to_os_string();
    cur.push(".ckpt.cur");
    PathBuf::from(cur).metadata().map_or(0, |m| m.len())
}

fn preload(store: &KvStore) {
    // Batched so a durable preload pays hundreds of fsyncs, not 10k.
    let mut batch = WriteBatch::new();
    for i in 0..KEYSPACE {
        batch = batch.put(key(i), vec![0u8; VALUE_LEN]);
        if batch.len() == 256 {
            store.write_batch(&batch);
            batch = WriteBatch::new();
        }
    }
    if !batch.is_empty() {
        store.write_batch(&batch);
    }
}

fn one_op(store: &KvStore, mix: Mix, rng: &mut Rng, op_seq: u64) {
    let k = key(rng.random_range(0..KEYSPACE));
    let write_chance = match mix {
        Mix::ReadMostly => 0.05,
        Mix::UpdateHeavy => 0.5,
        Mix::ScanHeavy => 0.05,
    };
    if mix == Mix::ScanHeavy && rng.random_bool(0.05) {
        std::hint::black_box(store.scan_from(&k, 20));
    } else if rng.random_bool(write_chance) {
        let mut value = vec![0u8; VALUE_LEN];
        value[..8].copy_from_slice(&op_seq.to_le_bytes());
        store.put(&k, &value);
    } else {
        std::hint::black_box(store.get(&k));
    }
}

/// Closed loop: `threads` workers hammer the store; ops are counted only
/// inside the steady window (after `warm`), delimited by shared-counter
/// snapshots rather than stopping the world.
fn run_cell(
    store: &Arc<KvStore>,
    mix: Mix,
    threads: usize,
    warm: Duration,
    steady: Duration,
    want_stats: bool,
) -> (f64, Option<StatsReport>) {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let counters: Arc<Vec<AtomicU64>> = Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());

    std::thread::scope(|s| {
        for t in 0..threads {
            let store = Arc::clone(store);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let counters = Arc::clone(&counters);
            s.spawn(move || {
                let mut rng = Rng::seed_from_u64(0x5EED_4B56 + t as u64);
                let mut ops = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..8 {
                        one_op(&store, mix, &mut rng, ops);
                        ops += 1;
                    }
                    counters[t].store(ops, Ordering::Relaxed);
                }
            });
        }

        barrier.wait();
        std::thread::sleep(warm);
        let warm_stats = want_stats.then(|| store.runtime().snapshot_stats());
        let ops0: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        let t0 = Instant::now();
        std::thread::sleep(steady);
        let ops1: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        let elapsed = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        let steady_stats = warm_stats.map(|w| store.runtime().snapshot_stats().delta(&w));
        ((ops1 - ops0) as f64 / elapsed.as_secs_f64(), steady_stats)
    })
}

fn smoke(dir: &Path, use_async: bool) {
    let path = dir.join(if use_async {
        "kv-smoke-async.wal"
    } else {
        "kv-smoke.wal"
    });
    let _ = std::fs::remove_file(&path);
    // `--async` runs the same smoke on `SyncPolicy::Async`, whose store
    // runs deferred WAL appends on the pooled executor — CI covers both
    // executors through the same asserts.
    let store = if use_async {
        Arc::new(KvStore::open(KvConfig::durable(&path, SyncPolicy::Async)).expect("opening store"))
    } else {
        Arc::new(open_store(Persistence::Group, &path))
    };
    store.runtime().set_tracing(true);
    preload(&store);
    let (ops_per_sec, _) = run_cell(
        &store,
        Mix::UpdateHeavy,
        4,
        Duration::from_millis(25),
        Duration::from_millis(50),
        false,
    );
    // Durability barrier: under Async, acked writes may still be queued on
    // the pool; the stats/recovery asserts below need them on disk.
    store.sync();
    let wal = store.wal_stats().expect("durable store has WAL stats");
    assert!(wal.records > 0, "smoke ran no durable writes");
    assert!(
        wal.coalescing() >= 1.0,
        "coalescing below 1: {:.2}",
        wal.coalescing()
    );

    // Shard balance: bucket contention must be spread, not concentrated on
    // one variable — the contention report is the tool that shows it. A
    // handful of failures carries no signal (one failure is always 100% of
    // itself), so only judge the share once there are enough to spread.
    let trace = store.runtime().take_trace();
    let report = trace.contention_report(8);
    println!("contention (top 8 of the smoke run):");
    print!("{report}");
    assert!(
        report.total_fails < 20 || report.top_share() < 0.9,
        "one TVar absorbs {:.0}% of {} validation failures — shard count too low?",
        report.top_share() * 100.0,
        report.total_fails
    );

    // The durability contract end to end: recovery from the WAL we just
    // wrote must reproduce the live store exactly.
    let live: BTreeMap<String, Vec<u8>> = store.dump();
    drop(store);
    let reopened = open_store(Persistence::Group, &path);
    let report = reopened
        .recovery_report()
        .expect("reopened store has a recovery report")
        .clone();
    assert!(!report.torn(), "clean shutdown left a torn WAL");
    assert_eq!(
        reopened.dump(),
        live,
        "recovered state differs from live state"
    );
    let _ = std::fs::remove_file(&path);
    println!(
        "smoke ok: {ops_per_sec:.0} ops/s, {} records in {} batches (coalescing {:.2}), \
         recovery of {} records reproduced {} keys",
        wal.records,
        wal.batches,
        wal.coalescing(),
        report.records,
        live.len()
    );
}

/// `--smoke --ckpt`: the bounded-WAL/bounded-recovery contract under
/// load. An update-heavy burst on a `group_ckpt` store (auto checkpoint
/// at a 64 KiB WAL threshold so several checkpoints fire within the
/// smoke window) must leave the live log smaller than the bytes
/// appended, and a reopen must replay only the post-cut suffix while
/// reproducing the live state exactly.
fn smoke_ckpt(dir: &Path) {
    let path = dir.join("kv-smoke-ckpt.wal");
    cleanup_files(&path);
    let config = KvConfig::durable(&path, SyncPolicy::GroupCommit).with_ckpt(CkptPolicy::Auto {
        wal_bytes: 64 << 10,
        wal_records: u64::MAX,
    });
    let store = Arc::new(KvStore::open(config).expect("opening store"));
    preload(&store);
    let (ops_per_sec, _) = run_cell(
        &store,
        Mix::UpdateHeavy,
        4,
        Duration::from_millis(25),
        Duration::from_millis(50),
        false,
    );
    store.sync();
    // The background trigger should have fired several times over the
    // preload alone (640 KiB of values at a 64 KiB threshold); a final
    // manual checkpoint makes the accounting deterministic regardless.
    let report = store.checkpoint().expect("manual checkpoint");
    let stats = store.ckpt_stats().expect("ckpt tier is configured");
    assert!(stats.count >= 1, "no checkpoint ever completed");
    let wal = store.wal_stats().expect("durable store has WAL stats");
    let live = wal_live_bytes(&path);
    assert!(
        live < wal.bytes,
        "checkpointing never truncated: live {live} >= appended {}",
        wal.bytes
    );
    assert!(snapshot_bytes(&path) > 0, "no published snapshot on disk");

    let live_state: BTreeMap<String, Vec<u8>> = store.dump();
    drop(store);
    let t0 = Instant::now();
    let reopened = open_store(Persistence::GroupCkpt, &path);
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    let rr = reopened
        .recovery_report()
        .expect("reopened store has a recovery report")
        .clone();
    assert!(!rr.torn(), "clean shutdown left a torn WAL");
    assert_eq!(
        rr.snapshot_cut, report.cut,
        "reopen did not use the newest snapshot"
    );
    assert!(
        rr.replayed <= wal.records.saturating_sub(rr.snapshot_cut),
        "replayed {} > records-after-cut {}",
        rr.replayed,
        wal.records.saturating_sub(rr.snapshot_cut)
    );
    assert_eq!(
        reopened.dump(),
        live_state,
        "recovered state differs from live state"
    );
    drop(reopened);
    cleanup_files(&path);
    println!(
        "ckpt smoke ok: {ops_per_sec:.0} ops/s, {} checkpoint(s), cut {}, \
         live WAL {live} of {} appended bytes, reopen replayed {} records \
         in {recovery_ms:.1} ms",
        stats.count, report.cut, wal.bytes, rr.replayed
    );
}

fn main() {
    let ms: u64 = arg_num("--ms", 200);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_kv.json".to_string());
    let dir = arg_value("--dir")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    std::fs::create_dir_all(&dir).expect("creating WAL dir");
    let stats_out = arg_value("--stats-json");
    let trace_out = arg_value("--trace-json");

    if arg_flag("--smoke") {
        if arg_flag("--ckpt") {
            smoke_ckpt(&dir);
        } else {
            smoke(&dir, arg_flag("--async"));
        }
        return;
    }

    let steady = Duration::from_millis(ms);
    let warm = Duration::from_millis((ms / 4).max(50));

    let cells: Vec<(Mix, Persistence)> = vec![
        (Mix::ReadMostly, Persistence::Group),
        (Mix::UpdateHeavy, Persistence::Volatile),
        (Mix::UpdateHeavy, Persistence::Group),
        (Mix::UpdateHeavy, Persistence::PerCommit),
        (Mix::UpdateHeavy, Persistence::GroupCkpt),
        (Mix::ScanHeavy, Persistence::Group),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (mix, persistence) in cells {
        for &threads in &THREAD_COUNTS {
            let path = dir.join(format!(
                "kv-{}-{}-{threads}.wal",
                mix.name(),
                persistence.name()
            ));
            cleanup_files(&path);
            let store = Arc::new(open_store(persistence, &path));
            // The busiest durable cell doubles as the trace capture when
            // --trace-json is given; stats snapshots need tracing too.
            let capture_trace = trace_out.is_some()
                && mix == Mix::UpdateHeavy
                && persistence == Persistence::Group
                && threads == *THREAD_COUNTS.last().unwrap();
            store
                .runtime()
                .set_tracing(stats_out.is_some() || capture_trace);
            preload(&store);
            let (ops_per_sec, steady_stats) =
                run_cell(&store, mix, threads, warm, steady, stats_out.is_some());
            let wal = store.wal_stats();
            println!(
                "{:<12} {:<9} threads={threads}  {ops_per_sec:>12.0} ops/s{}",
                mix.name(),
                persistence.name(),
                wal.as_ref().map_or_else(String::new, |w| format!(
                    "  ({} recs / {} fsyncs, coalescing {:.2})",
                    w.records,
                    w.batches,
                    w.coalescing()
                ))
            );
            if capture_trace {
                let path = trace_out.as_ref().unwrap();
                std::fs::write(path, store.runtime().take_trace().to_chrome_json())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                println!("wrote chrome trace to {path}");
            }
            let ckpt_count = store.ckpt_stats().map_or(0, |s| s.count);
            drop(store);
            // Cold-reopen cost: what this cell's files charge at restart.
            // Bounded under group_ckpt (snapshot + suffix), proportional
            // to the whole log otherwise.
            let live_bytes = wal_live_bytes(&path);
            let snap_bytes = snapshot_bytes(&path);
            let (recovery_ms, recovery_replayed) = if persistence == Persistence::Volatile {
                (0.0, 0)
            } else {
                let t0 = Instant::now();
                let reopened = open_store(persistence, &path);
                let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
                let replayed = reopened.recovery_report().map_or(0, |r| r.replayed);
                (elapsed_ms, replayed)
            };
            rows.push(Row {
                mix,
                persistence,
                threads,
                ops_per_sec,
                wal_records: wal.as_ref().map_or(0, |w| w.records),
                wal_batches: wal.as_ref().map_or(0, |w| w.batches),
                coalescing: wal.as_ref().map_or(0.0, |w| w.coalescing()),
                append_p50_ns: wal.as_ref().map_or(0, |w| w.append_ns.quantile(0.50)),
                append_p99_ns: wal.as_ref().map_or(0, |w| w.append_ns.quantile(0.99)),
                append_max_ns: wal.as_ref().map_or(0, |w| w.append_ns.max()),
                ckpt_count,
                wal_live_bytes: live_bytes,
                snapshot_bytes: snap_bytes,
                recovery_ms,
                recovery_replayed,
                steady_stats,
            });
            cleanup_files(&path);
        }
    }

    // The tracked claim: at max threads, group commit beats
    // fsync-per-commit by a wide margin on the update-heavy mix.
    let at = |p: Persistence| {
        rows.iter()
            .find(|r| {
                r.mix == Mix::UpdateHeavy
                    && r.persistence == p
                    && r.threads == *THREAD_COUNTS.last().unwrap()
            })
            .map(|r| r.ops_per_sec)
            .unwrap_or(0.0)
    };
    let speedup = at(Persistence::Group) / at(Persistence::PerCommit).max(1.0);
    println!("group-commit speedup over percommit @8t (update_heavy): {speedup:.2}x");

    let mut json = String::from("{\n  \"bench\": \"kv_store\",\n");
    json.push_str(&format!("  \"duration_ms_per_cell\": {ms},\n"));
    json.push_str(&format!("  \"keyspace\": {KEYSPACE},\n"));
    json.push_str(&format!("  \"value_len\": {VALUE_LEN},\n"));
    json.push_str(&format!(
        "  \"group_commit_speedup_at_max_threads\": {speedup:.2},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"sync\": \"{}\", \"threads\": {}, \
             \"ops_per_sec\": {:.0}, \"wal_records\": {}, \"wal_batches\": {}, \
             \"coalescing\": {:.2}, \"append_p50_ns\": {}, \"append_p99_ns\": {}, \
             \"append_max_ns\": {}, \"ckpt_count\": {}, \"wal_live_bytes\": {}, \
             \"snapshot_bytes\": {}, \"recovery_ms\": {:.2}, \
             \"recovery_replayed\": {}}}{}\n",
            r.mix.name(),
            r.persistence.name(),
            r.threads,
            r.ops_per_sec,
            r.wal_records,
            r.wal_batches,
            r.coalescing,
            r.append_p50_ns,
            r.append_p99_ns,
            r.append_max_ns,
            r.ckpt_count,
            r.wal_live_bytes,
            r.snapshot_bytes,
            r.recovery_ms,
            r.recovery_replayed,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if let Some(path) = stats_out {
        let mut sj = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                sj.push_str(",\n");
            }
            sj.push_str(&format!(
                "  {{\"workload\":\"{}\",\"sync\":\"{}\",\"threads\":{},\
                 \"ops_per_sec\":{:.0},\"steady_stats\":{}}}",
                r.mix.name(),
                r.persistence.name(),
                r.threads,
                r.ops_per_sec,
                r.steady_stats
                    .as_ref()
                    .map_or_else(|| "null".to_string(), |s| s.to_json()),
            ));
        }
        sj.push_str("\n]\n");
        std::fs::write(&path, sj).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
