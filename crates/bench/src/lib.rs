//! # ad-bench — the figure-reproduction harness
//!
//! One binary per figure of the paper (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! * `fig2 --files {1,2,4} [--keep-open]` — the transactional-I/O
//!   microbenchmark (Figures 2a–2d);
//! * `fig3a` — dedup on 1–8 threads, all seven series (Figure 3a);
//! * `fig3b` — dedup at higher thread counts, best-variant series
//!   (Figure 3b);
//! * `motivation` — the Figure 1 quiescence-stall scenario, measured.
//!
//! Criterion benches (`cargo bench -p ad-bench`) cover primitive costs and
//! the ablations DESIGN.md calls out (retry policy, quiescence,
//! HTM capacity, serialization threshold).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Duration;

use ad_dedup::backend::locks::LockBackend;
use ad_dedup::backend::tm::{TmBackend, TmFlavor};
use ad_dedup::backend::{Backend, BackendConfig, SinkTarget};
use ad_dedup::corpus::{generate, CorpusParams};
use ad_dedup::pipeline::{run_pipeline_verified, PipelineConfig};
use ad_stm::{Runtime, TmConfig};
use ad_workloads::Measurement;

/// The dedup series of Figure 3, by paper legend name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupSeries {
    /// PARSEC's pthread fine-grained locking.
    Pthread,
    /// Transactionalized baseline on STM.
    Stm,
    /// Transactionalized baseline on simulated HTM.
    Htm,
    /// STM with output deferred.
    StmDeferIo,
    /// HTM with output deferred.
    HtmDeferIo,
    /// STM with output + compression deferred.
    StmDeferAll,
    /// HTM with output + compression deferred.
    HtmDeferAll,
}

impl DedupSeries {
    /// Legend label (paper Figure 3).
    pub fn label(self) -> &'static str {
        match self {
            DedupSeries::Pthread => "Pthread",
            DedupSeries::Stm => "STM",
            DedupSeries::Htm => "HTM",
            DedupSeries::StmDeferIo => "STM+DeferIO",
            DedupSeries::HtmDeferIo => "HTM+DeferIO",
            DedupSeries::StmDeferAll => "STM+DeferAll",
            DedupSeries::HtmDeferAll => "HTM+DeferAll",
        }
    }

    /// All Figure 3a series.
    pub fn fig3a() -> [DedupSeries; 7] {
        [
            DedupSeries::Stm,
            DedupSeries::Htm,
            DedupSeries::StmDeferIo,
            DedupSeries::HtmDeferIo,
            DedupSeries::StmDeferAll,
            DedupSeries::HtmDeferAll,
            DedupSeries::Pthread,
        ]
    }

    /// Figure 3b series: baselines and "best" variants (the paper labels
    /// the DeferAll configurations `STM-Best` / `HTM-Best`).
    pub fn fig3b() -> [DedupSeries; 4] {
        [
            DedupSeries::HtmDeferAll,
            DedupSeries::StmDeferAll,
            DedupSeries::Pthread,
            DedupSeries::Stm,
        ]
    }

    /// Figure 3b uses the `-Best` naming for the DeferAll variants.
    pub fn fig3b_label(self) -> &'static str {
        match self {
            DedupSeries::StmDeferAll => "STM-Best",
            DedupSeries::HtmDeferAll => "HTM-Best",
            other => other.label(),
        }
    }

    /// Build the backend for this series.
    pub fn make_backend(
        self,
        cfg: BackendConfig,
        target: SinkTarget,
    ) -> std::io::Result<Box<dyn Backend>> {
        Ok(match self {
            DedupSeries::Pthread => Box::new(LockBackend::new(cfg, target)?),
            DedupSeries::Stm => Box::new(TmBackend::new(
                Runtime::new(TmConfig::stm()),
                TmFlavor::Baseline,
                cfg,
                target,
            )?),
            DedupSeries::Htm => Box::new(TmBackend::new(
                Runtime::new(TmConfig::htm()),
                TmFlavor::Baseline,
                cfg,
                target,
            )?),
            DedupSeries::StmDeferIo => Box::new(TmBackend::new(
                Runtime::new(TmConfig::stm()),
                TmFlavor::DeferIo,
                cfg,
                target,
            )?),
            DedupSeries::HtmDeferIo => Box::new(TmBackend::new(
                Runtime::new(TmConfig::htm()),
                TmFlavor::DeferIo,
                cfg,
                target,
            )?),
            DedupSeries::StmDeferAll => Box::new(TmBackend::new(
                Runtime::new(TmConfig::stm()),
                TmFlavor::DeferAll,
                cfg,
                target,
            )?),
            DedupSeries::HtmDeferAll => Box::new(TmBackend::new(
                Runtime::new(TmConfig::htm()),
                TmFlavor::DeferAll,
                cfg,
                target,
            )?),
        })
    }
}

/// Parameters of a dedup figure run.
#[derive(Debug, Clone)]
pub struct DedupRunParams {
    /// Corpus size in bytes.
    pub corpus_size: usize,
    /// Duplication ratio of the corpus.
    pub dup_ratio: f64,
    /// Write the archive to a real temp file (as in the paper) instead of
    /// memory.
    pub file_output: bool,
    /// Enable the observability layer (event tracing + full latency
    /// histograms) on TM backends. Costs a few percent of throughput; see
    /// OBSERVABILITY.md.
    pub obs: bool,
}

impl Default for DedupRunParams {
    fn default() -> Self {
        DedupRunParams {
            corpus_size: 4 << 20,
            dup_ratio: 0.5,
            file_output: true,
            obs: false,
        }
    }
}

/// Generate the corpus for a run (reproducible).
pub fn make_corpus(p: &DedupRunParams) -> Arc<Vec<u8>> {
    Arc::new(generate(
        &CorpusParams::new(p.corpus_size).with_dup_ratio(p.dup_ratio),
    ))
}

/// Run one (series, threads) dedup cell, verified, returning a
/// [`Measurement`] with the TM diagnostics in the note.
pub fn run_dedup_cell(
    series: DedupSeries,
    threads: usize,
    corpus: &Arc<Vec<u8>>,
    params: &DedupRunParams,
    label: &str,
) -> Measurement {
    run_dedup_cell_traced(series, threads, corpus, params, label).0
}

/// Like [`run_dedup_cell`], additionally draining the backend's event
/// timeline (for the figure bins' `--trace-json` export). The trace is
/// `None` for lock-based backends and empty unless `params.obs` enabled
/// tracing on the cell's runtime.
pub fn run_dedup_cell_traced(
    series: DedupSeries,
    threads: usize,
    corpus: &Arc<Vec<u8>>,
    params: &DedupRunParams,
    label: &str,
) -> (Measurement, Option<ad_stm::Trace>) {
    let target = if params.file_output {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "ad_bench_dedup_{}_{}_{threads}.archive",
            std::process::id(),
            series.label().replace('+', "_"),
        ));
        SinkTarget::File(path)
    } else {
        SinkTarget::Memory
    };
    let cfg = BackendConfig {
        table_capacity: (corpus.len() / 4096).max(1 << 12),
        obs: params.obs,
        ..BackendConfig::default()
    };
    let backend = series.make_backend(cfg, target).expect("backend");
    let pipe = PipelineConfig {
        threads,
        ..PipelineConfig::new(threads)
    };
    // Scale chunking to corpus size: small corpora need small chunks to
    // produce enough parallelism.
    let pipe = if corpus.len() < 2 << 20 {
        PipelineConfig {
            threads,
            ..PipelineConfig::tiny(threads)
        }
    } else {
        pipe
    };
    let report = run_pipeline_verified(corpus, &pipe, backend.as_ref());
    if let Some(path) = backend_sink_path(backend.as_ref()) {
        let _ = std::fs::remove_file(path);
    }
    let trace = backend.take_trace();
    // Attribute validation-failure hotspots: with `obs` on, summarize the
    // trace's contention report in the note, splitting failures on the
    // fingerprint table from the reorder/output conflicts.
    let contention = match &trace {
        Some(t) if params.obs => {
            let r = t.contention_report(8);
            let table_fails: u64 = r
                .entries
                .iter()
                .filter(|e| backend.is_table_var(e.var))
                .map(|e| e.fails)
                .sum();
            format!(
                " validate_fails={} fp_table_fails={table_fails}",
                r.total_fails
            )
        }
        _ => String::new(),
    };
    let m = Measurement {
        series: label.to_string(),
        threads,
        elapsed: report.elapsed,
        note: format!(
            "chunks={} unique={} ratio={:.2} {}{}",
            report.total_chunks,
            report.unique_chunks,
            report.ratio(),
            report.diagnostics,
            contention
        ),
        stats: backend.stats_report(),
    };
    (m, trace)
}

fn backend_sink_path(_b: &dyn Backend) -> Option<std::path::PathBuf> {
    // Archive files are named deterministically by run_dedup_cell; cleanup
    // happens there via the same naming scheme. (Backends do not expose
    // their sink path through the trait.)
    None
}

/// Simple CLI argument lookup: `--name value`.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Simple CLI flag lookup: `--name`.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Parse `--name value` as a number with a default.
pub fn arg_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    arg_value(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Outcome of one arm (inline or deferred) of the Figure 1 motivation
/// experiment.
#[derive(Debug, Clone)]
pub struct MotivationArm {
    /// Mean stall per unrelated transaction.
    pub mean_stall: Duration,
    /// Full observability report of the arm's runtime (histograms filled
    /// when `obs` was requested).
    pub stats: ad_stm::StatsReport,
    /// The arm's event timeline (filled when `obs` was requested; feeds
    /// the `motivation` bin's `--trace-json` export).
    pub trace: ad_stm::Trace,
}

/// The Figure 1 motivation experiment: measure how long unrelated
/// transactions stall behind one long-running transaction, with the long
/// operation inline vs atomically deferred. Returns (inline, deferred)
/// mean stall per unrelated transaction.
pub fn motivation_stalls(long_op: Duration, rounds: usize) -> (Duration, Duration) {
    let (i, d) = motivation_arms(long_op, rounds, false);
    (i.mean_stall, d.mean_stall)
}

/// Run both arms of the motivation experiment, returning the full
/// per-arm observability reports. With `obs` set, tracing is enabled on
/// each arm's runtime, so commit-latency/backoff histograms fill too (the
/// quiescence-wait histogram fills regardless).
pub fn motivation_arms(
    long_op: Duration,
    rounds: usize,
    obs: bool,
) -> (MotivationArm, MotivationArm) {
    use ad_defer::{atomic_defer, Defer};
    use ad_stm::TVar;

    fn run_one(long_op: Duration, rounds: usize, deferred: bool, obs: bool) -> MotivationArm {
        let rt = Runtime::new(TmConfig::stm());
        rt.set_tracing(obs);
        struct C {
            val: TVar<u64>,
        }
        let a = TVar::new(0u64);
        let b = TVar::new(0u64);
        let c = Defer::new(C { val: TVar::new(0) });
        let d = TVar::new(0u64);

        let mut total_stall = Duration::ZERO;
        for _ in 0..rounds {
            let barrier = std::sync::Barrier::new(3);
            std::thread::scope(|s| {
                // T1: touches A, B, C then performs the long operation on C.
                let (rt1, a1, b1, c1) = (rt.clone(), a.clone(), b.clone(), c.clone());
                let bar1 = &barrier;
                s.spawn(move || {
                    bar1.wait();
                    rt1.atomically(|tx| {
                        tx.modify(&a1, |x| x + 1)?;
                        tx.modify(&b1, |x| x + 1)?;
                        c1.with(tx, |f, tx| tx.modify(&f.val, |x| x + 1))?;
                        if deferred {
                            let c2 = c1.clone();
                            atomic_defer(tx, &[&c1.clone()], move || {
                                std::thread::sleep(long_op);
                                c2.locked().val.update_locked(|x| x + 1);
                            })
                        } else {
                            // Long operation inside the transaction — the
                            // *deliberately bad* baseline this benchmark
                            // exists to measure (paper Figure 1).
                            // ad-lint: allow(blocking-in-atomic)
                            std::thread::sleep(long_op);
                            c1.with(tx, |f, tx| tx.modify(&f.val, |x| x + 1))
                        }
                    });
                });

                // T2: conflicts on B. T3: entirely disjoint (D) but, as a
                // writer, must quiesce behind T1.
                let handles: Vec<_> = [b.clone(), d.clone()]
                    .into_iter()
                    .map(|var| {
                        let rt2 = rt.clone();
                        let bar = &barrier;
                        s.spawn(move || {
                            bar.wait();
                            // Give T1 a head start into its long operation.
                            std::thread::sleep(Duration::from_millis(1));
                            let t0 = std::time::Instant::now();
                            rt2.atomically(|tx| tx.modify(&var, |x| x + 1));
                            t0.elapsed()
                        })
                    })
                    .collect();
                for h in handles {
                    total_stall += h.join().unwrap();
                }
            });
        }
        MotivationArm {
            mean_stall: total_stall / (rounds as u32 * 2),
            stats: rt.snapshot_stats(),
            trace: rt.take_trace(),
        }
    }

    (
        run_one(long_op, rounds, false, obs),
        run_one(long_op, rounds, true, obs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_series_have_distinct_labels() {
        let labels: std::collections::HashSet<&str> =
            DedupSeries::fig3a().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn fig3b_best_labels() {
        assert_eq!(DedupSeries::StmDeferAll.fig3b_label(), "STM-Best");
        assert_eq!(DedupSeries::HtmDeferAll.fig3b_label(), "HTM-Best");
        assert_eq!(DedupSeries::Pthread.fig3b_label(), "Pthread");
    }

    #[test]
    fn dedup_cell_runs_and_verifies() {
        let params = DedupRunParams {
            corpus_size: 128 * 1024,
            dup_ratio: 0.5,
            file_output: false,
            obs: true,
        };
        let corpus = make_corpus(&params);
        for series in [DedupSeries::Pthread, DedupSeries::StmDeferAll] {
            let m = run_dedup_cell(series, 2, &corpus, &params, series.label());
            assert!(m.elapsed > Duration::ZERO);
            assert!(m.note.contains("chunks="));
            if series == DedupSeries::StmDeferAll {
                // Obs runs summarize the trace's contention report,
                // attributing validate-failures to the fingerprint table.
                assert!(
                    m.note.contains("validate_fails=") && m.note.contains("fp_table_fails="),
                    "obs note missing contention summary: {}",
                    m.note
                );
            }
        }
    }

    #[test]
    fn motivation_deferred_stalls_less() {
        let (inline_stall, deferred_stall) = motivation_stalls(Duration::from_millis(40), 3);
        assert!(
            deferred_stall < inline_stall,
            "deferral should reduce unrelated-transaction stalls: inline {inline_stall:?}, \
             deferred {deferred_stall:?}"
        );
    }
}
