//! Primitive STM operation costs: the per-transaction overhead that the
//! paper's Figure 2a attributes to `atomic_defer` "paying a constant
//! overhead per transaction to support rollback".

use ad_support::crit::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ad_stm::{Runtime, TVar, TmConfig};

fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(300))
}

fn stm_ops(c: &mut Criterion) {
    let rt = Runtime::new(TmConfig::stm());

    let v = TVar::new(0u64);
    c.bench_function("stm/read_only_tx_1var", |b| {
        b.iter(|| rt.atomically(|tx| tx.read(&v)))
    });

    c.bench_function("stm/write_tx_1var", |b| {
        b.iter(|| rt.atomically(|tx| tx.modify(&v, |x| x.wrapping_add(1))))
    });

    let vars: Vec<TVar<u64>> = (0..32).map(|_| TVar::new(0)).collect();
    c.bench_function("stm/read_only_tx_32vars", |b| {
        b.iter(|| {
            rt.atomically(|tx| {
                let mut sum = 0u64;
                for v in &vars {
                    sum = sum.wrapping_add(tx.read(v)?);
                }
                Ok(sum)
            })
        })
    });

    c.bench_function("stm/write_tx_32vars", |b| {
        b.iter(|| {
            rt.atomically(|tx| {
                for v in &vars {
                    tx.modify(v, |x| x.wrapping_add(1))?;
                }
                Ok(())
            })
        })
    });

    c.bench_function("stm/nontx_load", |b| b.iter(|| black_box(v.load())));
    c.bench_function("stm/nontx_store", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            v.store(i);
        })
    });

    // The non-transactional yardsticks.
    let m = ad_support::sync::Mutex::new(0u64);
    c.bench_function("baseline/mutex_increment", |b| {
        b.iter(|| {
            *m.lock() += 1;
        })
    });

    let rt_nq = Runtime::new(TmConfig::stm().with_quiesce(false));
    let v2 = TVar::new(0u64);
    c.bench_function("stm/write_tx_1var_noquiesce", |b| {
        b.iter(|| rt_nq.atomically(|tx| tx.modify(&v2, |x| x.wrapping_add(1))))
    });

    c.bench_function("stm/synchronized_tx", |b| {
        b.iter(|| rt.synchronized(|tx| tx.modify(&v, |x| x.wrapping_add(1))))
    });
}

criterion_group! {
    name = benches;
    config = bench_config();
    targets = stm_ops
}
criterion_main!(benches);
