//! Transaction-friendly lock costs (paper §4.2): acquire/release cycles,
//! subscription, and the comparison against an ordinary mutex.

use ad_support::crit::{criterion_group, criterion_main, Criterion};

use ad_defer::TxLock;
use ad_stm::{Runtime, TmConfig};

fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(300))
}

fn txlock(c: &mut Criterion) {
    let rt = Runtime::new(TmConfig::stm().with_quiesce(false));

    let l = TxLock::new();
    c.bench_function("txlock/acquire_release_uncontended", |b| {
        b.iter(|| {
            l.acquire_now(&rt);
            l.release_now(&rt);
        })
    });

    c.bench_function("txlock/acquire_release_one_tx", |b| {
        b.iter(|| {
            rt.atomically(|tx| {
                l.acquire(tx)?;
                l.release(tx)
            })
        })
    });

    c.bench_function("txlock/reentrant_depth4", |b| {
        b.iter(|| {
            rt.atomically(|tx| {
                for _ in 0..4 {
                    l.acquire(tx)?;
                }
                for _ in 0..4 {
                    l.release(tx)?;
                }
                Ok(())
            })
        })
    });

    c.bench_function("txlock/subscribe_unheld", |b| {
        b.iter(|| rt.atomically(|tx| l.subscribe(tx)))
    });

    let locks: Vec<TxLock> = (0..8).map(|_| TxLock::new()).collect();
    c.bench_function("txlock/acquire8_release8_one_tx", |b| {
        b.iter(|| {
            rt.atomically(|tx| {
                for l in &locks {
                    l.acquire(tx)?;
                }
                Ok(())
            });
            rt.atomically(|tx| {
                for l in &locks {
                    l.release(tx)?;
                }
                Ok(())
            });
        })
    });

    let m = ad_support::sync::Mutex::new(());
    c.bench_function("baseline/mutex_lock_unlock", |b| {
        b.iter(|| {
            drop(m.lock());
        })
    });

    c.bench_function("txlock/with_lock_critical_section", |b| {
        b.iter(|| l.with_lock(&rt, || std::hint::black_box(1 + 1)))
    });
}

criterion_group! {
    name = benches;
    config = bench_config();
    targets = txlock
}
criterion_main!(benches);
