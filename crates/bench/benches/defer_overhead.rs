//! The cost of atomic deferral itself — Figure 2a's single-threaded story:
//! "atomic_defer pays a constant overhead per transaction to support
//! rollback, even though no rollbacks occur", vs irrevocability which
//! "serializes early, avoids instrumentation".

use ad_support::crit::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ad_defer::{atomic_defer, atomic_defer_unordered, Defer};
use ad_stm::{Runtime, TVar, TmConfig};

fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(300))
}

struct Obj {
    x: TVar<u64>,
}

fn defer_overhead(c: &mut Criterion) {
    let rt = Runtime::new(TmConfig::stm());
    let counter = Arc::new(AtomicU64::new(0));

    let v = TVar::new(0u64);
    c.bench_function("defer/plain_tx_no_defer", |b| {
        b.iter(|| rt.atomically(|tx| tx.modify(&v, |x| x.wrapping_add(1))))
    });

    let obj = Defer::new(Obj { x: TVar::new(0) });
    let cnt = Arc::clone(&counter);
    c.bench_function("defer/tx_with_atomic_defer", |b| {
        b.iter(|| {
            let obj2 = obj.clone();
            let cnt2 = Arc::clone(&cnt);
            rt.atomically(move |tx| {
                obj2.with(tx, |o, tx| tx.modify(&o.x, |x| x.wrapping_add(1)))?;
                let cnt3 = Arc::clone(&cnt2);
                atomic_defer(tx, &[&obj2.clone()], move || {
                    cnt3.fetch_add(1, Ordering::Relaxed);
                })
            })
        })
    });

    let cnt = Arc::clone(&counter);
    c.bench_function("defer/tx_with_unordered_defer", |b| {
        b.iter(|| {
            let cnt2 = Arc::clone(&cnt);
            rt.atomically(move |tx| {
                let cnt3 = Arc::clone(&cnt2);
                atomic_defer_unordered(tx, move || {
                    cnt3.fetch_add(1, Ordering::Relaxed);
                })
            })
        })
    });

    let cnt = Arc::clone(&counter);
    c.bench_function("defer/synchronized_equivalent", |b| {
        b.iter(|| {
            rt.synchronized(|tx| {
                tx.modify(&v, |x| x.wrapping_add(1))?;
                cnt.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
        })
    });

    // Deferral with two objects (the Listing 4 durable-output shape).
    let a = Defer::new(Obj { x: TVar::new(0) });
    let bb = Defer::new(Obj { x: TVar::new(0) });
    c.bench_function("defer/tx_with_two_object_defer", |b| {
        b.iter(|| {
            let (a2, b2) = (a.clone(), bb.clone());
            rt.atomically(move |tx| {
                let (a3, b3) = (a2.clone(), b2.clone());
                atomic_defer(tx, &[&a2.clone(), &b2.clone()], move || {
                    a3.locked().x.update_locked(|x| x.wrapping_add(1));
                    b3.locked().x.update_locked(|x| x.wrapping_add(1));
                })
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = bench_config();
    targets = defer_overhead
}
criterion_main!(benches);
