//! Small-corpus dedup pipeline across backends — the criterion-tracked
//! miniature of Figure 3 (the full sweeps live in the `fig3a`/`fig3b`
//! binaries).

use ad_support::crit::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use ad_bench::DedupSeries;
use ad_dedup::backend::{BackendConfig, SinkTarget};
use ad_dedup::corpus::{generate, CorpusParams};
use ad_dedup::pipeline::{run_pipeline, PipelineConfig};

fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}

fn dedup_small(c: &mut Criterion) {
    let corpus = Arc::new(generate(&CorpusParams::new(256 * 1024)));
    let mut group = c.benchmark_group("dedup_256KiB");

    for series in [
        DedupSeries::Pthread,
        DedupSeries::Stm,
        DedupSeries::StmDeferIo,
        DedupSeries::StmDeferAll,
        DedupSeries::Htm,
        DedupSeries::HtmDeferAll,
    ] {
        for threads in [1usize, 2] {
            group.bench_function(format!("{}_{}t", series.label(), threads), |b| {
                b.iter(|| {
                    let backend = series
                        .make_backend(BackendConfig::default(), SinkTarget::Memory)
                        .unwrap();
                    run_pipeline(&corpus, &PipelineConfig::tiny(threads), backend.as_ref())
                })
            });
        }
    }
    group.finish();

    // Substrate costs for context: chunking, hashing, compression.
    c.bench_function("substrate/chunking_256KiB", |b| {
        b.iter(|| ad_dedup::rabin::chunk_boundaries(&corpus, ad_dedup::rabin::ChunkParams::tiny()))
    });
    c.bench_function("substrate/sha256_64KiB", |b| {
        b.iter(|| ad_dedup::sha256::sha256(&corpus[..64 * 1024]))
    });
    c.bench_function("substrate/lzss_compress_64KiB", |b| {
        b.iter(|| ad_dedup::lzss::compress(&corpus[..64 * 1024]))
    });
}

criterion_group! {
    name = benches;
    config = bench_config();
    targets = dedup_small
}
criterion_main!(benches);
