//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **retry policy** — the paper's spin-and-re-execute retry vs the
//!   parking retry it wishes the TMTS provided (§6.1 attributes Figure 2's
//!   defer overhead partly to spin retry);
//! * **quiescence** — the cost Figure 1 is about;
//! * **serialization threshold** — GCC's serialize-after-N contention
//!   policy (cf. Diegues et al. [4]);
//! * **HTM capacity** — where the capacity cliff sits for footprint-heavy
//!   transactions.

use ad_support::crit::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ad_stm::{RetryPolicy, Runtime, TVar, TmConfig};

fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(900))
        .warm_up_time(std::time::Duration::from_millis(300))
}

/// Ping-pong between two threads through a TVar, so every transaction
/// blocks in `retry` once per round: measures the retry wake-up path.
fn retry_policy_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_retry");
    for (name, policy) in [("spin", RetryPolicy::Spin), ("park", RetryPolicy::Park)] {
        group.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let rt = Runtime::new(TmConfig::stm().with_retry_policy(policy));
                let token = TVar::new(0u8); // 0 = ping's turn, 1 = pong's turn
                let stop = Arc::new(AtomicBool::new(false));

                let rt2 = rt.clone();
                let token2 = token.clone();
                let stop2 = Arc::clone(&stop);
                let pong = std::thread::spawn(move || {
                    while !stop2.load(Ordering::Relaxed) {
                        rt2.atomically(|tx| {
                            if tx.read(&token2)? != 1 {
                                return tx.retry();
                            }
                            tx.write(&token2, 0)
                        });
                    }
                });

                let start = std::time::Instant::now();
                for _ in 0..iters {
                    rt.atomically(|tx| {
                        if tx.read(&token)? != 0 {
                            return tx.retry();
                        }
                        tx.write(&token, 1)
                    });
                }
                let elapsed = start.elapsed();
                stop.store(true, Ordering::Relaxed);
                // Unblock pong if it is waiting for its turn.
                token.store(1);
                pong.join().unwrap();
                elapsed
            })
        });
    }
    group.finish();
}

/// One writer committing while a second thread runs longish read
/// transactions: quiescence forces the writer to wait.
fn quiescence_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_quiesce");
    for (name, quiesce) in [("on", true), ("off", false)] {
        group.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let rt = Runtime::new(TmConfig::stm().with_quiesce(quiesce));
                let data: Vec<TVar<u64>> = (0..256).map(|_| TVar::new(0)).collect();
                let unrelated = TVar::new(0u64);
                let stop = Arc::new(AtomicBool::new(false));

                let rt2 = rt.clone();
                let data2 = data.clone();
                let stop2 = Arc::clone(&stop);
                let reader = std::thread::spawn(move || {
                    while !stop2.load(Ordering::Relaxed) {
                        rt2.atomically(|tx| {
                            let mut s = 0u64;
                            for v in &data2 {
                                s = s.wrapping_add(tx.read(v)?);
                            }
                            Ok(s)
                        });
                    }
                });

                let start = std::time::Instant::now();
                for _ in 0..iters {
                    rt.atomically(|tx| tx.modify(&unrelated, |x| x + 1));
                }
                let elapsed = start.elapsed();
                stop.store(true, Ordering::Relaxed);
                reader.join().unwrap();
                elapsed
            })
        });
    }
    group.finish();
}

/// A conflict-heavy counter under different serialize-after thresholds.
fn serialize_threshold_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_serialize_after");
    for threshold in [2u32, 10, 100] {
        group.bench_function(format!("after_{threshold}"), |b| {
            b.iter_custom(|iters| {
                let rt = Runtime::new(
                    TmConfig::stm()
                        .with_serialize_after(threshold)
                        .with_quiesce(false),
                );
                let hot = TVar::new(0u64);
                let stop = Arc::new(AtomicBool::new(false));

                let mut contenders = Vec::new();
                for _ in 0..2 {
                    let rt2 = rt.clone();
                    let hot2 = hot.clone();
                    let stop2 = Arc::clone(&stop);
                    contenders.push(std::thread::spawn(move || {
                        while !stop2.load(Ordering::Relaxed) {
                            rt2.atomically(|tx| tx.modify(&hot2, |x| x.wrapping_add(1)));
                        }
                    }));
                }

                let start = std::time::Instant::now();
                for _ in 0..iters {
                    rt.atomically(|tx| tx.modify(&hot, |x| x.wrapping_add(1)));
                }
                let elapsed = start.elapsed();
                stop.store(true, Ordering::Relaxed);
                for h in contenders {
                    h.join().unwrap();
                }
                elapsed
            })
        });
    }
    group.finish();
}

/// Footprint transactions around the simulated-HTM capacity cliff.
fn htm_capacity_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_htm_capacity");
    for footprint_kb in [8u64, 16, 31, 33, 64] {
        group.bench_function(format!("footprint_{footprint_kb}KiB"), |b| {
            let rt = Runtime::new(TmConfig::htm()); // 32 KiB capacity
            let v = TVar::new(0u64);
            b.iter(|| {
                rt.atomically(|tx| {
                    tx.account_footprint(footprint_kb * 1024)?;
                    tx.modify(&v, |x| x.wrapping_add(1))
                })
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench_config();
    targets = retry_policy_ablation, quiescence_ablation, serialize_threshold_ablation, htm_capacity_ablation
}
criterion_main!(benches);
