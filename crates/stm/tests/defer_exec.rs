//! Executor-subsystem plumbing tests: batch hand-off to the pool, the
//! drain API, offload counters/events, and the per-transaction batch
//! token. (Lock-holding semantics across the hand-off live in `ad-defer`,
//! which owns the locks.)

#![cfg(not(loom))]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use ad_stm::{DeferExecCfg, EventKind, Runtime, TVar, TmConfig};

fn pool_rt() -> Runtime {
    Runtime::new(TmConfig::stm().with_defer_pool(2, 16))
}

#[test]
fn pool_runs_every_deferred_action() {
    let rt = pool_rt();
    let ran = Arc::new(AtomicUsize::new(0));
    for _ in 0..50 {
        let ran = Arc::clone(&ran);
        rt.atomically(move |tx| {
            let ran = Arc::clone(&ran);
            tx.defer_post_commit(Box::new(move |_rt| {
                ran.fetch_add(1, Ordering::Relaxed);
            }));
            Ok(())
        });
    }
    rt.drain_deferred();
    assert_eq!(ran.load(Ordering::Relaxed), 50);
    // A fast committer can momentarily fill the queue, diverting some
    // batches to the inline fallback; each batch is accounted exactly once.
    let stats = rt.stats();
    assert_eq!(stats.defer_offloads + stats.defer_inline_fallbacks, 50);
    assert!(stats.defer_offloads > 0, "an idle pool accepts submissions");
    assert_eq!(stats.deferred_ops, 50);
}

#[test]
fn inline_executor_never_offloads() {
    let rt = Runtime::new(TmConfig::stm());
    let ran = Arc::new(AtomicUsize::new(0));
    let r2 = Arc::clone(&ran);
    rt.atomically(move |tx| {
        let r2 = Arc::clone(&r2);
        tx.defer_post_commit(Box::new(move |_rt| {
            r2.fetch_add(1, Ordering::Relaxed);
        }));
        Ok(())
    });
    // Inline: the op already ran when atomically returned.
    assert_eq!(ran.load(Ordering::Relaxed), 1);
    assert_eq!(rt.stats().defer_offloads, 0);
    assert_eq!(rt.deferred_pending(), 0);
    rt.drain_deferred(); // no-op, must not block
}

#[test]
fn pool_ops_of_one_txn_run_in_call_order() {
    let rt = pool_rt();
    let order = Arc::new(std::sync::Mutex::new(Vec::new()));
    let o2 = Arc::clone(&order);
    rt.atomically(move |tx| {
        for i in 0..5 {
            let o = Arc::clone(&o2);
            tx.defer_post_commit(Box::new(move |_rt| {
                o.lock().unwrap().push(i);
            }));
        }
        Ok(())
    });
    rt.drain_deferred();
    assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
}

#[test]
fn pool_worker_ops_may_start_transactions() {
    let rt = pool_rt();
    let v = TVar::new(0u32);
    let v2 = v.clone();
    rt.atomically(move |tx| {
        let v2 = v2.clone();
        tx.defer_post_commit(Box::new(move |rt| {
            // The worker thread has no transaction in flight, so a deferred
            // op can run follow-up transactions — the same guarantee the
            // inline executor gives.
            rt.atomically(|tx| tx.write(&v2, 7));
        }));
        Ok(())
    });
    rt.drain_deferred();
    assert_eq!(v.load(), 7);
}

#[test]
fn pool_emits_offload_events_and_queue_wait_histogram() {
    let rt = pool_rt();
    rt.set_tracing(true);
    for _ in 0..10 {
        rt.atomically(|tx| {
            tx.defer_post_commit(Box::new(|_rt| {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }));
            Ok(())
        });
    }
    rt.drain_deferred();
    let trace = rt.take_trace();
    let offloads = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::DeferOffload)
        .count();
    assert_eq!(offloads, 10, "one defer_offload event per batch");
    let report = rt.snapshot_stats();
    assert_eq!(report.defer_queue_wait_ns.count(), 10);
    assert!(report.to_json().contains("\"defer_queue_wait_ns\""));
}

#[test]
fn inline_keeps_queue_wait_histogram_empty() {
    let rt = Runtime::new(TmConfig::stm());
    rt.set_tracing(true);
    rt.atomically(|tx| {
        tx.defer_post_commit(Box::new(|_rt| {}));
        Ok(())
    });
    assert_eq!(rt.snapshot_stats().defer_queue_wait_ns.count(), 0);
}

#[test]
fn batch_token_inline_is_none() {
    let rt = Runtime::new(TmConfig::stm());
    rt.atomically(|tx| {
        assert_eq!(tx.defer_batch_token(), None);
        Ok(())
    });
}

#[test]
fn batch_token_pool_is_stable_within_a_txn_and_unique_across() {
    let rt = pool_rt();
    let first = Arc::new(AtomicU64::new(0));
    let f2 = Arc::clone(&first);
    rt.atomically(move |tx| {
        let a = tx.defer_batch_token().expect("pool mode has a token");
        let b = tx.defer_batch_token().unwrap();
        assert_eq!(a, b, "both defers of one txn share the batch token");
        f2.store(a, Ordering::Relaxed);
        Ok(())
    });
    rt.atomically(move |tx| {
        let c = tx.defer_batch_token().unwrap();
        assert_ne!(
            c,
            first.load(Ordering::Relaxed),
            "distinct transactions get distinct batch tokens"
        );
        Ok(())
    });
}

#[test]
fn pool_backpressure_falls_back_to_inline() {
    // 1 worker, queue of 1: the worker sleeps 2ms per batch while commits
    // arrive back-to-back, so the queue fills after two offloads and later
    // batches must take the inline-fallback path instead of blocking the
    // committer. Every batch still runs exactly once, wherever it ran.
    let rt = Runtime::new(TmConfig::stm().with_defer_exec(DeferExecCfg::Pool {
        workers: 1,
        queue_cap: 1,
    }));
    let ran = Arc::new(AtomicUsize::new(0));
    for _ in 0..8 {
        let ran = Arc::clone(&ran);
        rt.atomically(move |tx| {
            let ran = Arc::clone(&ran);
            tx.defer_post_commit(Box::new(move |_rt| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                ran.fetch_add(1, Ordering::Relaxed);
            }));
            Ok(())
        });
    }
    rt.drain_deferred();
    assert_eq!(ran.load(Ordering::Relaxed), 8);
    let stats = rt.stats();
    assert_eq!(
        stats.defer_offloads + stats.defer_inline_fallbacks,
        8,
        "every batch either offloaded or fell back"
    );
    assert!(
        stats.defer_inline_fallbacks >= 1,
        "a full queue must divert batches inline (offloads={} fallbacks={})",
        stats.defer_offloads,
        stats.defer_inline_fallbacks
    );
}

#[test]
fn dropping_runtime_loses_no_batches() {
    // Dropping the caller's handle does not synchronously drain — each
    // queued batch holds a `Runtime` clone, so the runtime (and its pool)
    // stays alive until the last batch completes on a worker. The
    // guarantee is that nothing queued is ever lost.
    let ran = Arc::new(AtomicUsize::new(0));
    {
        let rt = pool_rt();
        for _ in 0..16 {
            let ran = Arc::clone(&ran);
            rt.atomically(move |tx| {
                let ran = Arc::clone(&ran);
                tx.defer_post_commit(Box::new(move |_rt| {
                    ran.fetch_add(1, Ordering::Relaxed);
                }));
                Ok(())
            });
        }
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while ran.load(Ordering::Relaxed) < 16 {
        assert!(
            std::time::Instant::now() < deadline,
            "queued batches lost after runtime drop: {}/16",
            ran.load(Ordering::Relaxed)
        );
        std::thread::yield_now();
    }
}
