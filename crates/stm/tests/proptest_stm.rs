//! Property-based tests: random transactional programs must behave like
//! their sequential interpretation.

use proptest::prelude::*;

use ad_stm::{Runtime, TVar, TmConfig};

/// A tiny straight-line transactional program over a fixed set of cells.
#[derive(Debug, Clone)]
enum Op {
    /// cells[dst] = cells[src] + k
    AddFrom { src: usize, dst: usize, k: i64 },
    /// cells[dst] = k
    Set { dst: usize, k: i64 },
    /// cells[dst] = cells[a] * cells[b] (mod small prime to stay bounded)
    MulInto { a: usize, b: usize, dst: usize },
}

const CELLS: usize = 6;
const PRIME: i64 = 1_000_003;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..CELLS, 0..CELLS, -100i64..100).prop_map(|(src, dst, k)| Op::AddFrom { src, dst, k }),
        (0..CELLS, -100i64..100).prop_map(|(dst, k)| Op::Set { dst, k }),
        (0..CELLS, 0..CELLS, 0..CELLS).prop_map(|(a, b, dst)| Op::MulInto { a, b, dst }),
    ]
}

fn run_sequential(ops: &[Op], cells: &mut [i64; CELLS]) {
    for op in ops {
        match *op {
            Op::AddFrom { src, dst, k } => cells[dst] = (cells[src] + k) % PRIME,
            Op::Set { dst, k } => cells[dst] = k % PRIME,
            Op::MulInto { a, b, dst } => cells[dst] = (cells[a] * cells[b]) % PRIME,
        }
    }
}

fn run_transactional(rt: &Runtime, ops: &[Op], vars: &[TVar<i64>]) {
    rt.atomically(|tx| {
        for op in ops {
            match *op {
                Op::AddFrom { src, dst, k } => {
                    let v = tx.read(&vars[src])?;
                    tx.write(&vars[dst], (v + k) % PRIME)?;
                }
                Op::Set { dst, k } => {
                    tx.write(&vars[dst], k % PRIME)?;
                }
                Op::MulInto { a, b, dst } => {
                    let x = tx.read(&vars[a])?;
                    let y = tx.read(&vars[b])?;
                    tx.write(&vars[dst], (x * y) % PRIME)?;
                }
            }
        }
        Ok(())
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single transaction executing a random program leaves the cells in
    /// exactly the state the sequential interpretation predicts.
    #[test]
    fn single_transaction_matches_sequential(
        ops in prop::collection::vec(op_strategy(), 0..40),
        init in prop::array::uniform6(-100i64..100),
    ) {
        let rt = Runtime::new(TmConfig::stm());
        let vars: Vec<TVar<i64>> = init.iter().map(|&v| TVar::new(v)).collect();
        let mut expected = init;
        run_sequential(&ops, &mut expected);
        run_transactional(&rt, &ops, &vars);
        let got: Vec<i64> = vars.iter().map(|v| v.load()).collect();
        prop_assert_eq!(got, expected.to_vec());
    }

    /// Concurrent random programs serialize: the final state must equal the
    /// sequential execution of the programs in *some* order. We verify a
    /// weaker but order-independent invariant: executing the observed
    /// commit order sequentially reproduces the final state. Since we
    /// cannot observe commit order directly, we instead check a
    /// commutative workload: concurrent additive programs whose net effect
    /// is order-independent.
    #[test]
    fn concurrent_additive_programs_sum_correctly(
        deltas in prop::collection::vec(prop::collection::vec(-50i64..50, 1..20), 2..5),
    ) {
        let rt = Runtime::new(TmConfig::stm());
        let cell = TVar::new(0i64);
        let expected: i64 = deltas.iter().flatten().sum();
        std::thread::scope(|s| {
            for program in &deltas {
                let rt = rt.clone();
                let cell = cell.clone();
                s.spawn(move || {
                    for &d in program {
                        rt.atomically(|tx| tx.modify(&cell, |x| x + d));
                    }
                });
            }
        });
        prop_assert_eq!(cell.load(), expected);
    }

    /// HTM-sim with arbitrary capacity always completes (via fallback) and
    /// computes the same result as STM.
    #[test]
    fn htm_any_capacity_matches_sequential(
        ops in prop::collection::vec(op_strategy(), 0..30),
        capacity in 1u64..2048,
    ) {
        let rt = Runtime::new(TmConfig::htm().with_htm_capacity(capacity));
        let init = [1i64, 2, 3, 4, 5, 6];
        let vars: Vec<TVar<i64>> = init.iter().map(|&v| TVar::new(v)).collect();
        let mut expected = init;
        run_sequential(&ops, &mut expected);
        run_transactional(&rt, &ops, &vars);
        let got: Vec<i64> = vars.iter().map(|v| v.load()).collect();
        prop_assert_eq!(got, expected.to_vec());
    }

    /// Nontransactional load/store on a single var is linearizable with
    /// transactional increments: total equals the sum of both kinds.
    #[test]
    fn mixed_access_single_var_counts(
        tx_incs in 1usize..200,
    ) {
        let rt = Runtime::new(TmConfig::stm());
        let cell = TVar::new(0i64);
        for _ in 0..tx_incs {
            rt.atomically(|tx| tx.modify(&cell, |x| x + 1));
        }
        prop_assert_eq!(cell.load(), tx_incs as i64);
    }
}
