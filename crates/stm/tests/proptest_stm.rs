#![cfg(not(loom))]

//! Property-based tests: random transactional programs must behave like
//! their sequential interpretation.
//!
//! Implemented as seeded randomized tests over `ad_support::prng` (the
//! `proptest` crate is unavailable offline); each property runs a fixed
//! number of independently seeded cases, so failures are reproducible from
//! the printed seed.

use ad_support::prng::Rng;

use ad_stm::{Runtime, TVar, TmConfig};

/// A tiny straight-line transactional program over a fixed set of cells.
#[derive(Debug, Clone)]
enum Op {
    /// cells[dst] = cells[src] + k
    AddFrom { src: usize, dst: usize, k: i64 },
    /// cells[dst] = k
    Set { dst: usize, k: i64 },
    /// cells[dst] = cells[a] * cells[b] (mod small prime to stay bounded)
    MulInto { a: usize, b: usize, dst: usize },
}

const CELLS: usize = 6;
const PRIME: i64 = 1_000_003;

fn random_op(rng: &mut Rng) -> Op {
    match rng.random_range(0..3) {
        0 => Op::AddFrom {
            src: rng.random_range(0..CELLS),
            dst: rng.random_range(0..CELLS),
            k: rng.random_range_i64(-100..100),
        },
        1 => Op::Set {
            dst: rng.random_range(0..CELLS),
            k: rng.random_range_i64(-100..100),
        },
        _ => Op::MulInto {
            a: rng.random_range(0..CELLS),
            b: rng.random_range(0..CELLS),
            dst: rng.random_range(0..CELLS),
        },
    }
}

fn random_program(rng: &mut Rng, max_len: usize) -> Vec<Op> {
    let len = rng.random_range(0..max_len);
    (0..len).map(|_| random_op(rng)).collect()
}

fn run_sequential(ops: &[Op], cells: &mut [i64; CELLS]) {
    for op in ops {
        match *op {
            Op::AddFrom { src, dst, k } => cells[dst] = (cells[src] + k) % PRIME,
            Op::Set { dst, k } => cells[dst] = k % PRIME,
            Op::MulInto { a, b, dst } => cells[dst] = (cells[a] * cells[b]) % PRIME,
        }
    }
}

fn run_transactional(rt: &Runtime, ops: &[Op], vars: &[TVar<i64>]) {
    rt.atomically(|tx| {
        for op in ops {
            match *op {
                Op::AddFrom { src, dst, k } => {
                    let v = tx.read(&vars[src])?;
                    tx.write(&vars[dst], (v + k) % PRIME)?;
                }
                Op::Set { dst, k } => {
                    tx.write(&vars[dst], k % PRIME)?;
                }
                Op::MulInto { a, b, dst } => {
                    let x = tx.read(&vars[a])?;
                    let y = tx.read(&vars[b])?;
                    tx.write(&vars[dst], (x * y) % PRIME)?;
                }
            }
        }
        Ok(())
    });
}

/// A single transaction executing a random program leaves the cells in
/// exactly the state the sequential interpretation predicts.
#[test]
fn single_transaction_matches_sequential() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0x51_0001 + case);
        let ops = random_program(&mut rng, 40);
        let mut init = [0i64; CELLS];
        for c in &mut init {
            *c = rng.random_range_i64(-100..100);
        }
        let rt = Runtime::new(TmConfig::stm());
        let vars: Vec<TVar<i64>> = init.iter().map(|&v| TVar::new(v)).collect();
        let mut expected = init;
        run_sequential(&ops, &mut expected);
        run_transactional(&rt, &ops, &vars);
        let got: Vec<i64> = vars.iter().map(|v| v.load()).collect();
        assert_eq!(got, expected.to_vec(), "seed case {case}");
    }
}

/// Concurrent additive programs serialize: the final state must equal the
/// net sum, independent of interleaving.
#[test]
fn concurrent_additive_programs_sum_correctly() {
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0x51_0002 + case);
        let n_programs = rng.random_range(2..5);
        let deltas: Vec<Vec<i64>> = (0..n_programs)
            .map(|_| {
                let len = rng.random_range(1..20);
                (0..len).map(|_| rng.random_range_i64(-50..50)).collect()
            })
            .collect();
        let rt = Runtime::new(TmConfig::stm());
        let cell = TVar::new(0i64);
        let expected: i64 = deltas.iter().flatten().sum();
        std::thread::scope(|s| {
            for program in &deltas {
                let rt = rt.clone();
                let cell = cell.clone();
                s.spawn(move || {
                    for &d in program {
                        rt.atomically(|tx| tx.modify(&cell, |x| x + d));
                    }
                });
            }
        });
        assert_eq!(cell.load(), expected, "seed case {case}");
    }
}

/// HTM-sim with arbitrary capacity always completes (via fallback) and
/// computes the same result as STM.
#[test]
fn htm_any_capacity_matches_sequential() {
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0x51_0003 + case);
        let ops = random_program(&mut rng, 30);
        let capacity = rng.random_range(1..2048) as u64;
        let rt = Runtime::new(TmConfig::htm().with_htm_capacity(capacity));
        let init = [1i64, 2, 3, 4, 5, 6];
        let vars: Vec<TVar<i64>> = init.iter().map(|&v| TVar::new(v)).collect();
        let mut expected = init;
        run_sequential(&ops, &mut expected);
        run_transactional(&rt, &ops, &vars);
        let got: Vec<i64> = vars.iter().map(|v| v.load()).collect();
        assert_eq!(
            got,
            expected.to_vec(),
            "seed case {case} capacity {capacity}"
        );
    }
}

/// Nontransactional load/store on a single var is linearizable with
/// transactional increments: total equals the sum of both kinds.
#[test]
fn mixed_access_single_var_counts() {
    for case in 0..8u64 {
        let mut rng = Rng::seed_from_u64(0x51_0004 + case);
        let tx_incs = rng.random_range(1..200);
        let rt = Runtime::new(TmConfig::stm());
        let cell = TVar::new(0i64);
        for _ in 0..tx_incs {
            rt.atomically(|tx| tx.modify(&cell, |x| x + 1));
        }
        assert_eq!(cell.load(), tx_incs as i64, "seed case {case}");
    }
}
