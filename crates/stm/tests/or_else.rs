#![cfg(not(loom))]

//! Tests for the `orElse` combinator (Harris et al.): alternative blocking
//! branches inside one transaction.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ad_stm::{atomically, Runtime, StmError, TVar, TmConfig};

#[test]
fn first_branch_wins_when_it_succeeds() {
    let v = TVar::new(1u32);
    let got = atomically(|tx| {
        let v = v.clone();
        tx.or_else(move |tx| tx.read(&v), |_tx| Ok(99))
    });
    assert_eq!(got, 1);
}

#[test]
fn second_branch_runs_when_first_retries() {
    let a: TVar<Option<u32>> = TVar::new(None);
    let b: TVar<Option<u32>> = TVar::new(Some(7));
    let got = atomically(|tx| {
        let (a, b) = (a.clone(), b.clone());
        tx.or_else(
            move |tx| match tx.read(&a)? {
                Some(x) => Ok(x),
                None => tx.retry(),
            },
            move |tx| match tx.read(&b)? {
                Some(x) => Ok(x),
                None => tx.retry(),
            },
        )
    });
    assert_eq!(got, 7);
}

#[test]
fn first_branch_writes_are_discarded_on_retry() {
    let side = TVar::new(0u32);
    let picked = atomically(|tx| {
        let side = side.clone();
        tx.or_else(
            move |tx| {
                tx.write(&side, 111)?; // must evaporate
                tx.retry::<&str>()
            },
            |_tx| Ok("second"),
        )
    });
    assert_eq!(picked, "second");
    assert_eq!(side.load(), 0, "abandoned branch's write leaked");
}

#[test]
fn first_branch_deferred_actions_are_discarded() {
    let rt = Runtime::new(TmConfig::stm());
    let ran_first = Arc::new(AtomicBool::new(false));
    let ran_second = Arc::new(AtomicBool::new(false));
    let (r1, r2) = (Arc::clone(&ran_first), Arc::clone(&ran_second));
    rt.atomically(move |tx| {
        let (r1, r2) = (Arc::clone(&r1), Arc::clone(&r2));
        tx.or_else(
            move |tx| {
                let r1 = Arc::clone(&r1);
                tx.defer_post_commit(Box::new(move |_| r1.store(true, Ordering::Relaxed)));
                tx.retry::<()>()
            },
            move |tx| {
                let r2 = Arc::clone(&r2);
                tx.defer_post_commit(Box::new(move |_| r2.store(true, Ordering::Relaxed)));
                Ok(())
            },
        )
    });
    assert!(
        !ran_first.load(Ordering::Relaxed),
        "abandoned deferred action ran"
    );
    assert!(ran_second.load(Ordering::Relaxed));
}

#[test]
fn waits_on_union_of_both_branches() {
    // Both branches retry; waking either variable must unblock the
    // transaction.
    for wake_first in [true, false] {
        let a: TVar<Option<u32>> = TVar::new(None);
        let b: TVar<Option<u32>> = TVar::new(None);
        let (a2, b2) = (a.clone(), b.clone());
        let waiter = thread::spawn(move || {
            atomically(|tx| {
                let (a, b) = (a2.clone(), b2.clone());
                tx.or_else(
                    move |tx| match tx.read(&a)? {
                        Some(x) => Ok(("a", x)),
                        None => tx.retry(),
                    },
                    move |tx| match tx.read(&b)? {
                        Some(x) => Ok(("b", x)),
                        None => tx.retry(),
                    },
                )
            })
        });
        thread::sleep(Duration::from_millis(30));
        if wake_first {
            atomically(|tx| tx.write(&a, Some(1)));
            assert_eq!(waiter.join().unwrap(), ("a", 1));
        } else {
            atomically(|tx| tx.write(&b, Some(2)));
            assert_eq!(waiter.join().unwrap(), ("b", 2));
        }
    }
}

#[test]
fn nested_or_else() {
    let got = atomically(|tx| {
        tx.or_else(
            |tx| tx.or_else(|tx| tx.retry::<u32>(), |tx| tx.retry::<u32>()),
            |_tx| Ok(42u32),
        )
    });
    assert_eq!(got, 42);
}

#[test]
fn first_branch_conflict_is_not_caught() {
    // or_else only catches Retry; a Conflict propagates and re-executes the
    // whole transaction.
    let attempts = Arc::new(AtomicBool::new(true));
    let a2 = Arc::clone(&attempts);
    let got = atomically(move |tx| {
        let first_attempt = a2.swap(false, Ordering::Relaxed);
        tx.or_else(
            move |_tx| {
                if first_attempt {
                    Err(StmError::Conflict)
                } else {
                    Ok("retried whole tx")
                }
            },
            |_tx| Ok("second branch"),
        )
    });
    assert_eq!(got, "retried whole tx");
}

#[test]
fn or_else_in_serial_mode_without_prior_writes() {
    let rt = Runtime::new(TmConfig::stm());
    let v = TVar::new(5u32);
    let got = rt.synchronized(|tx| {
        let v = v.clone();
        tx.or_else(move |tx| tx.retry::<u32>(), move |tx| tx.read(&v))
    });
    assert_eq!(got, 5);
}

#[test]
fn or_else_read_your_writes_across_branches() {
    // A write before or_else is visible inside both branches.
    let v = TVar::new(0u32);
    let got = atomically(|tx| {
        tx.write(&v, 10)?;
        let v = v.clone();
        tx.or_else(
            move |tx| {
                let x = tx.read(&v)?;
                if x == 10 {
                    Ok(x)
                } else {
                    tx.retry()
                }
            },
            |_tx| Ok(0),
        )
    });
    assert_eq!(got, 10);
    assert_eq!(v.load(), 10);
}
