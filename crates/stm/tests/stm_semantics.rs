#![cfg(not(loom))]

//! Semantic tests for the STM engine: atomicity, isolation, opacity,
//! retry, irrevocability, contention management, and post-commit hooks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ad_stm::{atomically, Runtime, StmError, TVar, TmConfig};

#[test]
fn transaction_returns_closure_result() {
    let v = TVar::new(5u32);
    let doubled = atomically(|tx| {
        let x = tx.read(&v)?;
        Ok(x * 2)
    });
    assert_eq!(doubled, 10);
}

#[test]
fn writes_are_invisible_until_commit() {
    let v = TVar::new(0u32);
    let observed_mid_tx = Arc::new(AtomicU64::new(u64::MAX));
    let gate_in = Arc::new(AtomicBool::new(false));
    let gate_out = Arc::new(AtomicBool::new(false));

    let v2 = v.clone();
    let (obs, gi, go) = (
        Arc::clone(&observed_mid_tx),
        Arc::clone(&gate_in),
        Arc::clone(&gate_out),
    );
    let observer = thread::spawn(move || {
        while !gi.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        obs.store(v2.load() as u64, Ordering::Release);
        go.store(true, Ordering::Release);
    });

    atomically(|tx| {
        tx.write(&v, 99)?;
        // Signal the observer after buffering the write, and wait for it to
        // look. It must still see 0.
        gate_in.store(true, Ordering::Release);
        while !gate_out.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        Ok(())
    });

    observer.join().unwrap();
    assert_eq!(observed_mid_tx.load(Ordering::Acquire), 0);
    assert_eq!(v.load(), 99);
}

#[test]
fn read_your_own_writes() {
    let v = TVar::new(1u32);
    let seen = atomically(|tx| {
        tx.write(&v, 2)?;
        tx.read(&v)
    });
    assert_eq!(seen, 2);
}

#[test]
fn repeated_reads_see_stable_snapshot() {
    let v = TVar::new(7u32);
    atomically(|tx| {
        let a = tx.read(&v)?;
        let b = tx.read(&v)?;
        assert_eq!(a, b);
        Ok(())
    });
}

#[test]
fn bank_transfers_conserve_money() {
    const ACCOUNTS: usize = 16;
    const THREADS: usize = 8;
    const TRANSFERS: usize = 2_000;
    const INITIAL: i64 = 1_000;

    let accounts: Arc<Vec<TVar<i64>>> =
        Arc::new((0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect());

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let accounts = Arc::clone(&accounts);
        handles.push(thread::spawn(move || {
            let mut rng = (t as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            for _ in 0..TRANSFERS {
                let from = (next() as usize) % ACCOUNTS;
                let to = (next() as usize) % ACCOUNTS;
                let amount = (next() % 50) as i64;
                atomically(|tx| {
                    let a = tx.read(&accounts[from])?;
                    let b = tx.read(&accounts[to])?;
                    if from != to {
                        tx.write(&accounts[from], a - amount)?;
                        tx.write(&accounts[to], b + amount)?;
                    }
                    Ok(())
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let total = atomically(|tx| {
        let mut sum = 0i64;
        for acc in accounts.iter() {
            sum += tx.read(acc)?;
        }
        Ok(sum)
    });
    assert_eq!(total, ACCOUNTS as i64 * INITIAL);
}

#[test]
fn concurrent_increments_are_not_lost() {
    const THREADS: usize = 8;
    const INCS: u64 = 2_000;
    let counter = TVar::new(0u64);
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let counter = counter.clone();
        handles.push(thread::spawn(move || {
            for _ in 0..INCS {
                atomically(|tx| tx.modify(&counter, |c| c + 1));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(), THREADS as u64 * INCS);
}

#[test]
fn snapshot_is_consistent_across_two_vars() {
    // Writers keep (a, b) equal; readers must never observe a != b.
    let a = TVar::new(0u64);
    let b = TVar::new(0u64);
    let stop = Arc::new(AtomicBool::new(false));

    let (a2, b2, stop2) = (a.clone(), b.clone(), Arc::clone(&stop));
    let writer = thread::spawn(move || {
        let mut i = 0u64;
        while !stop2.load(Ordering::Relaxed) {
            i += 1;
            atomically(|tx| {
                tx.write(&a2, i)?;
                tx.write(&b2, i)
            });
        }
    });

    for _ in 0..20_000 {
        let (x, y) = atomically(|tx| {
            let x = tx.read(&a)?;
            let y = tx.read(&b)?;
            Ok((x, y))
        });
        assert_eq!(x, y, "observed torn transactional snapshot");
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn read_arc_returns_snapshot_without_clone() {
    let big = TVar::new(vec![1u8; 100_000]);
    let snapshot = atomically(|tx| tx.read_arc(&big));
    assert_eq!(snapshot.len(), 100_000);
    // Mutating the variable afterwards does not disturb the snapshot.
    big.store(vec![2u8; 3]);
    assert_eq!(snapshot[0], 1);
    assert_eq!(big.load(), vec![2u8; 3]);
}

#[test]
fn read_arc_sees_own_buffered_write() {
    let v = TVar::new(String::from("old"));
    let got = atomically(|tx| {
        tx.write(&v, String::from("new"))?;
        tx.read_arc(&v)
    });
    assert_eq!(&*got, "new");
}

#[test]
fn read_write_read_same_var_is_consistent() {
    let v = TVar::new(1u32);
    atomically(|tx| {
        let a = tx.read(&v)?;
        tx.write(&v, a + 10)?;
        let b = tx.read(&v)?;
        assert_eq!(b, a + 10);
        tx.write(&v, b + 10)?;
        let c = tx.read(&v)?;
        assert_eq!(c, a + 20);
        Ok(())
    });
    assert_eq!(v.load(), 21);
}

#[test]
fn write_set_and_read_set_sizes_are_reported() {
    let vars: Vec<TVar<u8>> = (0..5).map(TVar::new).collect();
    atomically(|tx| {
        for v in &vars[..3] {
            tx.read(v)?;
        }
        for v in &vars[3..] {
            tx.write(v, 0)?;
        }
        assert_eq!(tx.read_set_len(), 3);
        assert_eq!(tx.write_set_len(), 2);
        Ok(())
    });
}

#[test]
fn zombie_transactions_cannot_act_on_inconsistent_state() {
    // Opacity: writers keep x == y; a reader computing 100 / (1 + x - y)
    // must never divide by zero, even transiently inside a doomed attempt
    // (validate-on-read aborts it first).
    let x = TVar::new(0i64);
    let y = TVar::new(0i64);
    let stop = Arc::new(AtomicBool::new(false));

    let (x2, y2, stop2) = (x.clone(), y.clone(), Arc::clone(&stop));
    let writer = thread::spawn(move || {
        let mut i = 0i64;
        while !stop2.load(Ordering::Relaxed) {
            i += 1;
            atomically(|tx| {
                tx.write(&x2, i)?;
                tx.write(&y2, i)
            });
        }
    });

    for _ in 0..20_000 {
        let q = atomically(|tx| {
            let a = tx.read(&x)?;
            let b = tx.read(&y)?;
            // With a broken snapshot (a = i+1, b = i), the divisor is 2 —
            // so also assert equality; with a - b < 0 skew it could be 0.
            Ok(100 / (1 + a - b))
        });
        assert_eq!(q, 100);
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn retry_blocks_until_condition_holds() {
    let flag = TVar::new(false);
    let value = TVar::new(0u32);

    let (f2, v2) = (flag.clone(), value.clone());
    let consumer = thread::spawn(move || {
        atomically(|tx| {
            if !tx.read(&f2)? {
                return tx.retry();
            }
            tx.read(&v2)
        })
    });

    thread::sleep(Duration::from_millis(30));
    atomically(|tx| {
        tx.write(&value, 42)?;
        tx.write(&flag, true)
    });
    assert_eq!(consumer.join().unwrap(), 42);
}

#[test]
fn retry_with_park_policy_blocks_until_condition_holds() {
    let rt = Runtime::new(TmConfig::stm().with_retry_policy(ad_stm::RetryPolicy::Park));
    let flag = TVar::new(false);

    let rt2 = rt.clone();
    let f2 = flag.clone();
    let consumer = thread::spawn(move || {
        rt2.atomically(|tx| {
            if !tx.read(&f2)? {
                return tx.retry();
            }
            Ok(())
        });
    });

    thread::sleep(Duration::from_millis(50));
    rt.atomically(|tx| tx.write(&flag, true));
    consumer.join().unwrap();
    let stats = rt.stats();
    assert!(stats.retries >= 1);
}

#[test]
fn synchronized_runs_irrevocably() {
    let rt = Runtime::new(TmConfig::stm());
    let v = TVar::new(0u32);
    let was_irrevocable = rt.synchronized(|tx| {
        tx.write(&v, 5)?;
        Ok(tx.is_irrevocable())
    });
    assert!(was_irrevocable);
    assert_eq!(v.load(), 5);
    assert_eq!(rt.stats().serial_commits, 1);
}

#[test]
fn require_irrevocable_escalates_speculative_transaction() {
    let rt = Runtime::new(TmConfig::stm());
    let v = TVar::new(0u32);
    let executions = Arc::new(AtomicU64::new(0));
    let e2 = Arc::clone(&executions);
    let v2 = v.clone();
    rt.atomically(move |tx| {
        e2.fetch_add(1, Ordering::Relaxed);
        tx.require_irrevocable()?;
        assert!(tx.is_irrevocable());
        tx.write(&v2, 9)
    });
    assert_eq!(v.load(), 9);
    // One speculative attempt that aborted with Unsupported + one serial.
    assert_eq!(executions.load(Ordering::Relaxed), 2);
    let stats = rt.stats();
    assert_eq!(stats.aborts_unsupported, 1);
    assert_eq!(stats.serializations, 1);
    assert_eq!(stats.serial_commits, 1);
}

#[test]
fn irrevocable_excludes_concurrent_transactions() {
    // While an irrevocable transaction runs, no speculative transaction may
    // commit.
    let rt = Runtime::new(TmConfig::stm());
    let v = TVar::new(0u64);
    let in_serial = Arc::new(AtomicBool::new(false));
    let serial_done = Arc::new(AtomicBool::new(false));

    let rt2 = rt.clone();
    let v2 = v.clone();
    let (is2, sd2) = (Arc::clone(&in_serial), Arc::clone(&serial_done));
    let serial_thread = thread::spawn(move || {
        rt2.synchronized(|tx| {
            tx.write(&v2, 1)?;
            is2.store(true, Ordering::Release);
            thread::sleep(Duration::from_millis(50));
            sd2.store(true, Ordering::Release);
            Ok(())
        });
    });

    while !in_serial.load(Ordering::Acquire) {
        std::hint::spin_loop();
    }
    // This transaction must block until the irrevocable one finishes.
    rt.atomically(|tx| {
        assert!(
            serial_done.load(Ordering::Acquire),
            "speculative transaction ran concurrently with an irrevocable one"
        );
        tx.modify(&v, |x| x + 1)
    });
    serial_thread.join().unwrap();
    assert_eq!(v.load(), 2);
}

#[test]
fn contention_manager_serializes_after_threshold() {
    // A transaction that always fails with Conflict (injected) must
    // eventually run serially and succeed.
    let rt = Runtime::new(TmConfig::stm().with_serialize_after(3));
    let attempts = Arc::new(AtomicU64::new(0));
    let a2 = Arc::clone(&attempts);
    let result = rt.atomically(move |tx| {
        let n = a2.fetch_add(1, Ordering::Relaxed);
        if !tx.is_irrevocable() {
            assert!(n < 3, "should have serialized by attempt 3");
            return Err(StmError::Conflict);
        }
        Ok(n)
    });
    assert_eq!(result, 3);
    let stats = rt.stats();
    assert_eq!(stats.serializations, 1);
    assert_eq!(stats.aborts_conflict, 3);
}

#[test]
fn post_commit_actions_run_in_order_after_commit() {
    let rt = Runtime::new(TmConfig::stm());
    let v = TVar::new(0u32);
    let log = Arc::new(ad_support::sync::Mutex::new(Vec::new()));

    let (l1, l2) = (Arc::clone(&log), Arc::clone(&log));
    let v_obs = v.clone();
    rt.atomically(move |tx| {
        tx.write(&v, 7)?;
        let l1 = Arc::clone(&l1);
        let v_obs = v_obs.clone();
        tx.defer_post_commit(Box::new(move |_rt| {
            // The transaction's writes must be visible to the deferred op.
            assert_eq!(v_obs.load(), 7);
            l1.lock().push("first");
        }));
        let l2 = Arc::clone(&l2);
        tx.defer_post_commit(Box::new(move |_rt| {
            l2.lock().push("second");
        }));
        Ok(())
    });

    assert_eq!(*log.lock(), vec!["first", "second"]);
    assert_eq!(rt.stats().deferred_ops, 2);
}

#[test]
fn post_commit_actions_discarded_on_abort() {
    let rt = Runtime::new(TmConfig::stm());
    let ran = Arc::new(AtomicBool::new(false));
    let first_attempt = Arc::new(AtomicBool::new(true));

    let (r2, fa2) = (Arc::clone(&ran), Arc::clone(&first_attempt));
    rt.atomically(move |tx| {
        if fa2.swap(false, Ordering::Relaxed) {
            let r3 = Arc::clone(&r2);
            tx.defer_post_commit(Box::new(move |_rt| {
                r3.store(true, Ordering::Relaxed);
            }));
            // Abort this attempt: its deferred action must be dropped.
            return Err(StmError::Conflict);
        }
        Ok(())
    });
    assert!(!ran.load(Ordering::Relaxed));
}

#[test]
fn deferred_drops_happen_after_post_commit_actions() {
    struct DropProbe(Arc<ad_support::sync::Mutex<Vec<&'static str>>>);
    impl Drop for DropProbe {
        fn drop(&mut self) {
            self.0.lock().push("drop");
        }
    }

    let rt = Runtime::new(TmConfig::stm());
    let log = Arc::new(ad_support::sync::Mutex::new(Vec::new()));
    let (l1, l2) = (Arc::clone(&log), Arc::clone(&log));
    rt.atomically(move |tx| {
        tx.defer_drop(Box::new(DropProbe(Arc::clone(&l1))));
        let l = Arc::clone(&l2);
        tx.defer_post_commit(Box::new(move |_rt| l.lock().push("action")));
        Ok(())
    });
    assert_eq!(*log.lock(), vec!["action", "drop"]);
}

#[test]
fn readonly_transactions_commit_without_clock_tick() {
    let v = TVar::new(1u32);
    atomically(|tx| tx.read(&v)); // warm up
    let before = ad_stm::internals::clock_now();
    for _ in 0..100 {
        atomically(|tx| tx.read(&v));
    }
    let after = ad_stm::internals::clock_now();
    // Other tests may run concurrently and tick the clock, but 100 of our
    // own read-only transactions must not add 100 ticks themselves. Use a
    // dedicated runtime-independent bound: in an isolated run this is 0.
    assert!(
        after - before < 200,
        "read-only commits appear to tick the clock"
    );
}

#[test]
fn stats_track_commits_and_conflicts() {
    let rt = Runtime::new(TmConfig::stm());
    let v = TVar::new(0u64);
    for _ in 0..10 {
        rt.atomically(|tx| tx.modify(&v, |x| x + 1));
    }
    let s = rt.stats();
    assert_eq!(s.commits, 10);
    assert_eq!(s.starts, 10);
    rt.reset_stats();
    assert_eq!(rt.stats().commits, 0);
}

#[test]
fn quiescence_can_be_disabled() {
    let rt = Runtime::new(TmConfig::stm().with_quiesce(false));
    let v = TVar::new(0u32);
    rt.atomically(|tx| tx.write(&v, 1));
    assert_eq!(rt.stats().quiesce_waits, 0);
}

#[test]
fn writer_quiesces_behind_long_running_reader() {
    // Thread R starts a long transaction; thread W commits a write to an
    // unrelated variable and must wait (quiesce) until R finishes.
    let rt = Runtime::new(TmConfig::stm());
    let shared = TVar::new(0u64);
    let unrelated = TVar::new(0u64);
    let reader_in = Arc::new(AtomicBool::new(false));
    let reader_done = Arc::new(AtomicBool::new(false));

    let rt2 = rt.clone();
    let s2 = shared.clone();
    let (ri, rd) = (Arc::clone(&reader_in), Arc::clone(&reader_done));
    let reader = thread::spawn(move || {
        rt2.atomically(|tx| {
            let x = tx.read(&s2)?;
            ri.store(true, Ordering::Release);
            thread::sleep(Duration::from_millis(60));
            rd.store(true, Ordering::Release);
            Ok(x)
        });
    });

    while !reader_in.load(Ordering::Acquire) {
        std::hint::spin_loop();
    }
    let t0 = std::time::Instant::now();
    rt.atomically(|tx| tx.write(&unrelated, 1));
    let waited = t0.elapsed();
    assert!(
        reader_done.load(Ordering::Acquire),
        "writer commit returned before the older transaction finished"
    );
    assert!(waited >= Duration::from_millis(20));
    reader.join().unwrap();
    assert!(rt.stats().quiesce_waits >= 1);
}

#[test]
fn nontransactional_store_aborts_conflicting_transaction() {
    // A transaction reads v, then a non-transactional store bumps it before
    // commit: the transaction must re-execute and see the new value.
    let v = TVar::new(0u32);
    let stored = Arc::new(AtomicBool::new(false));
    let v2 = v.clone();
    let s2 = Arc::clone(&stored);
    let final_seen = atomically(move |tx| {
        let x = tx.read(&v2)?;
        if !s2.swap(true, Ordering::Relaxed) {
            // First attempt: invalidate ourselves from outside the
            // transaction system.
            v2.store(100);
        }
        // Force a write so commit validates the read set.
        tx.write(&v2, x + 1)?;
        Ok(x)
    });
    assert_eq!(final_seen, 100);
    assert_eq!(v.load(), 101);
}

#[test]
#[should_panic(expected = "inside a transaction")]
fn nested_independent_atomically_is_refused() {
    // Starting an independent transaction inside one is a deadlock hazard
    // (the serial read lock is held); the runner must refuse loudly.
    let v = TVar::new(0u32);
    atomically(|_tx| {
        atomically(|tx2| tx2.read(&v)); // BOOM
        Ok(())
    });
}

#[test]
fn transactions_fine_after_guard_panic_unwinds() {
    // The in-transaction marker must be cleared even when the closure
    // panics, or the thread could never transact again.
    let v = TVar::new(0u32);
    let v2 = v.clone();
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        atomically(|_tx| {
            atomically(|tx2| tx2.read(&v2));
            Ok(())
        })
    }));
    atomically(|tx| tx.write(&v, 3));
    assert_eq!(v.load(), 3);
}

#[test]
fn panicking_transaction_does_not_wedge_the_runtime() {
    let rt = Runtime::new(TmConfig::stm());
    let v = TVar::new(0u32);
    let rt2 = rt.clone();
    let v2 = v.clone();
    let result = thread::spawn(move || {
        rt2.atomically(|tx| {
            tx.write(&v2, 1)?;
            panic!("boom");
            #[allow(unreachable_code)]
            Ok(())
        })
    })
    .join();
    assert!(result.is_err());
    // The runtime must still work: writers must not hang in quiescence
    // behind the panicked transaction's activity slot.
    rt.atomically(|tx| tx.write(&v, 2));
    assert_eq!(v.load(), 2);
}

#[test]
fn configured_tiny_trace_ring_reports_drops() {
    // `TmConfig::with_trace_ring` must actually size the per-thread rings:
    // a 4-event ring cannot hold the ~3 events per committed transaction
    // of this loop, so the drained trace must report drops, while a
    // default-sized runtime tracing the same workload reports none.
    let tiny = Runtime::new(TmConfig::stm().with_trace_ring(4));
    tiny.set_tracing(true);
    let v = TVar::new(0u64);
    for _ in 0..50 {
        let v2 = v.clone();
        tiny.atomically(move |tx| {
            let x = tx.read(&v2)?;
            tx.write(&v2, x + 1)
        });
    }
    let t = tiny.take_trace();
    assert!(
        t.dropped > 0,
        "a 4-event ring kept all events of 50 transactions"
    );
    assert!(!t.events.is_empty());

    let roomy = Runtime::new(TmConfig::stm());
    roomy.set_tracing(true);
    let w = TVar::new(0u64);
    for _ in 0..50 {
        let w2 = w.clone();
        roomy.atomically(move |tx| {
            let x = tx.read(&w2)?;
            tx.write(&w2, x + 1)
        });
    }
    let t = roomy.take_trace();
    assert_eq!(t.dropped, 0);
    assert_eq!(v.load(), 50);
    assert_eq!(w.load(), 50);
}

#[test]
fn trace_spill_makes_a_tiny_ring_lossless() {
    // The same overloaded 4-event ring, but with `with_trace_spill(true)`:
    // overwritten events are rescued to the heap, so the drained trace
    // reports zero drops and the spill shows up in both `Trace::spilled`
    // and the `trace_spilled_events` stats counter.
    let rt = Runtime::new(TmConfig::stm().with_trace_ring(4).with_trace_spill(true));
    rt.set_tracing(true);
    let v = TVar::new(0u64);
    for _ in 0..50 {
        let v2 = v.clone();
        rt.atomically(move |tx| {
            let x = tx.read(&v2)?;
            tx.write(&v2, x + 1)
        });
    }
    let t = rt.take_trace();
    assert_eq!(t.dropped, 0, "spill must rescue every overwritten event");
    assert!(
        t.spilled > 0,
        "50 transactions must overflow a 4-event ring"
    );
    assert!(t.events.len() >= 100, "all lifecycle events survive");
    // Per-thread sequences are gap-free — nothing was silently lost.
    let seqs: Vec<u64> = t
        .events
        .iter()
        .filter(|e| e.thread == t.events[0].thread)
        .map(|e| e.seq)
        .collect();
    assert_eq!(seqs, (1..=seqs.len() as u64).collect::<Vec<u64>>());
    assert_eq!(rt.stats().trace_spilled_events, t.spilled);
    assert!(rt
        .snapshot_stats()
        .to_json()
        .contains("\"trace_spilled_events\""));
    assert_eq!(v.load(), 50);
}

#[test]
fn cross_runtime_merge_with_a_spilled_ring_stays_deduplicated_and_gap_free() {
    // The multi-runtime contract `ad-shard` relies on: merging one
    // runtime whose tiny ring spilled with a second, roomy runtime must
    // (a) keep both runtimes' provenance tags, (b) lose nothing from the
    // spilled runtime — per-thread sequences stay contiguous from 1 —
    // and (c) contain no duplicate `(runtime, thread, seq)` identity even
    // though a spill-enabled ring can hand the same event to the spill
    // rescue *and* a drain (the documented double-report race).
    use ad_stm::Trace;

    let spilly = Runtime::new(TmConfig::stm().with_trace_ring(4).with_trace_spill(true));
    let roomy = Runtime::new(TmConfig::stm());
    spilly.set_tracing(true);
    roomy.set_tracing(true);
    let v = TVar::new(0u64);
    let w = TVar::new(0u64);
    // Interleave commits on the two runtimes, draining the spilled one
    // mid-stream so the final merge has to collapse overlapping drains.
    let mut partial = Vec::new();
    for i in 0..50u64 {
        let v2 = v.clone();
        spilly.atomically(move |tx| {
            let x = tx.read(&v2)?;
            tx.write(&v2, x + 1)
        });
        let w2 = w.clone();
        roomy.atomically(move |tx| {
            let x = tx.read(&w2)?;
            tx.write(&w2, x + 1)
        });
        if i == 25 {
            partial.push(spilly.take_trace());
        }
    }
    partial.push(spilly.take_trace());
    partial.push(roomy.take_trace());
    let merged = Trace::merge(partial);

    assert_eq!(
        merged.runtime_ids().len(),
        2,
        "both runtimes tagged in the merged timeline"
    );
    assert_eq!(merged.dropped, 0, "spill rescues every overwritten event");
    assert!(
        merged.spilled > 0,
        "100 events must overflow a 4-event ring"
    );

    // (c) deduplicated: the identity triple is globally unique.
    let mut ids: Vec<(u64, u32, u64)> = merged
        .events
        .iter()
        .map(|e| (e.runtime, e.thread, e.seq))
        .collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "merge left duplicate event identities");

    // (b) gap-free: within every (runtime, thread) row the sequence runs
    // 1..=len with no holes.
    let mut rows: std::collections::BTreeMap<(u64, u32), Vec<u64>> =
        std::collections::BTreeMap::new();
    for e in &merged.events {
        rows.entry((e.runtime, e.thread)).or_default().push(e.seq);
    }
    for ((rt_id, thread), mut seqs) in rows {
        seqs.sort_unstable();
        assert_eq!(
            seqs,
            (1..=seqs.len() as u64).collect::<Vec<u64>>(),
            "gap in runtime {rt_id} thread {thread}"
        );
    }

    // And the merged timeline is on one timestamp axis.
    assert!(
        merged.events.windows(2).all(|p| p[0].ts_ns <= p[1].ts_ns),
        "merged events must be timestamp-sorted"
    );
    assert_eq!(v.load(), 50);
    assert_eq!(w.load(), 50);
}
