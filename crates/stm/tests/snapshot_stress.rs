#![cfg(not(loom))]

//! Stress tests for the lock-free snapshot read path.
//!
//! `VarCore` publishes values through an epoch-reclaimed atomic pointer
//! (`ad_stm::snapshot`) instead of a lock, so these tests hammer exactly
//! the interleavings that design must survive:
//!
//! * non-transactional `TVar::load` racing transactional commit write-backs
//!   — a loaded compound value must never tear (it is one snapshot or the
//!   next, never a mix);
//! * non-transactional `TVar::store` (the `direct_write` path) racing
//!   readers — reclamation must not free a snapshot a reader still holds,
//!   which would be a use-after-free that miri-less CI can still catch as
//!   corrupted data;
//! * a transfer workload whose global invariant (conserved sum) a torn or
//!   stale-beyond-seqlock read would violate;
//! * a randomized single-threaded interleaving of transactions, direct
//!   stores, and loads checked against a plain sequential model.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use ad_stm::{Runtime, TVar, TmConfig};
use ad_support::prng::Rng;

/// Readers continuously `load` a pair that writers only ever set to
/// `(n, !n)`: observing any pair that doesn't satisfy the relation means a
/// read tore across two snapshots.
#[test]
fn nontx_load_never_tears_against_commits() {
    let rt = Runtime::new(TmConfig::stm());
    let v: Arc<TVar<(u64, u64)>> = Arc::new(TVar::new((0, !0)));
    let stop = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..3 {
        let v = Arc::clone(&v);
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            let mut seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (a, b) = v.load();
                assert_eq!(b, !a, "torn snapshot read: ({a:#x}, {b:#x})");
                seen += 1;
            }
            seen
        }));
    }

    // Writer: transactional commits (write-back path) interleaved with
    // direct stores (serial/non-transactional path).
    for i in 1..=20_000u64 {
        if i % 4 == 0 {
            v.store((i, !i));
        } else {
            rt.atomically(|tx| tx.write(&v, (i, !i)));
        }
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader made no progress");
    }
}

/// Transactional readers must see consistent snapshots too: each
/// transaction reads the pair twice (exercising the read cache on the
/// second read) while committers replace it.
#[test]
fn transactional_reads_are_opaque_under_write_storm() {
    let rt = Arc::new(Runtime::new(TmConfig::stm()));
    let v: Arc<TVar<(u64, u64)>> = Arc::new(TVar::new((0, !0)));
    let stop = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..2 {
        let rt = Arc::clone(&rt);
        let v = Arc::clone(&v);
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let ((a1, b1), (a2, b2)) = rt.atomically(|tx| {
                    let first = tx.read(&v)?;
                    let second = tx.read(&v)?;
                    Ok((first, second))
                });
                assert_eq!(b1, !a1, "torn transactional read");
                assert_eq!((a1, b1), (a2, b2), "re-read diverged from snapshot");
            }
        }));
    }

    for i in 1..=10_000u64 {
        rt.atomically(|tx| tx.write(&v, (i, !i)));
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
}

/// Concurrent transfers between accounts conserve the total; concurrent
/// non-transactional audits (plain `load`s) must never observe memory
/// corruption even while snapshots are retired and reclaimed under them.
#[test]
fn transfer_stress_conserves_sum() {
    const ACCOUNTS: usize = 8;
    const THREADS: usize = 4;
    const TRANSFERS: usize = 5_000;
    const TOTAL: i64 = 1_000 * ACCOUNTS as i64;

    let rt = Arc::new(Runtime::new(TmConfig::stm()));
    let accounts: Arc<Vec<TVar<i64>>> =
        Arc::new((0..ACCOUNTS).map(|_| TVar::new(1_000i64)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    let auditor = {
        let accounts = Arc::clone(&accounts);
        let stop = Arc::clone(&stop);
        let rt = Arc::clone(&rt);
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Transactional audit: must always see exactly TOTAL.
                let sum = rt.atomically(|tx| {
                    let mut s = 0i64;
                    for a in accounts.iter() {
                        s += tx.read(a)?;
                    }
                    Ok(s)
                });
                assert_eq!(sum, TOTAL, "transactional audit saw a partial transfer");
                // Non-transactional audit: individually consistent loads
                // (sum may be mid-transfer, but every load must return an
                // intact, sane value — not freed or zeroed memory).
                for a in accounts.iter() {
                    let x = a.load();
                    assert!((0..=TOTAL).contains(&x), "corrupt balance {x}");
                }
            }
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let rt = Arc::clone(&rt);
            let accounts = Arc::clone(&accounts);
            thread::spawn(move || {
                let mut rng = Rng::seed_from_u64(0xA11CE + t as u64);
                for _ in 0..TRANSFERS {
                    let from = rng.random_range(0..ACCOUNTS);
                    // Self-transfers would double-write one account (the
                    // credit overwrites the debit) and mint money.
                    let to = (from + 1 + rng.random_range(0..ACCOUNTS - 1)) % ACCOUNTS;
                    let amt = rng.random_range_i64(1..50);
                    rt.atomically(|tx| {
                        let f = tx.read(&accounts[from])?;
                        if f < amt {
                            return Ok(());
                        }
                        let g = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], f - amt)?;
                        tx.write(&accounts[to], g + amt)
                    });
                }
            })
        })
        .collect();

    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    auditor.join().unwrap();

    let sum = rt.atomically(|tx| {
        let mut s = 0i64;
        for a in accounts.iter() {
            s += tx.read(a)?;
        }
        Ok(s)
    });
    assert_eq!(sum, TOTAL);
}

/// Randomized single-threaded interleaving of the three access paths
/// (transactions, direct stores, direct loads) against a sequential model:
/// every read — transactional or not — must match the model exactly.
#[test]
fn randomized_accesses_match_sequential_model() {
    const VARS: usize = 5;
    const STEPS: usize = 4_000;

    for seed in 0..8u64 {
        let rt = Runtime::new(TmConfig::stm());
        let vars: Vec<TVar<i64>> = (0..VARS).map(|_| TVar::new(0)).collect();
        let mut model = [0i64; VARS];
        let mut rng = Rng::seed_from_u64(0xBEEF ^ seed);

        for step in 0..STEPS {
            match rng.random_range(0..4) {
                // Direct store.
                0 => {
                    let i = rng.random_range(0..VARS);
                    let k = rng.random_range_i64(-1_000..1_000);
                    vars[i].store(k);
                    model[i] = k;
                }
                // Direct load.
                1 => {
                    let i = rng.random_range(0..VARS);
                    assert_eq!(vars[i].load(), model[i], "seed {seed} step {step}");
                }
                // Read-modify-write transaction over two variables.
                2 => {
                    let a = rng.random_range(0..VARS);
                    let b = rng.random_range(0..VARS);
                    rt.atomically(|tx| {
                        let x = tx.read(&vars[a])?;
                        tx.write(&vars[b], x + 1)
                    });
                    model[b] = model[a] + 1;
                }
                // Read-only transaction over all variables.
                _ => {
                    let snap = rt.atomically(|tx| {
                        let mut out = [0i64; VARS];
                        for (i, v) in vars.iter().enumerate() {
                            out[i] = tx.read(v)?;
                        }
                        Ok(out)
                    });
                    assert_eq!(snap, model, "seed {seed} step {step}");
                }
            }
        }
    }
}
