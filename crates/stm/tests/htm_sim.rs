#![cfg(not(loom))]

//! Behavioural tests for the simulated best-effort HTM mode: capacity
//! aborts, low retry budget, serial fallback, and the absence of
//! quiescence. These are the properties Figure 3 of the paper depends on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ad_stm::{Runtime, StmError, TVar, TmConfig};

fn htm_rt(capacity: u64) -> Runtime {
    Runtime::new(TmConfig::htm().with_htm_capacity(capacity))
}

#[test]
fn small_transactions_commit_speculatively() {
    let rt = htm_rt(32 * 1024);
    let v = TVar::new(0u32);
    rt.atomically(|tx| tx.modify(&v, |x| x + 1));
    let s = rt.stats();
    assert_eq!(s.commits, 1);
    assert_eq!(s.serial_commits, 0);
    assert_eq!(s.aborts_capacity, 0);
}

#[test]
fn footprint_overflow_aborts_then_serializes() {
    // Capacity 1 KiB; the transaction declares a 4 KiB footprint (like
    // dedup's Compress touching a whole buffer). With serialize_after=2 it
    // must abort twice with Capacity, then succeed serially.
    let rt = htm_rt(1024);
    let v = TVar::new(0u32);
    let attempts = Arc::new(AtomicU64::new(0));
    let a2 = Arc::clone(&attempts);
    rt.atomically(move |tx| {
        a2.fetch_add(1, Ordering::Relaxed);
        tx.account_footprint(4096)?;
        tx.modify(&v, |x| x + 1)
    });
    assert_eq!(attempts.load(Ordering::Relaxed), 3); // 2 speculative + 1 serial
    let s = rt.stats();
    assert_eq!(s.aborts_capacity, 2);
    assert_eq!(s.serializations, 1);
    assert_eq!(s.serial_commits, 1);
    assert_eq!(s.commits, 0);
}

#[test]
fn many_distinct_vars_overflow_capacity() {
    // bytes_per_access defaults to 64; capacity 640 bytes = 10 vars.
    let rt = htm_rt(640);
    let vars: Vec<TVar<u32>> = (0..32).map(TVar::new).collect();
    rt.atomically(|tx| {
        let mut sum = 0u32;
        for v in &vars {
            sum += tx.read(v)?;
        }
        Ok(sum)
    });
    let s = rt.stats();
    assert!(s.aborts_capacity >= 1, "expected capacity aborts, got {s}");
    assert_eq!(s.serial_commits, 1);
}

#[test]
fn repeated_access_to_same_var_charged_once() {
    let rt = htm_rt(128); // room for 2 vars at 64 bytes each
    let v = TVar::new(0u64);
    rt.atomically(|tx| {
        for _ in 0..100 {
            let x = tx.read(&v)?;
            tx.write(&v, x + 1)?;
        }
        Ok(())
    });
    let s = rt.stats();
    assert_eq!(s.aborts_capacity, 0);
    assert_eq!(s.commits, 1);
    assert_eq!(v.load(), 100);
}

#[test]
fn irrevocable_ops_unsupported_speculatively() {
    // Real HTM aborts on syscalls; the closure requesting irrevocability
    // must fall to the serial path immediately.
    let rt = htm_rt(32 * 1024);
    let ran_serial = rt.atomically(|tx| {
        tx.require_irrevocable()?;
        Ok(tx.is_irrevocable())
    });
    assert!(ran_serial);
    let s = rt.stats();
    assert_eq!(s.aborts_unsupported, 1);
    assert_eq!(s.serial_commits, 1);
}

#[test]
fn htm_mode_never_quiesces() {
    let rt = htm_rt(32 * 1024);
    let v = TVar::new(0u32);
    for _ in 0..50 {
        rt.atomically(|tx| tx.modify(&v, |x| x + 1));
    }
    assert_eq!(rt.stats().quiesce_waits, 0);
}

#[test]
fn serial_fallback_excludes_speculation_like_a_fallback_lock() {
    // While one thread holds the fallback (serial) path, speculative
    // commits from other threads cannot interleave with it. We assert the
    // final count is exact, which fails if exclusion is broken.
    let rt = htm_rt(256);
    let v = TVar::new(0u64);
    let mut handles = Vec::new();
    for t in 0..4 {
        let rt = rt.clone();
        let v = v.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..500u64 {
                rt.atomically(|tx| {
                    // Every 16th op is "large" and must serialize.
                    if (i + t) % 16 == 0 {
                        tx.account_footprint(10_000)?;
                    }
                    tx.modify(&v, |x| x + 1)
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(v.load(), 2000);
    let s = rt.stats();
    assert!(s.aborts_capacity > 0);
    assert!(s.serial_commits > 0);
}

#[test]
fn capacity_error_propagates_from_account_footprint() {
    let rt = htm_rt(100);
    let out = rt.atomically(|tx| {
        if tx.is_irrevocable() {
            return Ok(None);
        }
        Ok(Some(tx.account_footprint(1000)))
    });
    // First attempt observed Err(Capacity)... but then committed Ok(Some(Err)).
    // Hmm: swallowing the error means no abort. Assert what we got.
    match out {
        Some(Err(StmError::Capacity)) => {}
        other => panic!("expected swallowed capacity error, got {other:?}"),
    }
}

#[test]
fn stm_mode_ignores_footprint() {
    let rt = Runtime::new(TmConfig::stm());
    let v = TVar::new(0u32);
    rt.atomically(|tx| {
        tx.account_footprint(u64::MAX / 2)?;
        tx.modify(&v, |x| x + 1)
    });
    assert_eq!(rt.stats().aborts_capacity, 0);
    assert_eq!(v.load(), 1);
}
