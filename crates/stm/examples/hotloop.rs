//! Minimal single-thread hot-path probe: mixed (90r/10w over 64 vars) and
//! read-only (16-var scan) ops/sec. Used for A/B perf bisection and for
//! measuring the observability layer's cost (`hotloop [ms] --obs` enables
//! tracing; compare against a run without the flag).
use ad_stm::{Runtime, TVar, TmConfig};
use std::time::Instant;

fn main() {
    let ms: u128 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let rt = Runtime::new(TmConfig::stm());
    rt.set_tracing(std::env::args().any(|a| a == "--obs"));
    let vars: Vec<TVar<u64>> = (0..64).map(TVar::new).collect();

    let mut x = 0x12345678u64;
    let t0 = Instant::now();
    let mut ops = 0u64;
    while t0.elapsed().as_millis() < ms {
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = ((x >> 33) % 64) as usize;
            if x.is_multiple_of(10) {
                rt.atomically(|tx| tx.modify(&vars[i], |v| v.wrapping_add(1)));
            } else {
                std::hint::black_box(rt.atomically(|tx| tx.read(&vars[i])));
            }
            ops += 1;
        }
    }
    println!("mixed {}", (ops as f64 / t0.elapsed().as_secs_f64()) as u64);

    let t0 = Instant::now();
    let mut ops = 0u64;
    while t0.elapsed().as_millis() < ms {
        for _ in 0..1000 {
            let s = rt.atomically(|tx| {
                let mut s = 0u64;
                for v in vars.iter().take(16) {
                    s = s.wrapping_add(tx.read(v)?);
                }
                Ok(s)
            });
            std::hint::black_box(s);
            ops += 1;
        }
    }
    println!(
        "read_only {}",
        (ops as f64 / t0.elapsed().as_secs_f64()) as u64
    );
}
