//! Minimal single-thread hot-path probe: mixed (90r/10w over 64 vars) and
//! read-only (16-var scan) ops/sec. Used for A/B perf bisection and for
//! measuring the observability layer's cost.
//!
//! Usage: `hotloop [ms] [--obs | --ab]`
//! * no flag — tracing off (baseline)
//! * `--obs` — tracing on
//! * `--ab`  — alternate tracing off/on inside one process and print the
//!   overhead ratio per workload; the phases interleave, so machine-load
//!   drift between separate off/on runs cancels out (the `tracing_overhead`
//!   numbers in OBSERVABILITY.md come from this mode).
use ad_stm::{Runtime, TVar, TmConfig};
use std::time::Instant;

fn bench_mixed(rt: &Runtime, vars: &[TVar<u64>], ms: u128, x: &mut u64) -> f64 {
    let t0 = Instant::now();
    let mut ops = 0u64;
    while t0.elapsed().as_millis() < ms {
        for _ in 0..1000 {
            *x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = ((*x >> 33) % 64) as usize;
            if x.is_multiple_of(10) {
                rt.atomically(|tx| tx.modify(&vars[i], |v| v.wrapping_add(1)));
            } else {
                std::hint::black_box(rt.atomically(|tx| tx.read(&vars[i])));
            }
            ops += 1;
        }
    }
    ops as f64 / t0.elapsed().as_secs_f64()
}

fn bench_read_only(rt: &Runtime, vars: &[TVar<u64>], ms: u128) -> f64 {
    let t0 = Instant::now();
    let mut ops = 0u64;
    while t0.elapsed().as_millis() < ms {
        for _ in 0..1000 {
            let s = rt.atomically(|tx| {
                let mut s = 0u64;
                for v in vars.iter().take(16) {
                    s = s.wrapping_add(tx.read(v)?);
                }
                Ok(s)
            });
            std::hint::black_box(s);
            ops += 1;
        }
    }
    ops as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let ms: u128 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let ab = std::env::args().any(|a| a == "--ab");
    let rt = Runtime::new(TmConfig::stm());
    let vars: Vec<TVar<u64>> = (0..64).map(TVar::new).collect();
    let mut x = 0x12345678u64;

    if ab {
        // Interleaved off/on phases; keep the best of each so transient
        // machine load (this is often a shared box) hits both sides alike.
        // Each round measures off and on back-to-back and keeps the
        // *per-round* ratio; the reported overhead is the minimum across
        // rounds. Rationale: external load inflates whichever phase it
        // lands on, so any contaminated round reads high — the cleanest
        // round is the best estimate of the true instrumentation cost.
        const ROUNDS: usize = 6;
        let phase = ms / (2 * ROUNDS) as u128;
        let (mut off_m, mut on_m, mut off_r, mut on_r) = (0f64, 0f64, 0f64, 0f64);
        let (mut ratio_m, mut ratio_r) = (f64::INFINITY, f64::INFINITY);
        for round in 0..ROUNDS {
            // Alternate which mode goes first so slow drift cancels too.
            let on_first = round % 2 == 1;
            let mut phase_pair = |on: bool| {
                rt.set_tracing(on);
                let m = bench_mixed(&rt, &vars, phase, &mut x);
                let r = bench_read_only(&rt, &vars, phase);
                let _ = rt.take_trace(); // keep rings from accumulating
                (m, r)
            };
            let (first, second) = (phase_pair(on_first), phase_pair(!on_first));
            let ((m_on, r_on), (m_off, r_off)) = if on_first {
                (first, second)
            } else {
                (second, first)
            };
            off_m = off_m.max(m_off);
            on_m = on_m.max(m_on);
            off_r = off_r.max(r_off);
            on_r = on_r.max(r_on);
            ratio_m = ratio_m.min(m_off / m_on);
            ratio_r = ratio_r.min(r_off / r_on);
        }
        println!("mixed_off {}", off_m as u64);
        println!("mixed_on {}", on_m as u64);
        println!("mixed_overhead {ratio_m:.2}");
        println!("read_only_off {}", off_r as u64);
        println!("read_only_on {}", on_r as u64);
        println!("read_only_overhead {ratio_r:.2}");
        return;
    }

    rt.set_tracing(std::env::args().any(|a| a == "--obs"));
    println!("mixed {}", bench_mixed(&rt, &vars, ms, &mut x) as u64);
    println!("read_only {}", bench_read_only(&rt, &vars, ms) as u64);
}
