//! An adaptive pointer-keyed map for transaction read/write sets.
//!
//! Almost every transaction touches a handful of variables: the fig2/fig3
//! workloads write 1–4 `TVar`s and read fewer than ten. For those sizes a
//! linear scan over an inline vector beats a hash map — no hashing, no
//! bucket indirection, and (once the vector's capacity is warm, which the
//! descriptor pool guarantees) no allocation at all. Sets that outgrow
//! [`INLINE_CAP`] spill to an `FxHashMap` so big transactions keep O(1)
//! lookups.
//!
//! Keys are `VarCore` addresses (`usize`), unique per live variable.

use crate::fxhash::FxHashMap;

/// Sets up to this many entries stay in the inline vector. Chosen to cover
/// the common transaction sizes above while keeping the scan trivially
/// cache-resident (one or two lines of key/value pairs).
pub(crate) const INLINE_CAP: usize = 8;

/// A `usize`-keyed map that is a linear-scanned vector while small and an
/// `FxHashMap` once large. `clear` keeps both allocations so a pooled
/// descriptor never re-allocates for small transactions.
#[derive(Clone)]
pub(crate) struct SmallMap<V> {
    inline: Vec<(usize, V)>,
    spill: FxHashMap<usize, V>,
    spilled: bool,
}

impl<V> Default for SmallMap<V> {
    fn default() -> Self {
        SmallMap {
            inline: Vec::new(),
            spill: FxHashMap::default(),
            spilled: false,
        }
    }
}

impl<V> SmallMap<V> {
    #[inline]
    pub(crate) fn get(&self, key: usize) -> Option<&V> {
        if self.spilled {
            self.spill.get(&key)
        } else {
            self.inline.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
        }
    }

    /// Insert, returning the previous value for `key` if any.
    pub(crate) fn insert(&mut self, key: usize, value: V) -> Option<V> {
        if self.spilled {
            return self.spill.insert(key, value);
        }
        for (k, v) in self.inline.iter_mut() {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        if self.inline.len() < INLINE_CAP {
            self.inline.push((key, value));
            return None;
        }
        // Spill: move the inline entries into the hash map (the vector
        // keeps its capacity for after the next `clear`).
        self.spilled = true;
        self.spill.extend(self.inline.drain(..));
        self.spill.insert(key, value)
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        if self.spilled {
            self.spill.len()
        } else {
            self.inline.len()
        }
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all entries, keeping both the inline and spill allocations.
    pub(crate) fn clear(&mut self) {
        self.inline.clear();
        self.spill.clear();
        self.spilled = false;
    }

    /// Drain all `(key, value)` pairs (order unspecified). Does not reset
    /// the spilled flag — call [`clear`](Self::clear) to fully reset.
    pub(crate) fn drain(&mut self) -> impl Iterator<Item = (usize, V)> + '_ {
        self.inline.drain(..).chain(self.spill.drain())
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn insert_get_replace_inline() {
        let mut m: SmallMap<u32> = SmallMap::default();
        assert!(m.is_empty());
        assert_eq!(m.insert(8, 1), None);
        assert_eq!(m.insert(16, 2), None);
        assert_eq!(m.get(8), Some(&1));
        assert_eq!(m.insert(8, 3), Some(1));
        assert_eq!(m.get(8), Some(&3));
        assert_eq!(m.get(24), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn spills_past_inline_cap_and_stays_correct() {
        let mut m: SmallMap<usize> = SmallMap::default();
        let n = INLINE_CAP * 4;
        for i in 0..n {
            assert_eq!(m.insert(i * 8, i), None);
        }
        assert!(m.spilled);
        assert_eq!(m.len(), n);
        for i in 0..n {
            assert_eq!(m.get(i * 8), Some(&i));
        }
        // Replacement still reports the old value after the spill.
        assert_eq!(m.insert(0, 999), Some(0));
    }

    #[test]
    fn clear_resets_to_inline_without_reallocating() {
        let mut m: SmallMap<u8> = SmallMap::default();
        for i in 0..(INLINE_CAP * 2) {
            m.insert(i, 0);
        }
        assert!(m.spilled);
        m.clear();
        assert!(!m.spilled);
        assert!(m.is_empty());
        assert!(m.inline.capacity() >= INLINE_CAP);
        m.insert(1, 1);
        assert_eq!(m.get(1), Some(&1));
    }

    #[test]
    fn drain_yields_every_entry_once() {
        for n in [3usize, INLINE_CAP * 3] {
            let mut m: SmallMap<usize> = SmallMap::default();
            for i in 0..n {
                m.insert(i, i * 2);
            }
            let mut got: Vec<(usize, usize)> = m.drain().collect();
            got.sort_unstable();
            let expected: Vec<(usize, usize)> = (0..n).map(|i| (i, i * 2)).collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn clone_snapshots_independently() {
        let mut m: SmallMap<i64> = SmallMap::default();
        m.insert(1, 10);
        let snap = m.clone();
        m.insert(1, 20);
        m.insert(2, 30);
        assert_eq!(snap.get(1), Some(&10));
        assert_eq!(snap.get(2), None);
        let restored = snap;
        assert_eq!(restored.len(), 1);
    }
}
