//! Transactional variables.
//!
//! A [`TVar<T>`] is a typed handle to a [`VarCore`]: a versioned, lockable
//! cell holding the committed value. The design follows TL2:
//!
//! * `version` is an even/odd word — even values are the commit timestamp of
//!   the current value, an odd value means a committing transaction holds
//!   the cell's write lock.
//! * the committed value is stored as an `Arc<dyn Any + Send + Sync>` in a
//!   lock-free [`SnapshotCell`]: an atomic pointer published under the
//!   version seqlock and reclaimed via epochs (see `snapshot.rs`). Readers
//!   take a consistent (version-stable) snapshot by cloning the `Arc` —
//!   no lock, no writer/reader contention beyond the version word itself.
//! * a waiter list supports parking-based `retry`.
//!
//! Values must be `Clone`: a read hands the transaction its own copy. For
//! large payloads, store `Arc<T>` inside the `TVar` so clones are cheap —
//! this mirrors the paper's advice that deferrable buffers be encapsulated
//! behind handles.

use ad_support::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

use ad_support::sync::Mutex;

use crate::clock;
use crate::retry::Waiter;
use crate::snapshot::SnapshotCell;

/// Type-erased committed value.
pub(crate) type Value = Arc<dyn Any + Send + Sync>;

/// Helper to build a [`Value`] from a concrete type.
pub(crate) fn new_value<T: Any + Send + Sync>(v: T) -> Value {
    Arc::new(v)
}

/// The untyped core of a transactional variable.
pub(crate) struct VarCore {
    /// Even = commit timestamp of `value`; odd = write-locked.
    version: AtomicU64,
    /// The committed value: a lock-free atomic pointer, paired with
    /// `version` by the seqlock read protocol in [`read_consistent`]
    /// (Self::read_consistent).
    value: SnapshotCell,
    /// Threads parked in `retry` watching this variable.
    waiters: Mutex<Vec<Arc<Waiter>>>,
    /// Fast-path flag so commits skip the `waiters` mutex entirely when
    /// nobody is parked (the overwhelmingly common case).
    has_waiters: AtomicBool,
}

impl VarCore {
    pub(crate) fn new(initial: Value) -> Arc<Self> {
        Arc::new(VarCore {
            version: AtomicU64::new(clock::now()),
            value: SnapshotCell::new(initial),
            waiters: Mutex::new(Vec::new()),
            has_waiters: AtomicBool::new(false),
        })
    }

    /// Stable identity used as read/write-set key.
    #[inline]
    pub(crate) fn id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Current version word, for validation and watch lists.
    ///
    /// `Acquire` (not `SeqCst`) is enough for TL2 validation: a validator
    /// that observes an even version equal to the one it recorded needs to
    /// know the value it read earlier has not been superseded by a commit
    /// ordered before this load. Every commit stores the new version with
    /// `Release` *after* publishing the value, so an `Acquire` load that
    /// sees version `v` also sees the value committed at `v`; and a commit
    /// that *has* happened but is not yet visible here would carry a
    /// version `> v` or an odd lock word — either of which fails the
    /// comparison and aborts, which is always safe.
    #[inline]
    pub(crate) fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Take a version-consistent snapshot: returns `(version, value)` such
    /// that `value` was the committed value at `version` and `version` is
    /// even. Spins across concurrent commit write-backs (which are short).
    ///
    /// Lock-free: the value load is a single `Acquire` pointer read (plus
    /// an `Arc` clone) under the even/odd seqlock. If a writer swaps the
    /// pointer between `v1` and `v2`, the writer's preceding lock CAS (odd
    /// version) or its final version stamp is visible by the time the new
    /// pointer is (both are ordered before the `Release`-swapped pointer),
    /// so `v2 != v1` and the read retries.
    pub(crate) fn read_consistent(&self) -> (u64, Value) {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if clock::is_locked(v1) {
                std::hint::spin_loop();
                continue;
            }
            let val = self.value.load();
            let v2 = self.version.load(Ordering::Acquire);
            if v1 == v2 {
                return (v1, val);
            }
        }
    }

    /// Attempt to write-lock the cell for commit. On success returns the
    /// pre-lock (even) version, which the committer uses both for read-set
    /// validation and to restore on abort.
    pub(crate) fn try_lock(&self) -> Option<u64> {
        let v = self.version.load(Ordering::Acquire);
        if clock::is_locked(v) {
            return None;
        }
        self.version
            .compare_exchange(v, v | 1, Ordering::AcqRel, Ordering::Relaxed)
            .ok()
            .map(|_| v)
    }

    /// Undo `try_lock` without changing the value (commit failed
    /// validation).
    pub(crate) fn unlock_restore(&self, pre_lock_version: u64) {
        debug_assert!(!clock::is_locked(pre_lock_version));
        self.version.store(pre_lock_version, Ordering::Release);
    }

    /// Install a new committed value and release the write lock, stamping
    /// the cell with write version `wv`. Caller must hold the lock (odd
    /// version).
    pub(crate) fn write_back(&self, val: Value, wv: u64) {
        debug_assert!(clock::is_locked(self.version.load(Ordering::Relaxed)));
        debug_assert!(!clock::is_locked(wv));
        // Holding the version lock satisfies `SnapshotCell::store`'s
        // single-writer contract; the subsequent `Release` version stamp
        // publishes value and version together for `read_consistent`.
        self.value.store(val);
        self.version.store(wv, Ordering::Release);
    }

    /// Uninstrumented write used by serial/irrevocable transactions and by
    /// non-transactional `TVar::store`. Serial mode is exclusive, and
    /// non-transactional stores still follow the lock protocol, so
    /// concurrent speculative readers remain correct: they either see the
    /// old version or the new one, never a mix.
    pub(crate) fn direct_write(&self, val: Value) -> u64 {
        // Spin until we own the cell (contention here is rare: commit
        // write-backs and competing direct stores).
        let pre = loop {
            if let Some(pre) = self.try_lock() {
                break pre;
            }
            std::hint::spin_loop();
        };
        // Policy-independent stamp: covers the shared clock word, any
        // sharded cells, and this cell's pre-lock version, and publishes
        // before write-back — safe against readers under every policy.
        let wv = clock::nontx_tick(pre);
        self.write_back(val, wv);
        self.wake_waiters();
        wv
    }

    pub(crate) fn register_waiter(&self, w: Arc<Waiter>) {
        let mut guard = self.waiters.lock();
        guard.push(w);
        self.has_waiters.store(true, Ordering::Release);
    }

    /// Wake (and drop) every registered waiter. Called after a commit that
    /// wrote this variable.
    ///
    /// The `has_waiters` pre-check means a committer racing with a
    /// registration can miss a waiter that registered just after the check
    /// (a store-load race that acquire/release cannot close). That is
    /// benign: `wait_park` rechecks the watched versions after registering
    /// — our version bump is already published by then in the common case —
    /// and its bounded `park_timeout` recheck closes the residual window
    /// within a millisecond.
    pub(crate) fn wake_waiters(&self) {
        if !self.has_waiters.load(Ordering::Acquire) {
            return;
        }
        let drained: Vec<Arc<Waiter>> = {
            let mut guard = self.waiters.lock();
            self.has_waiters.store(false, Ordering::Relaxed);
            std::mem::take(&mut *guard)
        };
        for w in drained {
            w.wake();
        }
    }

    #[cfg(test)]
    pub(crate) fn force_version_for_test(&self, v: u64) {
        self.version.store(v, Ordering::SeqCst);
    }
}

/// A typed transactional variable.
///
/// Cloning a `TVar` clones the *handle*; both handles refer to the same
/// cell. All access from inside transactions goes through
/// [`Tx::read`](crate::Tx::read) / [`Tx::write`](crate::Tx::write);
/// [`TVar::load`] and [`TVar::store`] provide single-variable
/// non-transactional access (safe at any time, linearizable per variable)
/// for use outside transactions — e.g. from deferred operations that hold
/// the protecting `TxLock`.
pub struct TVar<T> {
    core: Arc<VarCore>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            core: Arc::clone(&self.core),
            _marker: PhantomData,
        }
    }
}

impl<T: Any + Send + Sync + Clone> TVar<T> {
    /// Create a new transactional variable holding `initial`.
    pub fn new(initial: T) -> Self {
        TVar {
            core: VarCore::new(new_value(initial)),
            _marker: PhantomData,
        }
    }

    /// Non-transactional consistent read of this single variable.
    pub fn load(&self) -> T {
        let (_, val) = self.core.read_consistent();
        downcast::<T>(&val)
    }

    /// Non-transactional write. Follows the version-lock protocol and bumps
    /// the global clock, so concurrent transactions that read this variable
    /// detect the change (their validation fails) and `retry`-waiters are
    /// woken — exactly the behaviour deferred operations rely on when they
    /// update fields of a locked deferrable object.
    pub fn store(&self, v: T) {
        self.core.direct_write(new_value(v));
        // Reclamation safe point (snapshot.rs invariant 5): `write_back`
        // restored an even version word before we got here, so freed
        // values may run user Drop code without deadlocking on this cell.
        // Serial in-transaction writes reach `direct_write` without this
        // flush (tx.rs) and drain at the runner's post-commit safe point.
        crate::snapshot::flush();
    }

    /// Read-modify-write convenience built on [`load`](Self::load)/
    /// [`store`](Self::store). **Not** atomic with respect to other writers;
    /// callers must hold the protecting `TxLock` (the deferred-operation
    /// contract) or otherwise have exclusive write access.
    pub fn update_locked(&self, f: impl FnOnce(T) -> T) {
        let cur = self.load();
        self.store(f(cur));
    }
}

impl<T> TVar<T> {
    /// Stable identity of the underlying cell (useful for debugging and for
    /// keying auxiliary tables).
    pub fn id(&self) -> usize {
        self.core.id()
    }

    pub(crate) fn core(&self) -> &Arc<VarCore> {
        &self.core
    }
}

impl<T: Any + Send + Sync + Clone + Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

impl<T> std::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TVar")
            .field("id", &(Arc::as_ptr(&self.core) as usize))
            .field("version", &self.core.version())
            .finish()
    }
}

/// Downcast a type-erased value to `T` and clone it out.
///
/// Panics only on an internal invariant violation (a `TVar<T>` cell can only
/// ever hold values written through `TVar<T>`).
pub(crate) fn downcast<T: Any + Send + Sync + Clone>(val: &Value) -> T {
    val.downcast_ref::<T>()
        .expect("ad-stm internal error: TVar value has wrong type")
        .clone()
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let v = TVar::new(41u64);
        assert_eq!(v.load(), 41);
        v.store(42);
        assert_eq!(v.load(), 42);
    }

    #[test]
    fn store_bumps_version() {
        let v = TVar::new(0u8);
        let before = v.core().version();
        v.store(1);
        assert!(v.core().version() > before);
        assert_eq!(v.core().version() % 2, 0);
    }

    #[test]
    fn clone_aliases_same_cell() {
        let a = TVar::new(String::from("x"));
        let b = a.clone();
        a.store(String::from("y"));
        assert_eq!(b.load(), "y");
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn try_lock_and_restore() {
        let v = TVar::new(7i32);
        let core = Arc::clone(v.core());
        let pre = core.try_lock().expect("unlocked cell must lock");
        assert!(core.try_lock().is_none(), "double lock must fail");
        core.unlock_restore(pre);
        assert_eq!(core.version(), pre);
        assert_eq!(v.load(), 7);
    }

    #[test]
    fn write_back_installs_value_and_version() {
        let v = TVar::new(1u32);
        let core = Arc::clone(v.core());
        core.try_lock().unwrap();
        let wv = crate::clock::tick(crate::clock::ClockPolicy::Gv2, 0, 0);
        core.write_back(new_value(99u32), wv);
        assert_eq!(v.load(), 99);
        assert_eq!(core.version(), wv);
    }

    #[test]
    fn update_locked_applies_function() {
        let v = TVar::new(10u64);
        v.update_locked(|x| x * 3);
        assert_eq!(v.load(), 30);
    }

    #[test]
    fn concurrent_nontransactional_stores_never_tear() {
        // Store (i, i) pairs from many threads; readers must never observe
        // a mixed pair.
        let v = TVar::new((0u64, 0u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut writers = Vec::new();
        for t in 0..4u64 {
            let v = v.clone();
            let stop = Arc::clone(&stop);
            writers.push(std::thread::spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    v.store((i, i));
                    i += 4;
                }
            }));
        }
        for _ in 0..50_000 {
            let (a, b) = v.load();
            assert_eq!(a, b, "torn read observed");
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn default_tvar() {
        let v: TVar<Vec<u8>> = TVar::default();
        assert!(v.load().is_empty());
    }

    #[test]
    fn debug_formatting_mentions_version() {
        let v = TVar::new(0u8);
        let s = format!("{v:?}");
        assert!(s.contains("TVar"));
        assert!(s.contains("version"));
    }
}
