//! Runtime policy configuration.
//!
//! A [`TmConfig`] captures the knobs the paper's evaluation varies: STM vs
//! (simulated) HTM execution, the contention manager's serialization
//! threshold (GCC defaults: 100 for STM, 2 for HTM — paper §2), whether
//! writers quiesce for privatization safety (§2), how `retry` waits
//! (§4.2), and which commit-clock policy stamps write versions
//! ([`ClockPolicy`], DESIGN.md §11).

pub use crate::clock::ClockPolicy;

/// How a transaction waits after `retry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Abort and poll the read set's versions, spinning/yielding — the
    /// paper's implementation ("aborting and immediately retrying, instead
    /// of de-scheduling the transaction", §6.1). Default, used for all
    /// figure reproductions.
    Spin,
    /// Park the thread on the read set and let the next conflicting
    /// committer unpark it — the "efficient retry" the paper wishes the C++
    /// TMTS provided. Exercised by the `retry_ablation` bench.
    Park,
}

/// Execution mode: real STM or simulated best-effort HTM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Software TM: invisible readers, commit-time validation, quiescence.
    Stm,
    /// Simulated best-effort hardware TM (substitution for Intel TSX, see
    /// DESIGN.md §5): capacity-bounded footprint, no quiescence, unsafe
    /// operations abort, low retry budget before the serial fallback lock.
    HtmSim(HtmConfig),
}

/// Parameters of the simulated HTM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtmConfig {
    /// Maximum tracked footprint in bytes before a
    /// [`Capacity`](crate::StmError::Capacity) abort. Models the L1-bounded write set of
    /// real best-effort HTM. Default 32 KiB.
    pub capacity_bytes: u64,
    /// Footprint charged per distinct transactional variable accessed
    /// (models one cache line per word-sized location). Default 64.
    pub bytes_per_access: u64,
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig {
            capacity_bytes: 32 * 1024,
            bytes_per_access: 64,
        }
    }
}

/// Where deferred operations run after commit (DESIGN.md §10).
///
/// Atomicity of a deferred op is guaranteed by two-phase locking — its
/// `TxLock`s are acquired atomically with the commit and released only when
/// the op completes — *not* by which thread executes it. That makes the
/// execution venue a pluggable policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeferExecCfg {
    /// Run deferred ops in commit order on the committing thread, before
    /// `atomically` returns. The default: zero infrastructure, and the
    /// caller observes synchronous completion (an acked op is done).
    Inline,
    /// Hand each committed batch to a bounded-queue worker pool
    /// (`ad_support::pool`). The committing thread returns right after
    /// write-back + quiescence; a worker runs the ops and releases their
    /// `TxLock`s on completion, preserving the 2PL shrinking phase. When
    /// the queue is full, the committer runs the batch inline instead of
    /// blocking (counted in `defer_inline_fallbacks`): under saturation
    /// the executor degrades to inline cost rather than stacking
    /// queue-wait on top of it (DESIGN.md §10 "Backpressure").
    Pool {
        /// Worker threads (clamped to at least 1).
        workers: usize,
        /// Bounded queue capacity in batches (clamped to at least 1).
        queue_cap: usize,
    },
    /// Like [`DeferExecCfg::Pool`], but the worker count autoscales within
    /// `[min_workers, max_workers]` from queue-depth feedback: a submit
    /// that finds queued batches outnumbering parked workers spawns one
    /// more (saturation — the condition that makes `defer_queue_wait_ns`
    /// climb), and a surplus worker idle past `idle_timeout_ms` with an
    /// empty queue retires itself. Backpressure is unchanged: a full queue
    /// still runs the batch inline on the committer.
    AutoPool {
        /// Worker-count floor (clamped to at least 1); spawned at startup.
        min_workers: usize,
        /// Worker-count ceiling (clamped to at least `min_workers`).
        max_workers: usize,
        /// Bounded queue capacity in batches (clamped to at least 1).
        queue_cap: usize,
        /// How long a surplus worker idles before retiring, in
        /// milliseconds.
        idle_timeout_ms: u64,
    },
}

impl DeferExecCfg {
    /// True when deferred ops are offloaded to a worker pool (fixed or
    /// autoscaling).
    pub fn is_pool(&self) -> bool {
        matches!(
            self,
            DeferExecCfg::Pool { .. } | DeferExecCfg::AutoPool { .. }
        )
    }
}

/// Complete policy configuration for a [`Runtime`](crate::Runtime).
#[derive(Debug, Clone, Copy)]
pub struct TmConfig {
    /// STM or simulated HTM.
    pub mode: Mode,
    /// Number of failed attempts (conflict/capacity/unsupported) after which
    /// the contention manager escalates to serial, irrevocable execution.
    pub serialize_after: u32,
    /// Whether writer commits quiesce (wait for all concurrent transactions
    /// that started earlier). Required for privatization safety in the C++
    /// TMTS model; switchable here for the quiescence ablation.
    pub quiesce: bool,
    /// How `retry` waits.
    pub retry_policy: RetryPolicy,
    /// Upper bound on contention-manager backoff spins (exponential from 64).
    pub max_backoff_spins: u32,
    /// Capacity, in events, of each thread's trace ring (rounded up to a
    /// power of two, minimum 2). Older events are overwritten once the ring
    /// wraps between drains; `Trace::dropped` counts the overwritten ones.
    /// Smaller rings cost less memory per thread, larger ones survive
    /// longer gaps between `Runtime::take_trace` calls. Default 16384.
    pub trace_ring_events: usize,
    /// Spill ring overflow to the heap instead of dropping it: when a
    /// thread's ring wraps between drains, the overwritten event is
    /// copied into an unbounded per-thread heap vector (mutex-guarded,
    /// touched only on overflow) and merged back in by
    /// `Runtime::take_trace` — lossless tracing at the cost of
    /// unbounded memory on a runaway gap. Off by default: the ring's
    /// fixed footprint and drop accounting are the production posture;
    /// spill is for capture-everything debugging and short experiments.
    pub trace_spill: bool,
    /// Where deferred operations run after commit: inline on the committing
    /// thread (default) or offloaded to a bounded worker pool.
    pub defer_exec: DeferExecCfg,
    /// Commit-clock policy: how writer commits acquire version timestamps.
    /// `Gv2` (default) is the paper-faithful TL2 clock; `Sloppy` and
    /// `Sharded` trade timestamp uniqueness for commit-path scalability
    /// (DESIGN.md §11).
    pub clock: ClockPolicy,
}

impl TmConfig {
    /// GCC-libitm-like STM defaults: serialize after 100 attempts, quiesce
    /// on, spin retry.
    pub fn stm() -> Self {
        TmConfig {
            mode: Mode::Stm,
            serialize_after: 100,
            quiesce: true,
            retry_policy: RetryPolicy::Spin,
            max_backoff_spins: 1 << 14,
            trace_ring_events: 1 << 14,
            trace_spill: false,
            defer_exec: DeferExecCfg::Inline,
            clock: ClockPolicy::Gv2,
        }
    }

    /// Simulated-HTM defaults: serialize after 2 attempts (GCC's HTM
    /// default), no quiescence (hardware TM does not need it).
    pub fn htm() -> Self {
        TmConfig {
            mode: Mode::HtmSim(HtmConfig::default()),
            serialize_after: 2,
            quiesce: false,
            retry_policy: RetryPolicy::Spin,
            max_backoff_spins: 1 << 10,
            trace_ring_events: 1 << 14,
            trace_spill: false,
            defer_exec: DeferExecCfg::Inline,
            clock: ClockPolicy::Gv2,
        }
    }

    /// Builder-style override of the serialization threshold.
    pub fn with_serialize_after(mut self, attempts: u32) -> Self {
        self.serialize_after = attempts;
        self
    }

    /// Builder-style override of quiescence.
    pub fn with_quiesce(mut self, on: bool) -> Self {
        self.quiesce = on;
        self
    }

    /// Builder-style override of the retry policy.
    pub fn with_retry_policy(mut self, p: RetryPolicy) -> Self {
        self.retry_policy = p;
        self
    }

    /// Builder-style override of the simulated HTM capacity (no-op in STM
    /// mode).
    pub fn with_htm_capacity(mut self, bytes: u64) -> Self {
        if let Mode::HtmSim(ref mut h) = self.mode {
            h.capacity_bytes = bytes;
        }
        self
    }

    /// Builder-style override of the per-thread trace ring capacity (in
    /// events; rounded up to a power of two, minimum 2, at ring creation).
    pub fn with_trace_ring(mut self, events: usize) -> Self {
        self.trace_ring_events = events;
        self
    }

    /// Builder-style override of the ring-overflow spill (see
    /// [`TmConfig::trace_spill`]).
    pub fn with_trace_spill(mut self, on: bool) -> Self {
        self.trace_spill = on;
        self
    }

    /// Builder-style switch to the worker-pool deferred-op executor.
    /// `workers`/`queue_cap` are clamped to at least 1 at pool creation.
    pub fn with_defer_pool(mut self, workers: usize, queue_cap: usize) -> Self {
        self.defer_exec = DeferExecCfg::Pool { workers, queue_cap };
        self
    }

    /// Builder-style switch to the *autoscaling* worker-pool executor:
    /// worker count floats in `[min_workers, max_workers]` on queue-depth
    /// feedback with a 100 ms idle-retirement timeout (see
    /// [`DeferExecCfg::AutoPool`] for the policy).
    pub fn with_defer_autoscale(
        mut self,
        min_workers: usize,
        max_workers: usize,
        queue_cap: usize,
    ) -> Self {
        self.defer_exec = DeferExecCfg::AutoPool {
            min_workers,
            max_workers,
            queue_cap,
            idle_timeout_ms: 100,
        };
        self
    }

    /// Builder-style override of the deferred-op executor.
    pub fn with_defer_exec(mut self, exec: DeferExecCfg) -> Self {
        self.defer_exec = exec;
        self
    }

    /// Builder-style override of the commit-clock policy.
    pub fn with_clock(mut self, clock: ClockPolicy) -> Self {
        self.clock = clock;
        self
    }

    /// True when running as simulated HTM.
    pub fn is_htm(&self) -> bool {
        matches!(self.mode, Mode::HtmSim(_))
    }
}

impl Default for TmConfig {
    fn default() -> Self {
        TmConfig::stm()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn stm_defaults_match_gcc() {
        let c = TmConfig::stm();
        assert_eq!(c.serialize_after, 100);
        assert!(c.quiesce);
        assert!(!c.is_htm());
        assert_eq!(
            c.defer_exec,
            DeferExecCfg::Inline,
            "Inline must stay the default"
        );
        assert_eq!(c.clock, ClockPolicy::Gv2, "Gv2 must stay the default");
    }

    #[test]
    fn htm_defaults_match_gcc() {
        let c = TmConfig::htm();
        assert_eq!(c.serialize_after, 2);
        assert!(!c.quiesce);
        assert!(c.is_htm());
    }

    #[test]
    fn builders_compose() {
        let c = TmConfig::htm()
            .with_serialize_after(5)
            .with_quiesce(true)
            .with_retry_policy(RetryPolicy::Park)
            .with_htm_capacity(1024)
            .with_trace_ring(256)
            .with_defer_pool(2, 32)
            .with_clock(ClockPolicy::Sloppy);
        assert_eq!(c.serialize_after, 5);
        assert_eq!(c.clock, ClockPolicy::Sloppy);
        assert!(c.quiesce);
        assert_eq!(c.retry_policy, RetryPolicy::Park);
        assert_eq!(c.trace_ring_events, 256);
        assert_eq!(
            c.defer_exec,
            DeferExecCfg::Pool {
                workers: 2,
                queue_cap: 32
            }
        );
        match c.mode {
            Mode::HtmSim(h) => assert_eq!(h.capacity_bytes, 1024),
            _ => panic!("expected HTM mode"),
        }
    }

    #[test]
    fn autoscale_builder_sets_bounds() {
        let c = TmConfig::stm().with_defer_autoscale(1, 8, 64);
        assert!(c.defer_exec.is_pool());
        assert_eq!(
            c.defer_exec,
            DeferExecCfg::AutoPool {
                min_workers: 1,
                max_workers: 8,
                queue_cap: 64,
                idle_timeout_ms: 100
            }
        );
    }

    #[test]
    fn htm_capacity_override_is_noop_for_stm() {
        let c = TmConfig::stm().with_htm_capacity(1);
        assert!(!c.is_htm());
    }
}
