//! The transaction descriptor: read/write sets, snapshot management,
//! commit, and the post-commit hooks that `ad-defer` builds atomic deferral
//! on.
//!
//! Speculative transactions are TL2-style with lazy versioning: reads are
//! invisible (validated at commit), writes are buffered and written back
//! under per-variable version locks. Serial transactions (irrevocability,
//! paper §2) execute with the runtime's serial lock held exclusively and
//! access memory directly.
//!
//! ## Descriptor reuse
//!
//! A `Tx` does not own its collections: it borrows a [`TxBuffers`] bundle
//! that the runner checks out of a thread-local pool once per
//! `atomically` call and threads through every attempt. Re-executing after
//! a conflict therefore allocates nothing — the read set, read cache,
//! write set and commit scratch vectors are cleared, not dropped, and
//! their capacities persist across attempts *and* across transactions on
//! the same thread. The read and write sets are [`SmallMap`]s: inline
//! linear scans at the common small sizes, hash maps only when a
//! transaction grows past [`crate::smallmap::INLINE_CAP`] variables.

use std::any::Any;
use std::cell::RefCell;
use std::sync::Arc;

use crate::clock;
use crate::clock::ClockPolicy;
use crate::config::Mode;
use crate::error::{StmError, StmResult};
use crate::fxhash::FxHashSet;
use crate::registry::ActivitySlot;
use crate::retry::WatchList;
use crate::runtime::Runtime;
use crate::smallmap::SmallMap;
use crate::var::{downcast, new_value, TVar, Value, VarCore};

/// A post-commit action queued by [`Tx::defer_post_commit`]. Receives the
/// runtime so deferred operations can run follow-up transactions (e.g.
/// releasing the `TxLock`s they held).
pub type PostCommitFn = Box<dyn FnOnce(&Runtime) + Send>;

/// How this transaction executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecMode {
    /// Optimistic, abort-and-retry execution.
    Speculative,
    /// Exclusive, irrevocable execution under the serial lock.
    Serial,
}

/// Everything a successful commit hands back to the runner to execute
/// outside the transaction, in order: deferred operations first, then
/// deferred frees (the paper's `tm_free_list`, Listing 1).
pub(crate) struct CommitOutput {
    pub(crate) actions: Vec<PostCommitFn>,
    pub(crate) drops: Vec<Box<dyn Any + Send>>,
    /// Observability: per-action enqueue timestamps (trace clock, ns),
    /// index-aligned with `actions`. Empty when tracing was off during the
    /// committing attempt; feeds the defer queue-to-completion histogram.
    pub(crate) enqueue_ts: Vec<u64>,
}

impl CommitOutput {
    /// True when there is no post-commit work at all — the common
    /// no-defer transaction, which must never touch the executor.
    pub(crate) fn is_empty(&self) -> bool {
        self.actions.is_empty() && self.drops.is_empty()
    }
}

/// The reusable allocations of a transaction descriptor. One bundle lives
/// per thread (in a pool slot); [`Tx::new`] clears it at the start of each
/// attempt, so retries and subsequent transactions run allocation-free
/// once the capacities are warm.
pub(crate) struct TxBuffers {
    /// Variables read, with the version observed. In serial mode this only
    /// feeds the `retry` watch list.
    read_set: Vec<(Arc<VarCore>, u64)>,
    /// First-read values, so re-reads observe a stable snapshot (opacity).
    read_cache: SmallMap<Value>,
    /// Buffered writes (speculative mode only).
    write_set: SmallMap<(Arc<VarCore>, Value)>,
    /// Deferred operations queued by `atomic_defer` (via ad-defer).
    post_commit: Vec<PostCommitFn>,
    /// Enqueue timestamps aligned with `post_commit` (tracing only).
    post_commit_ts: Vec<u64>,
    /// Deferred frees: values whose destruction is delayed until after the
    /// deferred operations have run.
    drops: Vec<Box<dyn Any + Send>>,
    /// Simulated-HTM footprint accounting.
    footprint_vars: FxHashSet<usize>,
    /// Commit scratch: the write set drained into address order.
    entries: Vec<(usize, Arc<VarCore>, Value)>,
    /// Commit scratch: pre-lock versions, index-aligned with `entries`.
    /// Replaces the per-commit `pre_lock` hash map — validation does a
    /// binary search over the sorted `entries` instead.
    locked: Vec<u64>,
}

impl TxBuffers {
    fn new_boxed() -> Box<TxBuffers> {
        Box::new(TxBuffers {
            read_set: Vec::new(),
            read_cache: SmallMap::default(),
            write_set: SmallMap::default(),
            post_commit: Vec::new(),
            post_commit_ts: Vec::new(),
            drops: Vec::new(),
            footprint_vars: FxHashSet::default(),
            entries: Vec::new(),
            locked: Vec::new(),
        })
    }

    /// Clear every collection, keeping capacities.
    fn reset(&mut self) {
        self.read_set.clear();
        self.read_cache.clear();
        self.write_set.clear();
        self.post_commit.clear();
        self.post_commit_ts.clear();
        self.drops.clear();
        self.footprint_vars.clear();
        self.entries.clear();
        self.locked.clear();
    }

    /// Take back the read-set vector a [`WatchList`] borrowed from us, so
    /// the retry path keeps its capacity too.
    pub(crate) fn recycle_watch(&mut self, watch: WatchList) {
        self.read_set = watch.into_entries();
        self.read_set.clear();
    }
}

thread_local! {
    /// One pooled descriptor per thread. A single slot suffices because
    /// transactions never nest on a thread (enforced by the runner); a
    /// post-commit action starting a new transaction simply finds the slot
    /// empty and allocates — its bundle is pooled afterwards.
    static POOL: RefCell<Option<Box<TxBuffers>>> = const { RefCell::new(None) };
}

/// Check a descriptor bundle out of the thread-local pool (or allocate).
pub(crate) fn take_buffers() -> Box<TxBuffers> {
    POOL.try_with(|p| p.borrow_mut().take())
        .ok()
        .flatten()
        .unwrap_or_else(TxBuffers::new_boxed)
}

/// Return a bundle to the pool for the next transaction on this thread.
pub(crate) fn put_buffers(bufs: Box<TxBuffers>) {
    let _ = POOL.try_with(move |p| *p.borrow_mut() = Some(bufs));
}

/// An in-flight transaction. Handed to the closure run by
/// [`Runtime::atomically`](crate::Runtime::atomically); all transactional
/// reads and writes go through it.
pub struct Tx<'rt> {
    rt: &'rt Runtime,
    mode: ExecMode,
    /// Execution mode cached from the runtime config at attempt start, so
    /// per-access footprint checks don't re-read the shared config.
    cfg_mode: Mode,
    /// Quiescence policy, cached likewise for commit.
    cfg_quiesce: bool,
    /// Commit-clock policy, cached likewise: decides how `rv`/`wv` are
    /// acquired and whether the `wv == rv + 2` validation skip is sound.
    cfg_clock: ClockPolicy,
    /// Read version: the snapshot timestamp (TL2 `rv`).
    rv: u64,
    /// Pooled collections (see [`TxBuffers`]).
    bufs: &'rt mut TxBuffers,
    /// Simulated-HTM footprint accounting.
    footprint: u64,
    /// Serial mode: has the closure performed (unrecoverable) writes?
    serial_wrote: bool,
    /// Observability toggle, cached at attempt start so per-event checks
    /// are a register test, not an atomic load.
    obs: bool,
    /// Whether this runtime offloads deferred ops to the worker pool,
    /// cached at attempt start (see [`Tx::defer_batch_token`]).
    cfg_defer_pool: bool,
    /// Lazily allocated batch token (see [`Tx::defer_batch_token`]); `None`
    /// until the first deferred op asks for it, so transactions that never
    /// defer pay nothing.
    defer_token: Option<u64>,
    slot: Arc<ActivitySlot>,
}

impl<'rt> Tx<'rt> {
    /// `started`: the attempt-start timestamp when tracing is on (`None`
    /// exactly when tracing is off) — reused as the `Begin` event's stamp
    /// so a traced attempt doesn't pay a second clock read here.
    pub(crate) fn new(
        rt: &'rt Runtime,
        bufs: &'rt mut TxBuffers,
        slot: Arc<ActivitySlot>,
        serial: bool,
        started: Option<u64>,
    ) -> Self {
        bufs.reset();
        let obs = started.is_some();
        let cfg = rt.config();
        // Serial transactions access memory directly and only use `rv` for
        // quiescence bookkeeping; the shared word is a safe (stale-low)
        // bound under every policy.
        let rv = if serial {
            clock::now()
        } else {
            clock::begin(cfg.clock)
        };
        if let Some(t0) = started {
            rt.trace_event_at(t0, crate::trace::EventKind::Begin, rv);
        }
        Tx {
            rt,
            mode: if serial {
                ExecMode::Serial
            } else {
                ExecMode::Speculative
            },
            cfg_mode: cfg.mode,
            cfg_quiesce: cfg.quiesce,
            cfg_clock: cfg.clock,
            rv,
            bufs,
            footprint: 0,
            serial_wrote: false,
            obs,
            cfg_defer_pool: cfg.defer_exec.is_pool(),
            defer_token: None,
            slot,
        }
    }

    /// The runtime this transaction belongs to.
    pub fn runtime(&self) -> &Runtime {
        self.rt
    }

    /// The snapshot timestamp of this transaction attempt.
    pub fn read_version(&self) -> u64 {
        self.rv
    }

    /// Read a transactional variable (clones the value out).
    pub fn read<T: Any + Send + Sync + Clone>(&mut self, var: &TVar<T>) -> StmResult<T> {
        let val = self.read_value(var.core())?;
        Ok(downcast::<T>(&val))
    }

    /// Read a transactional variable without cloning its contents: returns
    /// a shared handle to the snapshot value. Useful for large values
    /// (buffers, collections) where [`Tx::read`]'s clone would be costly.
    /// The handle stays valid after commit/abort — it is a snapshot, not a
    /// reference into the variable.
    pub fn read_arc<T: Any + Send + Sync>(&mut self, var: &TVar<T>) -> StmResult<Arc<T>> {
        let val = self.read_value(var.core())?;
        Ok(val
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("ad-stm internal error: TVar value has wrong type")))
    }

    /// The common read path: consistent snapshot + read-set bookkeeping,
    /// returning the type-erased value.
    fn read_value(&mut self, core: &Arc<VarCore>) -> StmResult<Value> {
        if self.mode == ExecMode::Serial {
            let (v, val) = core.read_consistent();
            self.bufs.read_set.push((Arc::clone(core), v));
            return Ok(val);
        }
        let id = core.id();
        self.charge_var_access(id)?;
        if let Some((_, val)) = self.bufs.write_set.get(id) {
            return Ok(val.clone());
        }
        if let Some(val) = self.bufs.read_cache.get(id) {
            return Ok(val.clone());
        }
        let (v1, val) = core.read_consistent();
        if v1 > self.rv {
            self.extend_snapshot(v1)?;
            debug_assert!(v1 <= self.rv);
        }
        self.bufs.read_set.push((Arc::clone(core), v1));
        self.bufs.read_cache.insert(id, val.clone());
        if self.obs {
            // Sampled at power-of-two sizes from 32 up: a large read-only
            // scan leaves a growth curve, while short transactions — whose
            // read sets are visible from their shape anyway — don't pay an
            // event per read (n=1 is a power of two; emitting there added
            // a third ring entry to every single-read transaction, a
            // measurable slice of the tracing-on budget).
            let n = self.bufs.read_set.len();
            if n >= 32 && n.is_power_of_two() {
                self.rt
                    .trace_event(crate::trace::EventKind::ReadSetGrow, n as u64);
            }
        }
        Ok(val)
    }

    /// Write a transactional variable. Buffered until commit in speculative
    /// mode; immediate (and unrecoverable) in serial mode.
    pub fn write<T: Any + Send + Sync + Clone>(
        &mut self,
        var: &TVar<T>,
        value: T,
    ) -> StmResult<()> {
        let core = var.core();
        if self.mode == ExecMode::Serial {
            core.direct_write(new_value(value));
            self.serial_wrote = true;
            return Ok(());
        }
        let id = core.id();
        self.charge_var_access(id)?;
        self.bufs
            .write_set
            .insert(id, (Arc::clone(core), new_value(value)));
        Ok(())
    }

    /// Read-modify-write helper.
    pub fn modify<T: Any + Send + Sync + Clone>(
        &mut self,
        var: &TVar<T>,
        f: impl FnOnce(T) -> T,
    ) -> StmResult<()> {
        let cur = self.read(var)?;
        self.write(var, f(cur))
    }

    /// Block (abort and wait) until some variable in the read set changes —
    /// Harris et al.'s `retry` (paper §2). Typed as returning any `T` so it
    /// can tail a closure of any result type.
    pub fn retry<T>(&mut self) -> StmResult<T> {
        Err(StmError::Retry)
    }

    /// Harris et al.'s `orElse` combinator (the same paper `retry` comes
    /// from, cited in §2): run `first`; if it blocks with `retry`, discard
    /// its buffered effects and run `second` instead. If `second` also
    /// retries, the transaction waits on the union of both branches' read
    /// sets — whichever branch's condition changes first re-executes the
    /// whole transaction.
    ///
    /// Reads performed by the abandoned first branch stay in the read set:
    /// that is what makes the combined wait correct, at the cost of some
    /// false conflicts.
    ///
    /// In an irrevocable transaction the first branch must not write before
    /// retrying (eager serial writes cannot be discarded); this is the same
    /// blocking-before-writes discipline all serial-mode code follows.
    pub fn or_else<T>(
        &mut self,
        first: impl FnOnce(&mut Tx<'rt>) -> StmResult<T>,
        second: impl FnOnce(&mut Tx<'rt>) -> StmResult<T>,
    ) -> StmResult<T> {
        if self.mode == ExecMode::Serial {
            let wrote_before = self.serial_wrote;
            return match first(self) {
                Err(StmError::Retry) => {
                    assert!(
                        self.serial_wrote == wrote_before,
                        "or_else: first branch wrote before retrying in an \
                         irrevocable transaction"
                    );
                    second(self)
                }
                other => other,
            };
        }
        // Snapshot the transaction's buffered effects; reads are kept.
        let write_snapshot = self.bufs.write_set.clone();
        let post_commit_len = self.bufs.post_commit.len();
        let drops_len = self.bufs.drops.len();
        match first(self) {
            Err(StmError::Retry) => {
                self.bufs.write_set = write_snapshot;
                self.bufs.post_commit.truncate(post_commit_len);
                self.bufs.post_commit_ts.truncate(post_commit_len);
                self.bufs.drops.truncate(drops_len);
                second(self)
            }
            other => other,
        }
    }

    /// Require irrevocable (serial) execution for the rest of the
    /// transaction — the TMTS `synchronized` semantics. In a speculative
    /// context this aborts and re-executes serially; in serial mode it is a
    /// no-op. Call before performing I/O or other unrecoverable effects.
    pub fn require_irrevocable(&mut self) -> StmResult<()> {
        match self.mode {
            ExecMode::Serial => Ok(()),
            ExecMode::Speculative => Err(StmError::Unsupported),
        }
    }

    /// Is this transaction running irrevocably?
    pub fn is_irrevocable(&self) -> bool {
        self.mode == ExecMode::Serial
    }

    /// Queue an action to run after this transaction commits (and, for
    /// writers, after quiescence), in queue order. The building block for
    /// `atomic_defer`: `ad-defer` queues the deferred operation plus the
    /// release of its `TxLock`s here. Discarded if the transaction aborts.
    pub fn defer_post_commit(&mut self, f: PostCommitFn) {
        if self.obs {
            let idx = self.bufs.post_commit.len() as u64;
            self.bufs.post_commit_ts.push(crate::trace::now_ns());
            self.rt
                .trace_event(crate::trace::EventKind::DeferEnqueue, idx);
        }
        self.bufs.post_commit.push(f);
    }

    /// The deferred-op *batch token* for this transaction attempt, or
    /// `None` when the runtime runs deferred ops inline.
    ///
    /// Under the `Pool` executor a deferred op's `TxLock`s are held by the
    /// *batch*, not by the committing OS thread: the committing thread
    /// acquires them under this token at commit and a worker (impersonating
    /// the token) releases them when the op completes. The token is
    /// process-unique and lazily allocated once per transaction attempt, so
    /// every deferred op of one transaction shares it (their lock sets may
    /// overlap reentrantly) and transactions that never defer pay nothing.
    ///
    /// The value is namespaced by the caller (`ad-defer` maps it into the
    /// high half of its owner-id space); this method only guarantees
    /// process-uniqueness and per-attempt stability.
    pub fn defer_batch_token(&mut self) -> Option<u64> {
        if !self.cfg_defer_pool {
            return None;
        }
        Some(*self.defer_token.get_or_insert_with(|| {
            use ad_support::sync::atomic::{AtomicU64, Ordering};
            static NEXT_DEFER_TOKEN: AtomicU64 = AtomicU64::new(1);
            NEXT_DEFER_TOKEN.fetch_add(1, Ordering::Relaxed)
        }))
    }

    /// The batch token this transaction has already allocated via
    /// [`defer_batch_token`](Self::defer_batch_token), without allocating
    /// one. Lock implementations use this to recognize an owner value the
    /// transaction itself buffered under its batch owner — e.g. a
    /// subscribe after an `atomic_defer` on the same object must treat
    /// "held by my own batch" as "held by me", or the transaction would
    /// block on its own uncommitted acquisition.
    pub fn defer_batch_token_peek(&self) -> Option<u64> {
        if !self.cfg_defer_pool {
            return None;
        }
        self.defer_token
    }

    /// Queue a value to be dropped after all post-commit actions have run —
    /// the paper's delayed `tm_free_list` (Listing 1): deferred operations
    /// may refer to memory the transaction logically freed, so its
    /// reclamation must wait for them.
    pub fn defer_drop(&mut self, v: Box<dyn Any + Send>) {
        self.bufs.drops.push(v);
    }

    /// Charge additional simulated-HTM footprint, in bytes. Workloads call
    /// this to model the *data* footprint of computations inside hardware
    /// transactions (e.g. dedup's `Compress` touching a whole buffer, paper
    /// §6.2). No-op for STM and for the serial fallback path, where real
    /// HTM runs non-speculatively.
    pub fn account_footprint(&mut self, bytes: u64) -> StmResult<()> {
        if self.mode == ExecMode::Serial {
            return Ok(());
        }
        if let Mode::HtmSim(h) = self.cfg_mode {
            self.footprint += bytes;
            if self.footprint > h.capacity_bytes {
                return Err(StmError::Capacity);
            }
        }
        Ok(())
    }

    /// Footprint charged so far (simulated HTM; 0 otherwise).
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// Charge the per-variable cost for a newly accessed variable.
    fn charge_var_access(&mut self, id: usize) -> StmResult<()> {
        if let Mode::HtmSim(h) = self.cfg_mode {
            if self.bufs.footprint_vars.insert(id) {
                self.footprint += h.bytes_per_access;
                if self.footprint > h.capacity_bytes {
                    return Err(StmError::Capacity);
                }
            }
        }
        Ok(())
    }

    /// Snapshot extension: move `rv` forward if the entire read set still
    /// validates; otherwise the snapshot is broken and the transaction
    /// conflicts. `witness` is the version that exceeded the old `rv`; the
    /// clock policy guarantees the refreshed `rv` covers it (under `Sloppy`
    /// by bumping the shared clock word — the policy's lazy progress).
    fn extend_snapshot(&mut self, witness: u64) -> StmResult<()> {
        let (new_rv, bumped) = clock::refresh(self.cfg_clock, witness);
        if bumped {
            self.rt.stats_ref().on_clock_bump();
            if self.obs {
                self.rt
                    .trace_event(crate::trace::EventKind::ClockBump, new_rv);
            }
        }
        for (core, seen) in &self.bufs.read_set {
            let cur = core.version();
            if clock::is_locked(cur) || cur != *seen {
                if self.obs {
                    self.rt
                        .trace_event(crate::trace::EventKind::ValidateFail, core.id() as u64);
                }
                return Err(StmError::Conflict);
            }
        }
        self.rv = new_rv;
        self.slot.extend(new_rv);
        self.rt.stats_ref().on_validation_extend();
        if self.obs {
            self.rt
                .trace_event(crate::trace::EventKind::ValidationExtend, new_rv);
        }
        Ok(())
    }

    /// The read set as a watch list for `retry` waiting. Moves the read
    /// set out of the descriptor (no clone); the runner hands the vector
    /// back via [`TxBuffers::recycle_watch`] after the wait.
    pub(crate) fn watch_list(&mut self) -> WatchList {
        WatchList::new(std::mem::take(&mut self.bufs.read_set))
    }

    pub(crate) fn serial_wrote(&self) -> bool {
        self.serial_wrote
    }

    /// Number of distinct variables written (diagnostics/tests).
    pub fn write_set_len(&self) -> usize {
        self.bufs.write_set.len()
    }

    /// Number of read-set entries (diagnostics/tests).
    pub fn read_set_len(&self) -> usize {
        self.bufs.read_set.len()
    }

    /// Attempt to commit a speculative transaction. On success the caller
    /// receives the post-commit work; on `Conflict` every variable lock has
    /// been restored and the transaction must re-execute.
    ///
    /// Allocation-free: the sorted entry list and pre-lock versions live in
    /// pooled scratch vectors, and read-set validation binary-searches the
    /// address-sorted entries instead of building a hash map.
    ///
    /// Serial transactions use [`Tx::finish_serial`] instead.
    pub(crate) fn commit(&mut self) -> StmResult<CommitOutput> {
        debug_assert_eq!(self.mode, ExecMode::Speculative);

        if self.bufs.write_set.is_empty() {
            // Read-only: the snapshot was kept consistent throughout, so the
            // transaction serializes at its (possibly extended) rv. No
            // clock tick, no quiescence (paper §2: only *writing*
            // transactions quiesce).
            self.slot.end();
            return Ok(self.take_output());
        }

        let obs = self.obs;
        let rt = self.rt;
        let TxBuffers {
            read_set,
            write_set,
            entries,
            locked,
            ..
        } = &mut *self.bufs;

        // Phase 1: lock the write set in a canonical (address) order so
        // concurrent committers cannot deadlock.
        entries.clear();
        entries.extend(write_set.drain().map(|(id, (core, val))| (id, core, val)));
        entries.sort_unstable_by_key(|(id, _, _)| *id);

        locked.clear();
        let mut max_pre = 0u64;
        for (i, (_, core, _)) in entries.iter().enumerate() {
            match core.try_lock() {
                Some(pre) => {
                    if pre > max_pre {
                        max_pre = pre;
                    }
                    locked.push(pre)
                }
                None => {
                    if obs {
                        rt.trace_event(crate::trace::EventKind::ValidateFail, core.id() as u64);
                    }
                    for (j, pre) in locked.iter().enumerate().take(i) {
                        entries[j].1.unlock_restore(*pre);
                    }
                    return Err(StmError::Conflict);
                }
            }
        }

        // Phase 2: acquire a write version under the configured clock
        // policy (after locking: sloppy/sharded stamps must cover the
        // locked cells' pre-lock versions to stay per-variable monotone).
        let wv = clock::tick(self.cfg_clock, self.rv, max_pre);

        // Phase 3: validate the read set (unless nobody else committed
        // since our snapshot — the TL2 fast path). `wv == rv + 2` only
        // implies that under Gv2, whose RMW makes timestamps unique;
        // sloppy/sharded writers may share `wv` and must always validate.
        if self.cfg_clock != ClockPolicy::Gv2 || wv != self.rv + 2 {
            for (core, seen) in read_set.iter() {
                let ok = match entries.binary_search_by_key(&core.id(), |(id, _, _)| *id) {
                    // We hold this lock: compare against its pre-lock version.
                    Ok(i) => locked[i] == *seen,
                    Err(_) => {
                        let cur = core.version();
                        !clock::is_locked(cur) && cur == *seen
                    }
                };
                if !ok {
                    if obs {
                        rt.trace_event(crate::trace::EventKind::ValidateFail, core.id() as u64);
                    }
                    for (i, pre) in locked.iter().enumerate() {
                        entries[i].1.unlock_restore(*pre);
                    }
                    return Err(StmError::Conflict);
                }
            }
        }

        // Phase 4: write back and release, stamping wv. (The Arc clone per
        // entry is a refcount bump, not an allocation; `entries` is cleared
        // after the waiter wakeups below.)
        for (_, core, val) in entries.iter() {
            core.write_back(val.clone(), wv);
        }

        // The transaction is durably committed: it is no longer a hazard to
        // privatizers, so clear the activity slot *before* quiescing (also
        // prevents two quiescing writers from waiting on each other).
        self.slot.end();
        // Sharded policy: this thread's next transactions may begin at wv
        // without scanning (sound — clock.rs module docs).
        clock::note_commit(self.cfg_clock, wv);

        // Phase 5: wake retry-waiters watching the written variables.
        for (_, core, _) in entries.iter() {
            core.wake_waiters();
        }
        entries.clear();

        // Phase 6: quiesce (privatization safety, paper §2) — wait for all
        // transactions that started before wv. Simulated HTM skips this:
        // hardware transactions are never observed mid-cleanup.
        if self.cfg_quiesce {
            let ns = self.rt.registry().quiesce(wv, &self.slot);
            // Zero-wait quiescence (no older transaction in flight) records
            // nothing: the enter/exit pair exists to witness actual stalls,
            // and on the uncontended fast path two events + stamps would be
            // most of a short writer's tracing cost. When a wait did
            // happen, the pair is reconstructed from its measured duration.
            if ns > 0 {
                self.rt.stats_ref().on_quiesce(ns);
                if obs {
                    let end = crate::trace::now_ns();
                    rt.trace_event_at(
                        end.saturating_sub(ns),
                        crate::trace::EventKind::QuiesceEnter,
                        wv,
                    );
                    rt.trace_event_at(end, crate::trace::EventKind::QuiesceExit, ns);
                }
            }
        }

        Ok(self.take_output())
    }

    /// Complete a serial transaction: writes were applied eagerly, so only
    /// collect the post-commit work. Must be called while still holding the
    /// serial write lock.
    pub(crate) fn finish_serial(&mut self) -> CommitOutput {
        debug_assert_eq!(self.mode, ExecMode::Serial);
        self.slot.end();
        self.take_output()
    }

    fn take_output(&mut self) -> CommitOutput {
        CommitOutput {
            actions: std::mem::take(&mut self.bufs.post_commit),
            drops: std::mem::take(&mut self.bufs.drops),
            enqueue_ts: std::mem::take(&mut self.bufs.post_commit_ts),
        }
    }

    /// Record a custom event on this runtime's observability timeline (a
    /// no-op when tracing is off). This is how sibling crates put their own
    /// lifecycle points next to the STM's — `ad-defer` uses it for
    /// [`EventKind::LockSubscribe`](crate::EventKind::LockSubscribe) and
    /// [`EventKind::LockAcquire`](crate::EventKind::LockAcquire).
    #[inline]
    pub fn trace(&self, kind: crate::trace::EventKind, arg: u64) {
        if self.obs {
            self.rt.trace_event(kind, arg);
        }
    }
}

impl std::fmt::Debug for Tx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tx")
            .field("mode", &self.mode)
            .field("rv", &self.rv)
            .field("reads", &self.bufs.read_set.len())
            .field("writes", &self.bufs.write_set.len())
            .field("deferred", &self.bufs.post_commit.len())
            .finish()
    }
}
