//! Model: quiescence vs. an in-flight older transaction's write-back.
//!
//! Privatization safety (paper §2, DESIGN.md §7) hangs on one protocol
//! property: when `Registry::quiesce(wv)` returns, every transaction that
//! began with `rv < wv` has completely finished — including its commit
//! write-back — so the quiescing thread may touch privatized data
//! non-transactionally. The commit path upholds this by publishing
//! `ActivitySlot::end()` only *after* write-back completes.
//!
//! Three threads:
//!
//! * an **older transaction** (`rv = 2`): performs its "write-back" (a
//!   store the quiescer will read) and then ends its slot — or, in the
//!   weakened variant, ends the slot first (the bug);
//! * a **quiescer** (`wv = 4`): waits for the older transaction to have
//!   begun (standing in for the clock ordering `rv < wv`, which implies
//!   the older transaction's `begin` preceded the quiescer's `tick`),
//!   quiesces, then asserts it observes the completed write-back;
//! * a **newer transaction** (`rv = 6 >= wv`) that begins and *never
//!   ends*: `quiesce` must not wait for it — if it did, the scheduler's
//!   step budget turns the hang into a failure.

use std::sync::Arc;

use ad_support::model::{check, check_expect_violation, CheckOpts, Exec};
use ad_support::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use super::serialize;
use crate::registry::Registry;

fn opts() -> CheckOpts {
    CheckOpts {
        seeds: 3000,
        max_steps: 100_000,
    }
}

fn quiesce_vs_writeback(e: &mut Exec, weaken_end_order: bool) {
    let reg = Arc::new(Registry::default());
    let writeback = Arc::new(AtomicU64::new(0));
    let older_begun = Arc::new(AtomicBool::new(false));

    // Older transaction: rv = 2 < wv = 4, so the quiescer must wait for it.
    let (reg_o, wb_o, begun_o) = (
        Arc::clone(&reg),
        Arc::clone(&writeback),
        Arc::clone(&older_begun),
    );
    e.spawn(move || {
        let slot = reg_o.my_slot(9101);
        slot.begin(2);
        begun_o.store(true, Ordering::SeqCst);
        if weaken_end_order {
            // BUG (deliberate): publish "finished" before the write-back.
            // A quiescer can now return between the two and read stale
            // state — the exact protocol violation `end`'s placement in
            // `Tx::commit` exists to prevent.
            slot.end();
            wb_o.store(1, Ordering::SeqCst);
        } else {
            wb_o.store(1, Ordering::SeqCst);
            slot.end();
        }
    });

    // Quiescer: its own transaction is already committed and its slot
    // inactive (the commit path clears it before quiescing).
    let (reg_q, wb_q, begun_q) = (Arc::clone(&reg), Arc::clone(&writeback), older_begun);
    e.spawn(move || {
        let slot = reg_q.my_slot(9102);
        // Clock ordering: rv = 2 < wv = 4 means the older transaction's
        // `begin` happened before this writer's `tick` — model that
        // happens-before by waiting for it.
        while !begun_q.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        reg_q.quiesce(4, &slot);
        assert_eq!(
            wb_q.load(Ordering::SeqCst),
            1,
            "quiesce returned before an older (rv < wv) transaction finished its write-back"
        );
    });

    // Newer transaction: rv = 6 >= wv = 4, begins and never ends. The
    // quiescer must skip it (a slot at `>= wv` is no hazard); waiting for
    // it would blow the step budget and fail the execution.
    let reg_n = reg;
    e.spawn(move || {
        let slot = reg_n.my_slot(9103);
        slot.begin(6);
    });
}

#[test]
fn quiesce_waits_for_older_writeback_and_skips_newer() {
    let _g = serialize();
    check("quiesce-vs-writeback", opts(), |e| {
        quiesce_vs_writeback(e, false)
    });
}

/// Regression model: with the end-before-write-back ordering (the weakened
/// variant), the model must observe a quiescer reading pre-write-back
/// state. Guards the model's sensitivity — if this stops failing, the
/// green model above proves nothing.
#[test]
fn model_catches_end_before_writeback() {
    let _g = serialize();
    let violation = check_expect_violation(opts(), |e| quiesce_vs_writeback(e, true));
    let (seed, msg) =
        violation.expect("the quiesce model no longer catches end-before-write-back; re-tune it");
    assert!(
        msg.contains("quiesce returned before"),
        "expected the stale-write-back assertion, got (seed {seed}): {msg}"
    );
}
