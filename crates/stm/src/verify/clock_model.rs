//! Models: commit-clock publish/merge ordering for the non-RMW policies.
//!
//! The sloppy and sharded clocks drop TL2's one-RMW-per-commit, so their
//! safety rests on ordering claims instead of a total CAS order
//! (`clock.rs` module docs, "Why sloppy/sharded timestamps preserve
//! opacity"):
//!
//! * **Sloppy**: a stamp lives *above* the shared word until witnessed; a
//!   reader that witnesses it must, via [`clock::refresh`], push the word
//!   up so its new `rv` covers the stamp — and an `rv` that covers a
//!   writer's `wv` must also observe that writer's pre-tick write-set
//!   locks.
//! * **Sharded**: a committing writer publishes `wv` to its shard cell
//!   *before* stamping any variable, so the full max-merge covers every
//!   version a reader can witness.
//!
//! Each scenario models a variable as a (lock word, stamped version word)
//! pair: the writer takes the lock, ticks, then stamps — the same order
//! `Tx::commit` uses. The reader witnesses the stamp and asserts the
//! clock covers it.
//!
//! The regression variant seeds the clock-skew bug via
//! [`clock::model_hooks::merged_skipping`]: a reader whose merge skips the
//! writer's shard misses the published `wv`, keeps a too-small `rv`, and
//! would accept a version above its snapshot without revalidation. The
//! model must catch it, or the green sharded model proves nothing.

use std::sync::Arc;

use ad_support::model::{check, check_expect_violation, CheckOpts, Exec};
use ad_support::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use super::serialize;
use crate::clock::{self, ClockPolicy};

fn opts() -> CheckOpts {
    CheckOpts {
        seeds: 3000,
        max_steps: 100_000,
    }
}

/// One modeled transactional variable: a write-set lock word the writer
/// takes before ticking, and the version word it stamps after.
struct Var {
    lock: AtomicU64,
    stamp: AtomicU64,
}

impl Var {
    fn new() -> Arc<Var> {
        Arc::new(Var {
            lock: AtomicU64::new(0),
            stamp: AtomicU64::new(0),
        })
    }
}

/// Spawn a writer that locks `var`, ticks `policy`, and stamps. Commits
/// under the non-unique policies may collide on `wv`; that is by design.
fn spawn_writer(e: &mut Exec, var: &Arc<Var>, policy: ClockPolicy) {
    let var = Arc::clone(var);
    e.spawn(move || {
        let rv = clock::now();
        var.lock.store(1, Ordering::SeqCst);
        let wv = clock::tick(policy, rv, 0);
        var.stamp.store(wv, Ordering::SeqCst);
    });
}

/// Reader-side validation of one witnessed stamp: extending through
/// `refresh` must produce `rv >= witness`, and an `rv` that covers the
/// stamp must also observe the writer's pre-tick lock (the property that
/// lets TL2 readers accept `version <= rv` without revalidating).
/// Returns the witnessed stamp (0 if the writer had not stamped yet).
fn validate_witness(var: &Var, policy: ClockPolicy) -> u64 {
    let witness = var.stamp.load(Ordering::SeqCst);
    if witness == 0 {
        // The writer has not stamped yet in this interleaving; a real
        // reader would accept the pre-commit version. Nothing to check.
        return 0;
    }
    let (rv, _) = clock::refresh(policy, witness);
    assert!(
        rv >= witness,
        "refresh returned rv {rv} below witnessed stamp {witness}"
    );
    assert_eq!(
        var.lock.load(Ordering::SeqCst),
        1,
        "rv covers a writer's wv but its pre-tick write-set lock is not visible"
    );
    witness
}

/// Sloppy clock: two writers stamp without an RMW (their `wv`s may be
/// equal); a reader that witnesses either stamp extends through `refresh`,
/// which must CAS-bump the shared word up to the witness.
fn sloppy_witness_extends(e: &mut Exec) {
    let a = Var::new();
    let b = Var::new();

    spawn_writer(e, &a, ClockPolicy::Sloppy);
    spawn_writer(e, &b, ClockPolicy::Sloppy);

    e.spawn(move || {
        let wa = validate_witness(&a, ClockPolicy::Sloppy);
        let wb = validate_witness(&b, ClockPolicy::Sloppy);
        // Lazy clock progress: once a stamp is witnessed, the shared word
        // itself (not just this reader's rv) covers it, so later readers
        // start with a covering rv for free. (Only stamps this reader
        // actually witnessed count — a writer may stamp after the loads
        // above.)
        assert!(
            clock::now() >= wa.max(wb),
            "a witnessed sloppy stamp was not bumped into the shared word"
        );
    });
}

#[test]
fn sloppy_witnessed_stamps_are_covered_by_refresh() {
    let _g = serialize();
    check("sloppy-witness-extends", opts(), sloppy_witness_extends);
}

/// Sharded clock: the writer publishes `wv` to its shard cell inside
/// `tick`, before stamping. A reader that witnesses the stamp and
/// max-merges must therefore cover it — unless (`skip_writer_shard`, the
/// seeded clock-skew bug) the merge skips the writer's cell.
fn sharded_merge_covers_stamp(e: &mut Exec, skip_writer_shard: bool) {
    let var = Var::new();
    let shard = Arc::new(AtomicUsize::new(usize::MAX));

    let (var_w, shard_w) = (Arc::clone(&var), Arc::clone(&shard));
    e.spawn(move || {
        // Publish which cell this writer's tick stamps through, so the
        // skewed reader can skip exactly that one.
        shard_w.store(clock::model_hooks::my_shard_index(), Ordering::SeqCst);
        let rv = clock::now();
        var_w.lock.store(1, Ordering::SeqCst);
        let wv = clock::tick(ClockPolicy::Sharded, rv, 0);
        var_w.stamp.store(wv, Ordering::SeqCst);
    });

    e.spawn(move || {
        if skip_writer_shard {
            let witness = var.stamp.load(Ordering::SeqCst);
            if witness == 0 {
                return;
            }
            // BUG (deliberate): extend through a merge that misses the
            // writer's shard cell. The writer's wv exceeds every other
            // cell (tick max-merges them all first), so this rv is stuck
            // below the witnessed stamp — the reader would accept a
            // version above its snapshot without revalidation.
            let rv = clock::model_hooks::merged_skipping(shard.load(Ordering::SeqCst));
            assert!(
                rv >= witness,
                "skewed merge left rv {rv} below witnessed stamp {witness}: \
                 the merge does not cover a published wv"
            );
        } else {
            validate_witness(&var, ClockPolicy::Sharded);
        }
    });
}

#[test]
fn sharded_witnessed_stamps_are_covered_by_merge() {
    let _g = serialize();
    check("sharded-merge-covers-stamp", opts(), |e| {
        sharded_merge_covers_stamp(e, false)
    });
}

/// Regression model: with the shard-skipping merge (the seeded clock-skew
/// bug), the model must observe a reader whose extension misses a
/// published `wv`. Guards the model's sensitivity — if this stops
/// failing, the green sharded model above proves nothing.
#[test]
fn model_catches_shard_skipping_merge() {
    let _g = serialize();
    let violation = check_expect_violation(opts(), |e| sharded_merge_covers_stamp(e, true));
    let (seed, msg) =
        violation.expect("the clock model no longer catches a shard-skipping merge; re-tune it");
    assert!(
        msg.contains("does not cover a published wv"),
        "expected the merge-coverage assertion, got (seed {seed}): {msg}"
    );
}
