//! Model: snapshot store/load vs. epoch retirement (the PR-1 bug shape).
//!
//! Two scenarios share the cast of threads:
//!
//! * [`retire_vs_pin`] — the **green model**: an unconstrained seed sweep
//!   (uniform random walk + PCT schedules, see `ad_support::model`) over a
//!   writer that replaces the value once (retiring the old allocation), a
//!   reader that snapshots the cell concurrently, and a churner that
//!   advances the global epoch at arbitrary points. Under `--cfg loom`,
//!   "freeing" a retired value poisons its address instead of releasing
//!   memory, and `SnapshotCell::load` has a scheduling point *between* its
//!   pointer load and the dereference where it asserts the pointer is not
//!   poisoned — a use-after-free becomes a deterministic model failure.
//!   With the production `store` (retirement tag read *after* a `SeqCst`
//!   fence that follows the unlink swap), no interleaving can free the old
//!   value while the reader still holds it (see the proof comment in
//!   `SnapshotCell::store`).
//!
//! * [`staged_stale_tag`] — the **regression model**: the same machinery
//!   over `store_weak_tag`, the PR-1 bug (tag read *before* the swap,
//!   fixed in commit 0b01d8c) reintroduced behind `cfg(test)`. The
//!   use-after-free needs a four-phase interleaving — writer paused inside
//!   the tag→swap window, epoch advanced past the stale tag, reader pinned
//!   in the new epoch holding the old pointer, writer resumed through
//!   retire + collect — which a random sweep essentially never assembles
//!   (two exact-step preemptions plus a thread order; measured well below
//!   one hit in 10⁴ seeds). So the scenario *stages* the phases with the
//!   `model_hooks` turnstiles and lets the real pins, retirement tags,
//!   `try_advance`, two-epoch rule, and poison registry produce the
//!   violation on every schedule. `model_catches_stale_retirement_tag`
//!   asserts they actually do, so the green model cannot rot silently:
//!   if someone "fixes" the detection machinery into blindness, the staged
//!   bug stops being caught and the regression test fails.

use std::sync::Arc;

use ad_support::model::{check, check_expect_violation, CheckOpts, Exec};

use super::serialize;
use crate::snapshot::{model_hooks, SnapshotCell};
use crate::var::new_value;

/// Exploration bounds for the green model: 3 threads with a few dozen
/// scheduling points each, so a few thousand seeds visit the boundary
/// interleavings many times over. Runs in a few seconds in release mode.
fn opts() -> CheckOpts {
    CheckOpts {
        seeds: 6000,
        max_steps: 200_000,
    }
}

/// The green scenario: unconstrained concurrent store/load/advance.
fn retire_vs_pin(e: &mut Exec) {
    let cell = Arc::new(SnapshotCell::new(new_value(0u64)));

    // Writer: one store (retiring the original allocation), then drive
    // collection hard enough to advance the epoch past the two-epoch
    // horizon and free (= poison) the retired value.
    let w = Arc::clone(&cell);
    e.spawn(move || {
        w.store(new_value(1u64));
        for _ in 0..3 {
            model_hooks::force_collect();
        }
    });

    // Reader: concurrent snapshots. The value assertion is almost
    // incidental — the real check is the poison assertion inside `load`.
    let r = Arc::clone(&cell);
    e.spawn(move || {
        for _ in 0..2 {
            let v = r.load();
            let x = *v.downcast_ref::<u64>().expect("cell holds a u64");
            assert!(x == 0 || x == 1, "torn or recycled value: {x}");
        }
    });

    // Churner: epoch advancement from elsewhere in the system.
    e.spawn(move || {
        for _ in 0..3 {
            model_hooks::advance();
        }
    });
}

/// The staged regression scenario (see the module docs): drive the PR-1
/// stale-tag interleaving deterministically through the turnstiles. The
/// caller must have armed the gates; every schedule converges to the same
/// phase order, so a handful of seeds suffices.
fn staged_stale_tag(e: &mut Exec) {
    model_hooks::arm_gates();
    let cell = Arc::new(SnapshotCell::new(new_value(0u64)));

    // Writer: the buggy store parks inside its tag→swap window (via
    // `stale_tag_window`) until the epoch has advanced and the reader
    // holds the doomed pointer; it then retires with the stale tag,
    // collects — which frees (= poisons) the old value under the reader —
    // and releases the reader.
    let w = Arc::clone(&cell);
    e.spawn(move || {
        w.store_weak_tag(new_value(1u64));
        model_hooks::force_collect();
        model_hooks::set_freed();
    });

    // Reader: waits for the advanced epoch (so its pin lands *above* the
    // writer's stale tag), then loads. `load` parks between the pointer
    // load and the poison check (via `reader_window`) until the writer has
    // freed; the check then fires on the poisoned address.
    let r = Arc::clone(&cell);
    e.spawn(move || {
        while !model_hooks::epoch_advanced() {
            std::hint::spin_loop();
        }
        let _v = r.load();
    });

    // Churner: once the writer sits in its window (pinned, stale tag in
    // hand), advance the epoch past the tag and signal.
    e.spawn(move || {
        while !model_hooks::writer_in_window() {
            std::hint::spin_loop();
        }
        let start = model_hooks::current_epoch();
        while model_hooks::advance() == start {
            std::hint::spin_loop();
        }
        model_hooks::set_epoch_advanced();
    });
}

#[test]
fn snapshot_retire_vs_pin_is_safe() {
    let _g = serialize();
    check("snapshot-retire-vs-pin", opts(), retire_vs_pin);
}

/// Disarm the staging gates even when the test's `expect` panics: the
/// verify tests are serialized, and armed gates would park the next
/// model's readers forever.
struct DisarmOnDrop;

impl Drop for DisarmOnDrop {
    fn drop(&mut self) {
        model_hooks::disarm_gates();
    }
}

/// Regression model (PR-1, fixed in commit 0b01d8c): the staged scenario
/// over the deliberately-buggy `store_weak_tag` must produce a
/// use-after-free violation — on essentially every seed, since the
/// turnstiles force the phase order. If this test fails, the detection
/// machinery (pins, retirement tags, the two-epoch rule, the poison
/// registry) has lost the power to catch the bug class it exists for —
/// fix the machinery, not the assertion.
#[test]
fn model_catches_stale_retirement_tag() {
    let _g = serialize();
    let _disarm = DisarmOnDrop;
    let violation = check_expect_violation(
        CheckOpts {
            seeds: 64,
            max_steps: 200_000,
        },
        |e| staged_stale_tag(e),
    );
    let (seed, msg) = violation.expect(
        "the staged retire-vs-pin scenario no longer produces a use-after-free for \
         the PR-1 stale-retirement-tag bug: the epoch/poison detection machinery has \
         gone blind, and the green model above proves nothing",
    );
    assert!(
        msg.contains("use-after-free"),
        "expected a use-after-free violation, got (seed {seed}): {msg}"
    );
}
