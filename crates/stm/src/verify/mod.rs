//! Loom-style concurrency models of `ad-stm`'s riskiest protocols.
//!
//! Each submodule is one scenario run through `ad_support::model`'s
//! controlled scheduler under `RUSTFLAGS="--cfg loom"`:
//!
//! * [`snapshot_model`] — epoch retirement vs. pinned readers, the protocol
//!   behind `SnapshotCell`. Includes the regression model that reintroduces
//!   the PR-1 stale-retirement-tag bug (commit 0b01d8c's subject) and
//!   asserts the model *catches* it.
//! * [`quiesce_model`] — a committing writer's quiescence vs. an in-flight
//!   older transaction's write-back, at the `Registry` protocol level.
//! * [`clock_model`] — the sloppy and sharded commit clocks'
//!   publish-before-stamp / merge-covers-witness ordering, plus the seeded
//!   clock-skew regression (a merge that skips the writer's shard) the
//!   checker must catch.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p ad-stm --release verify
//! ```
//!
//! See VERIFICATION.md for what each model does and does not prove.

use std::sync::Mutex;

mod clock_model;
mod quiesce_model;
mod snapshot_model;

/// The models exercise process-global state (the epoch counter, the
/// participant registry), so two models exploring interleavings at once
/// would perturb each other's schedules and pin sets. The test harness
/// runs tests on multiple threads; this lock serializes the verify suite
/// without requiring `--test-threads=1`.
static VERIFY_LOCK: Mutex<()> = Mutex::new(());

/// Serialize a model test against the other verify tests.
fn serialize() -> std::sync::MutexGuard<'static, ()> {
    VERIFY_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}
