//! Lock-free snapshot storage for [`VarCore`](crate::var) with epoch-based
//! reclamation.
//!
//! ## Why this module exists
//!
//! The committed value of a transactional variable used to live behind a
//! `RwLock<Arc<dyn Any>>`: readers took the read lock for the duration of an
//! `Arc` clone. That kept everything in safe Rust, but it put an atomic
//! RMW pair (lock/unlock) on the hottest path in the system — every
//! transactional read, every `TVar::load` — and made readers and the
//! committing writer contend on the lock's cache line even though the
//! even/odd `version` seqlock already serializes them logically.
//!
//! [`SnapshotCell`] replaces the lock with a single `AtomicPtr` to a
//! heap-allocated `Value` (an `Arc<dyn Any + Send + Sync>`). Readers load
//! the pointer and clone the `Arc` behind it; writers (who already hold the
//! cell's version lock, so there is exactly one at a time) swap in a new
//! pointer. The old allocation cannot be freed immediately — a reader may
//! have loaded the pointer and not yet finished cloning — so retired
//! pointers go through a small epoch-based reclamation scheme
//! (`crossbeam-epoch`-style, hand-rolled because this build is offline).
//!
//! ## The epoch scheme
//!
//! * A global epoch counter advances by 1 when every *pinned* participant
//!   has observed the current epoch.
//! * Each thread registers a participant slot. A reader *pins* (publishes
//!   the global epoch into its slot, with a `SeqCst` fence so the publish
//!   cannot reorder after the subsequent pointer load), performs the load +
//!   clone, then *unpins* (stores the `INACTIVE` sentinel).
//! * A writer retires the old pointer into a thread-local bag. The
//!   retirement runs *pinned* (so it works on the non-transactional
//!   `direct_write` path too, which carries no transaction-scope pin) and
//!   the bag tag `E` is the global epoch read **after a `SeqCst` fence
//!   that follows the unlink swap** — crossbeam's `push_bag` discipline.
//!   The fence makes the tag fresh with respect to every concurrent
//!   reader: any reader still able to hold the old pointer is pinned at
//!   an epoch `<= E` (see the proof in [`SnapshotCell::store`]).
//! * The pointer is freed once the global epoch reaches `E + 2`:
//!   advancing to `E + 1` proves no *new* pin can acquire the retired
//!   pointer (it was unlinked before the advance), and advancing again to
//!   `E + 2` proves every pin from epoch `E` — the only ones that could
//!   still hold it — has since unpinned. This is the standard two-epoch
//!   safety argument used by crossbeam.
//! * Collection runs only at [`flush`] safe points (never inside `store`):
//!   when a bag exceeds a threshold, or periodically for below-threshold
//!   bags and the orphan list. A thread that exits donates its bag to the
//!   global orphan list that other threads drain.
//! * The bag is an **epoch-ordered deque**: within a thread, retirement
//!   tags are monotone (each is the global epoch read after a fence, and
//!   the global epoch only grows), so pushes at the back keep the deque
//!   sorted by tag and collection frees from the front only, stopping at
//!   the first entry that has not aged past the two-epoch horizon. When
//!   the epoch is stuck (a long-pinned reader), a collection is O(1) —
//!   it inspects the front and gives up — instead of re-scanning the whole
//!   bag, which used to dominate multi-thread write cost once bags grew.
//!   Adopting orphans is the one path that can break the ordering, so it
//!   re-sorts (rare: thread exit only). Failed epoch-advance attempts are
//!   also memoized: while the global epoch still has the value at which
//!   this thread's last advance attempt failed, threshold-triggered
//!   collections skip the participant scan entirely; the periodic
//!   ([`FLUSH_PERIOD`]) safe points always retry, so a cleared blocker is
//!   noticed promptly. Frees per flush are capped ([`FREE_BATCH_CAP`]) so
//!   a commit safe point never runs an unbounded amount of user `Drop`
//!   code at once.
//!
//! ## Safety invariants (everything `unsafe` here relies on these)
//!
//! 1. Pointers stored in a `SnapshotCell` come only from `alloc_value`
//!    (`Box::into_raw` or a recycled allocation of the same layout) and
//!    are dropped and released exactly once, either by reclamation or by
//!    `SnapshotCell::drop`.
//! 2. A pointer is dereferenced only between a pin and the matching unpin
//!    of the executing thread's participant (or in `drop`, which has
//!    exclusive access by `&mut self`).
//! 3. `SnapshotCell::store` is only called under the owning cell's version
//!    lock (odd version), so there is at most one concurrent writer; the
//!    swap therefore retires each old pointer exactly once. Retirement is
//!    pinned and its epoch tag is read after a post-swap `SeqCst` fence.
//! 4. Values are never dropped while the thread-local registry borrow is
//!    held: user `Drop` impls may re-enter this module (e.g. a dropped
//!    value reads a `TVar`), so frees happen after the borrow is released.
//! 5. Values are only freed at [`flush`] safe points, called with no
//!    version locks held: a user `Drop` must never run while any cell is
//!    write-locked (it could read that cell and spin forever, or panic and
//!    leave the lock word odd permanently).
//!
//! The concurrent stress tests live in `tests/snapshot_stress.rs`.
#![allow(unsafe_code)]

use ad_support::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::Arc;

use ad_support::sync::Mutex;

use crate::var::Value;

/// Sentinel epoch meaning "not currently pinned".
const INACTIVE: u64 = u64::MAX;

/// Bag size at which a [`flush`] attempts collection.
const COLLECT_THRESHOLD: usize = 64;

/// Cap on values freed at a single [`flush`] safe point. Freeing runs
/// arbitrary user `Drop` code, so this bounds the pause one commit can
/// absorb when a long-stuck epoch finally clears over a large backlog.
const FREE_BATCH_CAP: usize = 128;

/// Sentinel for [`Handle::advance_failed_at`]: no failed advance memoized.
const NO_FAILED_ADVANCE: u64 = u64::MAX;

/// Every this-many [`flush`] calls, a collection is attempted even with a
/// below-threshold bag (and for stranded orphans), so a churn-then-quiet
/// workload does not keep up to `COLLECT_THRESHOLD` values per thread —
/// plus every exited thread's orphans — alive for the process lifetime.
const FLUSH_PERIOD: u32 = 64;

/// Global epoch counter (advances by 1; see module docs).
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// All registered participants. Locked only on registration, thread exit,
/// and (briefly) during epoch advancement — never on the read path.
static PARTICIPANTS: Mutex<Vec<Arc<Participant>>> = Mutex::new(Vec::new());

/// Garbage donated by exited threads, drained during collection.
static ORPHANS: Mutex<Vec<Retired>> = Mutex::new(Vec::new());

/// Advisory "the orphan list is non-empty" flag, so [`flush`] can poll for
/// stranded orphans without taking the `ORPHANS` lock. Set and cleared
/// while holding the lock; read `Relaxed` (a stale read costs one missed
/// or one extra periodic collection, nothing more).
static HAS_ORPHANS: AtomicBool = AtomicBool::new(false);

/// Process-wide observability counters: values retired into bags and values
/// actually freed. `retired - freed` is the live deferred-reclamation
/// backlog. Relaxed, diagnostics only; the retire side is batched through
/// the thread-local [`Handle`] so the write-back hot path never touches a
/// shared cache line for accounting.
static RETIRED_TOTAL: AtomicU64 = AtomicU64::new(0);
static FREED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// `(retired, freed)` totals since process start. The retired count is
/// published at collection safe points, so it can briefly lag the freed
/// count's precision — treat both as monotone gauges, not exact ledgers.
pub(crate) fn reclaim_counters() -> (u64, u64) {
    (
        RETIRED_TOTAL.load(Ordering::Relaxed),
        FREED_TOTAL.load(Ordering::Relaxed),
    )
}

/// One per thread: the epoch this thread is pinned at, or [`INACTIVE`].
struct Participant {
    epoch: AtomicU64,
}

/// A retired pointer, tagged with the global epoch at retirement.
struct Retired {
    ptr: *mut Value,
    epoch: u64,
}

// SAFETY: `ptr` is an owned heap allocation of a `Value` (`Send + Sync`);
// `Retired` merely transfers the obligation to free it across threads.
unsafe impl Send for Retired {}

/// Cap on the per-thread free list of recycled `Value` allocations. Beyond
/// this, reclaimed boxes are returned to the system allocator. (Model
/// builds never recycle — freed values are poisoned and leaked instead.)
#[cfg(not(loom))]
const FREE_LIST_CAP: usize = 64;

/// Thread-local reclamation state: the participant slot, the bag of
/// retired-but-not-yet-free pointers, the pin depth (pins are reentrant so
/// a transaction can hold one pin across its whole attempt), and a free
/// list of recycled allocations so steady-state write-backs don't malloc.
struct Handle {
    part: Arc<Participant>,
    /// Retired pointers in epoch-tag order (module docs): pushed at the
    /// back with monotone tags, freed from the front only.
    bag: VecDeque<Retired>,
    depth: u32,
    free: Vec<*mut Value>,
    /// Monotonic count of [`flush`] calls on this thread, used to trigger
    /// the periodic (below-threshold) collections.
    flushes: u32,
    /// Retirements not yet added to [`RETIRED_TOTAL`] — published in
    /// batches at collection points so retiring stays a local increment.
    retired_unpublished: u64,
    /// Global epoch value at which this thread's last `try_advance`
    /// attempt failed (a participant was pinned in an older epoch), or
    /// [`NO_FAILED_ADVANCE`]. While the global epoch still equals this,
    /// threshold-triggered collections skip the participant scan; the
    /// periodic safe points reset it so advancement is retried.
    advance_failed_at: u64,
}

impl Handle {
    fn register() -> Handle {
        let part = Arc::new(Participant {
            epoch: AtomicU64::new(INACTIVE),
        });
        PARTICIPANTS.lock().push(Arc::clone(&part));
        Handle {
            part,
            bag: VecDeque::new(),
            depth: 0,
            free: Vec::new(),
            flushes: 0,
            retired_unpublished: 0,
            advance_failed_at: NO_FAILED_ADVANCE,
        }
    }

    /// Pin the participant at the current global epoch (outermost pin
    /// only). The `SeqCst` fence orders the epoch publication before any
    /// subsequent pointer load: an advancer that does not observe this pin
    /// is guaranteed (by its own `SeqCst` fence) that our later loads see
    /// memory at least as new as the epoch it advanced from.
    #[inline]
    fn pin(&mut self) {
        if self.depth == 0 {
            let e = EPOCH.load(Ordering::Relaxed);
            self.part.epoch.store(e, Ordering::Relaxed);
            fence(Ordering::SeqCst);
        }
        self.depth += 1;
    }

    #[inline]
    fn unpin(&mut self) {
        self.depth -= 1;
        if self.depth == 0 {
            self.part.epoch.store(INACTIVE, Ordering::Release);
        }
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        // Donate unfinished garbage and deregister, so an exited thread can
        // neither leak its bag nor block epoch advancement forever.
        if !self.bag.is_empty() {
            let mut orphans = ORPHANS.lock();
            orphans.extend(self.bag.drain(..));
            HAS_ORPHANS.store(true, Ordering::Relaxed);
        }
        if self.retired_unpublished > 0 {
            RETIRED_TOTAL.fetch_add(self.retired_unpublished, Ordering::Relaxed);
        }
        for p in self.free.drain(..) {
            // SAFETY: free-list entries are allocations whose contents were
            // already dropped (invariant 1); release the memory only.
            unsafe { dealloc_value(p) };
        }
        let mut parts = PARTICIPANTS.lock();
        if let Some(i) = parts.iter().position(|p| Arc::ptr_eq(p, &self.part)) {
            parts.swap_remove(i);
        }
    }
}

thread_local! {
    static HANDLE: RefCell<Handle> = RefCell::new(Handle::register());
}

/// An RAII pin covering a whole transaction attempt: while held, every
/// [`SnapshotCell::load`] on this thread reuses the already-published pin
/// (a depth increment) instead of issuing its own `SeqCst` fence. Dropped
/// before the runner blocks in `retry` waiting, so a parked thread never
/// stalls reclamation.
pub(crate) struct EpochGuard {
    pinned: bool,
}

/// Pin this thread for the lifetime of the returned guard.
pub(crate) fn pin_scope() -> EpochGuard {
    let pinned = HANDLE.try_with(|h| h.borrow_mut().pin()).is_ok();
    EpochGuard { pinned }
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        if self.pinned {
            let _ = HANDLE.try_with(|h| h.borrow_mut().unpin());
        }
    }
}

/// Allocate a slot for `value`, reusing a recycled allocation if one is
/// available.
fn alloc_value(value: Value) -> *mut Value {
    let slot = HANDLE
        .try_with(|h| h.borrow_mut().free.pop())
        .ok()
        .flatten();
    match slot {
        Some(p) => {
            // SAFETY: free-list entries point to valid, content-dropped
            // allocations of `Value` owned by this thread (invariant 1).
            unsafe { std::ptr::write(p, value) };
            p
        }
        None => Box::into_raw(Box::new(value)),
    }
}

/// Release the memory of an allocation whose contents were already dropped.
///
/// # Safety
/// `p` must come from `Box::into_raw(Box::new(_: Value))` and its contents
/// must have been dropped (or moved out) already.
unsafe fn dealloc_value(p: *mut Value) {
    drop(unsafe { Box::from_raw(p.cast::<std::mem::MaybeUninit<Value>>()) });
}

/// Advance the global epoch if every pinned participant has observed it.
/// Returns the (possibly advanced) global epoch.
fn try_advance() -> u64 {
    let global = EPOCH.load(Ordering::Relaxed);
    fence(Ordering::SeqCst);
    {
        let parts = PARTICIPANTS.lock();
        for p in parts.iter() {
            let e = p.epoch.load(Ordering::Relaxed);
            if e != INACTIVE && e != global {
                // Someone is still pinned in an older epoch.
                return global;
            }
        }
    }
    fence(Ordering::SeqCst);
    match EPOCH.compare_exchange(global, global + 1, Ordering::SeqCst, Ordering::SeqCst) {
        Ok(_) => global + 1,
        Err(actual) => actual,
    }
}

/// Adopt donated orphans into `bag`. Orphan tags need not follow this
/// thread's monotone push order, so adoption re-sorts the deque to restore
/// the epoch-ordered invariant the pop-front rule relies on (cheap: runs
/// only after a thread exit donated garbage).
fn adopt_orphans(bag: &mut VecDeque<Retired>) {
    if !HAS_ORPHANS.load(Ordering::Relaxed) {
        return;
    }
    {
        let mut orphans = ORPHANS.lock();
        bag.extend(orphans.drain(..));
        HAS_ORPHANS.store(false, Ordering::Relaxed);
    }
    bag.make_contiguous().sort_by_key(|r| r.epoch);
}

/// Pop the freeable prefix of the bag (two-epoch rule, front-only — the
/// deque is epoch-ordered) after adopting any orphans and, if needed,
/// attempting one epoch advance. Returns at most [`FREE_BATCH_CAP`]
/// entries.
///
/// When the epoch is stuck this is O(1): the front entry has not aged
/// past the horizon, and — if the epoch still has the value at which the
/// previous advance attempt failed — the participant scan is skipped too.
///
/// The caller must drop the returned garbage *outside* any thread-local
/// borrow (invariant 4): freeing a `Value` runs arbitrary user `Drop` code.
fn collect(h: &mut Handle) -> Vec<Retired> {
    adopt_orphans(&mut h.bag);
    let horizon = |r: &Retired| r.epoch.saturating_add(2);
    let cur = EPOCH.load(Ordering::Relaxed);
    let global = match h.bag.front() {
        None => return Vec::new(),
        // Front already aged out: no advance needed to make progress.
        Some(r) if cur >= horizon(r) => cur,
        // Epoch unchanged since our last failed advance: the blocker was
        // pinned then and nothing has moved; skip the participant scan.
        // Periodic flushes clear the memo so this cannot skip forever.
        Some(_) if cur == h.advance_failed_at => return Vec::new(),
        Some(_) => {
            let g = try_advance();
            h.advance_failed_at = if g == cur { cur } else { NO_FAILED_ADVANCE };
            g
        }
    };
    let mut free = Vec::new();
    while free.len() < FREE_BATCH_CAP {
        match h.bag.front() {
            Some(r) if global >= horizon(r) => free.push(h.bag.pop_front().expect("front exists")),
            _ => break,
        }
    }
    free
}

/// Model-checking face of [`free_garbage`]: under `--cfg loom` a "free"
/// registers the address in the poison registry and leaks the allocation
/// (no drop, no recycling, no `dealloc`). A reader that dereferences a
/// reclaimed pointer then fails a deterministic assertion inside the model
/// instead of touching freed memory, and because nothing is ever returned
/// to the allocator no address is reused, so stale poison entries cannot
/// produce false positives.
#[cfg(loom)]
fn free_garbage(garbage: Vec<Retired>) {
    if garbage.is_empty() {
        return;
    }
    FREED_TOTAL.fetch_add(garbage.len() as u64, Ordering::Relaxed);
    for r in garbage {
        ad_support::model::poison(r.ptr as usize);
    }
}

#[cfg(not(loom))]
fn free_garbage(garbage: Vec<Retired>) {
    if garbage.is_empty() {
        return;
    }
    FREED_TOTAL.fetch_add(garbage.len() as u64, Ordering::Relaxed);
    let mut ptrs: Vec<*mut Value> = Vec::with_capacity(garbage.len());
    for r in garbage {
        // SAFETY: `r.ptr` came from `alloc_value` (invariant 1) and the
        // two-epoch rule proves no reader still holds it; `collect`
        // removed it from the bag, so it is dropped exactly once. The drop
        // runs outside any `HANDLE` borrow (invariant 4).
        unsafe { std::ptr::drop_in_place(r.ptr) };
        ptrs.push(r.ptr);
    }
    // Recycle the now-empty allocations into the free list (bounded), so
    // subsequent write-backs skip the allocator entirely.
    let mut recycled = false;
    let _ = HANDLE.try_with(|h| {
        let mut h = h.borrow_mut();
        for p in ptrs.drain(..) {
            if h.free.len() < FREE_LIST_CAP {
                h.free.push(p);
            } else {
                // SAFETY: contents dropped above; memory-only release.
                unsafe { dealloc_value(p) };
            }
        }
        recycled = true;
    });
    if !recycled {
        for p in ptrs {
            // SAFETY: as above — TLS teardown path, nothing to recycle to.
            unsafe { dealloc_value(p) };
        }
    }
}

/// Reclamation safe point: collect and free retired values if the bag has
/// reached [`COLLECT_THRESHOLD`], or periodically (every [`FLUSH_PERIOD`]
/// calls) while a below-threshold bag or donated orphans remain.
///
/// # Contract (invariant 5)
///
/// Freeing a retired `Value` runs arbitrary user `Drop` code — which may
/// re-enter this module, read `TVar`s, or start transactions — so `flush`
/// must only be called with **no version locks held** and outside any
/// transaction attempt's closure. The two call sites are the runtime's
/// commit path (after every guard — epoch pin, activity slot, serial lock
/// — has been released) and `VarCore::direct_write` (after `write_back`
/// has restored an even version word). `SnapshotCell::store` itself never
/// frees: a `Drop` impl running under a still-odd version word could spin
/// forever in `read_consistent`, and a panicking `Drop` would unwind out
/// of commit write-back leaving version words locked for good.
///
/// Cheap when idle: one thread-local access and a counter bump.
pub(crate) fn flush() {
    let garbage = HANDLE
        .try_with(|h| {
            let mut h = h.borrow_mut();
            h.flushes = h.flushes.wrapping_add(1);
            let periodic = h.flushes % FLUSH_PERIOD == 0;
            let due = h.bag.len() >= COLLECT_THRESHOLD
                || (periodic && (!h.bag.is_empty() || HAS_ORPHANS.load(Ordering::Relaxed)));
            if due {
                if h.retired_unpublished > 0 {
                    RETIRED_TOTAL.fetch_add(h.retired_unpublished, Ordering::Relaxed);
                    h.retired_unpublished = 0;
                }
                if periodic {
                    // Periodic safe points always retry the epoch advance,
                    // so a blocker that unpinned is noticed even while the
                    // threshold path skips re-scans.
                    h.advance_failed_at = NO_FAILED_ADVANCE;
                }
                collect(&mut h)
            } else {
                Vec::new()
            }
        })
        .unwrap_or_default();
    // Freed outside the `HANDLE` borrow: dropping a Value can run user
    // Drop impls that re-enter this module (invariant 4).
    free_garbage(garbage);
}

/// A lock-free, epoch-reclaimed cell holding one type-erased committed
/// value. Replaces the former `RwLock<Value>` in `VarCore`; the caller's
/// even/odd version word remains the seqlock that pairs a value with its
/// commit timestamp.
pub(crate) struct SnapshotCell {
    ptr: AtomicPtr<Value>,
}

impl SnapshotCell {
    pub(crate) fn new(value: Value) -> Self {
        SnapshotCell {
            ptr: AtomicPtr::new(alloc_value(value)),
        }
    }

    /// Snapshot the current value (an `Arc` clone). Lock-free: the only
    /// shared-memory writes are the participant pin/unpin stores and the
    /// `Arc` refcount increment — and under an enclosing [`EpochGuard`]
    /// (the transaction-attempt pin) even those reduce to a thread-local
    /// depth increment.
    #[inline]
    pub(crate) fn load(&self) -> Value {
        HANDLE
            .try_with(|h| {
                let mut h = h.borrow_mut();
                h.pin();
                let p = self.ptr.load(Ordering::Acquire);
                // Model builds: a scheduling point *between* the pointer
                // load and the dereference (exactly the window the epoch
                // pin must protect), then a use-after-free check against
                // the poison registry. The `reader_window` turnstile is
                // inert unless a staged regression scenario armed it.
                #[cfg(loom)]
                model_hooks::reader_window();
                #[cfg(loom)]
                ad_support::model::assert_not_poisoned(p as usize, "SnapshotCell::load");
                // SAFETY: `p` was published by `new`/`store` (invariant 1)
                // and this thread is pinned, so reclamation cannot have
                // freed it (invariant 2, two-epoch rule).
                let val = unsafe { (*p).clone() };
                h.unpin();
                val
            })
            .unwrap_or_else(|_| self.load_slow())
    }

    /// Fallback for reads during thread-local destruction (the `HANDLE`
    /// slot is gone): register a one-shot participant so the epoch
    /// invariant still protects the load.
    #[cold]
    fn load_slow(&self) -> Value {
        let part = Arc::new(Participant {
            epoch: AtomicU64::new(INACTIVE),
        });
        PARTICIPANTS.lock().push(Arc::clone(&part));
        let e = EPOCH.load(Ordering::Relaxed);
        part.epoch.store(e, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let p = self.ptr.load(Ordering::Acquire);
        #[cfg(loom)]
        ad_support::model::assert_not_poisoned(p as usize, "SnapshotCell::load_slow");
        // SAFETY: as in `load` — pinned via the temporary participant.
        let val = unsafe { (*p).clone() };
        part.epoch.store(INACTIVE, Ordering::Release);
        let mut parts = PARTICIPANTS.lock();
        if let Some(i) = parts.iter().position(|q| Arc::ptr_eq(q, &part)) {
            parts.swap_remove(i);
        }
        drop(parts);
        val
    }

    /// Replace the value, retiring the previous allocation.
    ///
    /// Contract (invariant 3): the caller holds the owning `VarCore`'s
    /// version lock (odd version word), so at most one `store` runs at a
    /// time per cell. Concurrent `load`s are fine.
    ///
    /// Never frees anything (invariant 5): the old pointer is only pushed
    /// into the retirement bag, and the caller is typically still holding
    /// version locks. Collection happens later, at a [`flush`] safe point.
    pub(crate) fn store(&self, value: Value) {
        let new = alloc_value(value);
        let retired = HANDLE.try_with(|h| {
            let mut h = h.borrow_mut();
            // Pin for the unlink+retire, so this also holds on the
            // non-transactional path (`TVar::store` -> `direct_write`,
            // post-commit deferred ops), which carries no `EpochGuard`.
            // Under a transaction-attempt pin this is a depth increment.
            h.pin();
            let old = self.ptr.swap(new, Ordering::AcqRel);
            // Tag with an epoch read AFTER a SeqCst fence that follows the
            // swap (crossbeam's push_bag discipline). This is what makes
            // the two-epoch rule sound against a concurrent reader R that
            // loaded `old` just before the swap:
            //   R publishes its pin epoch e_r, fences SeqCst (F_r), then
            //   loads the pointer; we swap, fence SeqCst (F_w), then read
            //   the tag E. If F_w < F_r in the SC order, R's load is
            //   ordered after the swap and sees `new`, not `old`. If
            //   F_r < F_w, the monotonic EPOCH gives E >= e_r, and every
            //   later `try_advance` scan (its fence follows F_w > F_r)
            //   observes R pinned at e_r <= E — so the epoch cannot pass
            //   E + 1 while R is pinned, and `old` (freed only once the
            //   epoch reaches E + 2) outlives R's pin. A stale tag (the
            //   old `Relaxed` read with no fence) breaks exactly this:
            //   E could lag e_r and the free could land under R.
            fence(Ordering::SeqCst);
            let epoch = EPOCH.load(Ordering::Relaxed);
            h.bag.push_back(Retired { ptr: old, epoch });
            h.retired_unpublished += 1;
            h.unpin();
        });
        if retired.is_err() {
            self.store_teardown_path(new);
        }
    }

    /// DELIBERATELY BUGGY store used only by tests: this is the exact PR-1
    /// soundness bug (fixed in commit 0b01d8c) reintroduced behind
    /// `cfg(test)` — the retirement tag is read *before* the unlink swap,
    /// so a concurrent epoch advance between the tag read and the swap
    /// produces a stale tag `E` smaller than a concurrent reader's pin
    /// epoch, and the two-epoch rule frees the old value under that
    /// reader. It exists so the `verify` loom model has a known-bad
    /// implementation to catch: `verify::snapshot_model::
    /// model_catches_stale_retirement_tag` asserts that the retire-vs-pin
    /// model finds a use-after-free for this variant, guarding the model
    /// itself against rotting into always-green.
    #[cfg(test)]
    pub(crate) fn store_weak_tag(&self, value: Value) {
        let new = alloc_value(value);
        let retired = HANDLE.try_with(|h| {
            let mut h = h.borrow_mut();
            h.pin();
            // BUG (kept intentionally): tag read before the swap, no
            // post-swap fence. Compare with `store` above.
            let epoch = EPOCH.load(Ordering::Relaxed);
            // The race window the early tag read opens. The turnstile is
            // inert unless a staged regression scenario armed it.
            #[cfg(loom)]
            model_hooks::stale_tag_window();
            let old = self.ptr.swap(new, Ordering::AcqRel);
            h.bag.push_back(Retired { ptr: old, epoch });
            h.retired_unpublished += 1;
            h.unpin();
        });
        if retired.is_err() {
            self.store_teardown_path(new);
        }
    }

    /// Shared slow path for a store during thread-local teardown (no
    /// `Handle`): unlink with the correctly fenced tag, using a one-shot
    /// participant as the pin, and donate straight to the orphan list.
    #[cold]
    fn store_teardown_path(&self, new: *mut Value) {
        {
            let part = Arc::new(Participant {
                epoch: AtomicU64::new(INACTIVE),
            });
            PARTICIPANTS.lock().push(Arc::clone(&part));
            let e = EPOCH.load(Ordering::Relaxed);
            part.epoch.store(e, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let old = self.ptr.swap(new, Ordering::AcqRel);
            fence(Ordering::SeqCst);
            let epoch = EPOCH.load(Ordering::Relaxed);
            {
                let mut orphans = ORPHANS.lock();
                orphans.push(Retired { ptr: old, epoch });
                HAS_ORPHANS.store(true, Ordering::Relaxed);
            }
            RETIRED_TOTAL.fetch_add(1, Ordering::Relaxed);
            part.epoch.store(INACTIVE, Ordering::Release);
            let mut parts = PARTICIPANTS.lock();
            if let Some(i) = parts.iter().position(|q| Arc::ptr_eq(q, &part)) {
                parts.swap_remove(i);
            }
        }
    }
}

impl Drop for SnapshotCell {
    fn drop(&mut self) {
        // `&mut self` proves no concurrent reader exists (a reader must
        // reach the cell through a live `Arc<VarCore>`), so the current
        // pointer can be freed directly without going through a bag.
        //
        // Model builds leak instead: returning memory to the allocator
        // would let a later allocation land on a poisoned address and
        // produce a false use-after-free (see the loom `free_garbage`).
        #[cfg(not(loom))]
        {
            let p = *self.ptr.get_mut();
            // SAFETY: invariant 1; exclusive access per above.
            unsafe {
                drop(Box::from_raw(p));
            }
        }
    }
}

/// Model-checking hooks: the `verify` suite needs to drive collection and
/// epoch advancement at chosen scheduling points rather than through the
/// `flush` threshold/period heuristics.
#[cfg(loom)]
// Driven by the `cfg(all(test, loom))` verify suite; a plain `--cfg loom`
// build (no tests) compiles the hooks but calls only the turnstiles.
#[allow(dead_code)]
pub(crate) mod model_hooks {
    use super::*;

    /// Collect this thread's bag unconditionally (adopt orphans, attempt
    /// one epoch advance, free — i.e. poison — everything past the
    /// two-epoch horizon).
    pub(crate) fn force_collect() {
        let garbage = HANDLE
            .try_with(|h| {
                let mut h = h.borrow_mut();
                h.advance_failed_at = NO_FAILED_ADVANCE;
                collect(&mut h)
            })
            .unwrap_or_default();
        free_garbage(garbage);
    }

    /// Attempt one epoch advance; returns the (possibly advanced) epoch.
    pub(crate) fn advance() -> u64 {
        try_advance()
    }

    /// Current global epoch (for detecting a successful advance).
    pub(crate) fn current_epoch() -> u64 {
        EPOCH.load(Ordering::SeqCst)
    }

    // --- staging turnstiles for the stale-tag regression model ----------
    //
    // The use-after-free that `store_weak_tag` reintroduces needs a
    // four-phase interleaving: the writer pauses *between* its early tag
    // read and the unlink swap; the epoch advances past the tag; a reader
    // pins in the new epoch and loads the doomed pointer; the writer then
    // runs retire + collect, and the two-epoch rule frees the value under
    // the reader. A random seed sweep essentially never lines those four
    // phases up (two exact-step preemptions plus a thread order — measured
    // well below one hit per 10^4 seeds), so the regression scenario
    // *stages* the schedule with these spin-flags instead. Staging only
    // forces the ordering; the violation itself is still produced by the
    // real machinery — pins, retirement tags, `try_advance`, the two-epoch
    // rule, and the poison registry. All gates are inert unless armed, so
    // the unconstrained green model and every other test are unaffected.

    /// Master switch; armed by the staged scenario for one execution.
    static GATES_ARMED: AtomicBool = AtomicBool::new(false);
    /// Writer sits in the stale-tag window (tag read, swap not yet done).
    static WRITER_IN_WINDOW: AtomicBool = AtomicBool::new(false);
    /// The epoch advanced past the writer's (now stale) tag.
    static EPOCH_ADVANCED: AtomicBool = AtomicBool::new(false);
    /// Reader loaded the doomed pointer and parked before dereferencing.
    static READER_IN_WINDOW: AtomicBool = AtomicBool::new(false);
    /// Writer finished retire + collect: the free (= poison) happened.
    static FREED: AtomicBool = AtomicBool::new(false);

    /// Arm the turnstiles for one staged execution (resets all phases).
    /// Call from scenario setup (runs unscheduled, before threads spawn).
    pub(crate) fn arm_gates() {
        WRITER_IN_WINDOW.store(false, Ordering::SeqCst);
        EPOCH_ADVANCED.store(false, Ordering::SeqCst);
        READER_IN_WINDOW.store(false, Ordering::SeqCst);
        FREED.store(false, Ordering::SeqCst);
        GATES_ARMED.store(true, Ordering::SeqCst);
    }

    /// Disarm after a staged test so later models see inert gates. Pair
    /// with an RAII guard in the test: a panicking `expect` must not leave
    /// the gates armed for the next (serialized) verify test.
    pub(crate) fn disarm_gates() {
        GATES_ARMED.store(false, Ordering::SeqCst);
    }

    pub(crate) fn writer_in_window() -> bool {
        WRITER_IN_WINDOW.load(Ordering::SeqCst)
    }

    pub(crate) fn epoch_advanced() -> bool {
        EPOCH_ADVANCED.load(Ordering::SeqCst)
    }

    pub(crate) fn set_epoch_advanced() {
        EPOCH_ADVANCED.store(true, Ordering::SeqCst);
    }

    pub(crate) fn set_freed() {
        FREED.store(true, Ordering::SeqCst);
    }

    /// Called by `store_weak_tag` inside its buggy window: announce the
    /// window and hold it open until the epoch has advanced and a reader
    /// holds the doomed pointer. Every load is a scheduling point, so the
    /// model scheduler keeps the other threads running meanwhile.
    pub(crate) fn stale_tag_window() {
        if !GATES_ARMED.load(Ordering::SeqCst) {
            return;
        }
        WRITER_IN_WINDOW.store(true, Ordering::SeqCst);
        while !(EPOCH_ADVANCED.load(Ordering::SeqCst) && READER_IN_WINDOW.load(Ordering::SeqCst)) {
            std::hint::spin_loop();
        }
    }

    /// Called by `SnapshotCell::load` between the pointer load and the
    /// poison check: park the reader (holding its pin and the loaded
    /// pointer) until the writer has retired and collected. On release the
    /// reader proceeds straight into `assert_not_poisoned`.
    pub(crate) fn reader_window() {
        if !GATES_ARMED.load(Ordering::SeqCst) {
            return;
        }
        READER_IN_WINDOW.store(true, Ordering::SeqCst);
        while !FREED.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::var::new_value;

    fn get_u64(v: &Value) -> u64 {
        *v.downcast_ref::<u64>().unwrap()
    }

    /// Collect this thread's bag unconditionally (tests cannot rely on the
    /// threshold/period heuristics of `flush`).
    fn force_collect() {
        let garbage = HANDLE
            .try_with(|h| {
                let mut h = h.borrow_mut();
                h.advance_failed_at = NO_FAILED_ADVANCE;
                collect(&mut h)
            })
            .unwrap_or_default();
        free_garbage(garbage);
    }

    #[test]
    fn load_store_roundtrip() {
        let cell = SnapshotCell::new(new_value(7u64));
        assert_eq!(get_u64(&cell.load()), 7);
        cell.store(new_value(8u64));
        assert_eq!(get_u64(&cell.load()), 8);
    }

    #[test]
    fn weak_tag_store_is_functionally_correct() {
        // The deliberately-buggy variant is value-correct single-threaded —
        // its bug is *only* visible to concurrent readers via a stale
        // retirement tag, which is exactly why it needs a model checker
        // (`verify::snapshot_model`) rather than a unit test to catch.
        let cell = SnapshotCell::new(new_value(1u64));
        cell.store_weak_tag(new_value(2u64));
        assert_eq!(get_u64(&cell.load()), 2);
        flush();
    }

    #[test]
    fn many_stores_trigger_collection() {
        // Exceed the bag threshold several times over so retire/advance/free
        // all run on this thread, flushing at the safe point as the runtime
        // would after each commit.
        let cell = SnapshotCell::new(new_value(0u64));
        for i in 0..(COLLECT_THRESHOLD as u64 * 8) {
            cell.store(new_value(i));
            assert_eq!(get_u64(&cell.load()), i);
            flush();
        }
    }

    #[test]
    fn periodic_flush_drains_small_bags() {
        // A handful of retirements far below COLLECT_THRESHOLD must still be
        // freed once enough flush safe points pass (churn-then-idle case).
        use std::sync::atomic::AtomicUsize;
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = SnapshotCell::new(new_value(Counted(Arc::clone(&drops))));
        for _ in 0..4 {
            cell.store(new_value(Counted(Arc::clone(&drops))));
        }
        // Each collect advances the epoch by at most one; many idle flushes
        // fire several periodic collections, which is enough for the tags
        // to age past the two-epoch horizon (other tests' transient pins
        // may delay advancement, hence the generous iteration count).
        for _ in 0..(FLUSH_PERIOD * 8) {
            flush();
        }
        assert!(
            drops.load(Ordering::SeqCst) >= 1,
            "periodic flush never freed a below-threshold bag"
        );
    }

    #[test]
    fn values_are_eventually_dropped() {
        // Count drops of the stored payload: every superseded value must be
        // dropped by reclamation (or at latest when leftover bags are
        // collected by later activity), and none twice.
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let n = COLLECT_THRESHOLD * 4;
        let cell = SnapshotCell::new(new_value(Counted));
        for _ in 0..n {
            cell.store(new_value(Counted));
            flush();
        }
        for _ in 0..4 {
            force_collect();
        }
        drop(cell);
        // n values were superseded +1 final value freed by Drop; some of
        // the superseded ones may still sit in this thread's bag, but at
        // least everything from completed collections is gone.
        let dropped = DROPS.load(Ordering::SeqCst);
        assert!(dropped <= n + 1, "double free: {dropped} > {}", n + 1);
        // Concurrent tests may pin participants and delay some advances,
        // so only require that a solid majority of collections succeeded.
        assert!(
            dropped >= n / 4,
            "reclamation never freed anything: {dropped}"
        );
    }

    #[test]
    fn single_collect_frees_at_most_one_batch() {
        // A huge aged backlog must drain in FREE_BATCH_CAP-sized slices,
        // never all at one safe point (bounded pause), while still fully
        // draining across repeated collections (progress).
        use std::sync::atomic::AtomicUsize;
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = SnapshotCell::new(new_value(Counted(Arc::clone(&drops))));
        let n = FREE_BATCH_CAP * 3;
        for _ in 0..n {
            cell.store(new_value(Counted(Arc::clone(&drops))));
        }
        // Each collect frees a bounded slice; other tests' transient pins
        // may stall some epoch advances, so iterate generously and check
        // both the per-collect bound and overall progress.
        let mut max_delta = 0usize;
        for _ in 0..64 {
            let before = drops.load(Ordering::SeqCst);
            force_collect();
            let delta = drops.load(Ordering::SeqCst) - before;
            max_delta = max_delta.max(delta);
        }
        assert!(
            max_delta <= FREE_BATCH_CAP,
            "one collect freed {max_delta} > cap {FREE_BATCH_CAP}"
        );
        assert!(
            drops.load(Ordering::SeqCst) >= n / 2,
            "capped collection stopped making progress: {} of {n} freed",
            drops.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn concurrent_load_store_smoke() {
        let cell = Arc::new(SnapshotCell::new(new_value(0u64)));
        let stop = Arc::new(AtomicU64::new(0));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    let _ = cell.load();
                }
            }));
        }
        // Single writer, per the store contract; flush at safe points so
        // reclamation runs concurrently with the readers.
        for i in 0..20_000u64 {
            cell.store(new_value(i));
            flush();
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(get_u64(&cell.load()), 19_999);
    }
}
