//! Transaction abort reasons and the `StmResult` alias used by all
//! transactional closures.

use std::fmt;

/// Why a transaction attempt cannot proceed.
///
/// User closures normally only *originate* [`StmError::Retry`] (condition
/// synchronization, paper §2) and propagate everything else with `?`. The
/// other variants are produced by the runtime when it detects a conflict or,
/// in simulated-HTM mode, a hardware-style abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StmError {
    /// The closure observed a state from which it cannot make progress and
    /// asks to be re-executed once some location in its read set changes
    /// (Harris et al.'s `retry`). How the wait happens is decided by the
    /// runtime's [`RetryPolicy`](crate::config::RetryPolicy).
    Retry,
    /// The speculative snapshot is no longer consistent: another transaction
    /// committed a conflicting update. The runtime backs off and re-executes.
    Conflict,
    /// Simulated-HTM only: the transaction's tracked footprint exceeded the
    /// configured hardware capacity. Repeated capacity aborts escalate to the
    /// serial fallback path.
    Capacity,
    /// The closure requested an operation the current execution mode cannot
    /// perform speculatively (e.g. irrevocable I/O inside a hardware
    /// transaction). The runtime escalates to serial/irrevocable execution.
    Unsupported,
}

impl StmError {
    /// True for aborts that should count against the contention manager's
    /// `serialize_after` threshold (paper §2: GCC serializes STM after 100
    /// failed attempts, HTM after 2).
    pub fn counts_as_failure(self) -> bool {
        !matches!(self, StmError::Retry)
    }
}

impl fmt::Display for StmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmError::Retry => write!(f, "retry: blocked on condition"),
            StmError::Conflict => write!(f, "conflict: snapshot invalidated"),
            StmError::Capacity => write!(f, "capacity: simulated HTM footprint exceeded"),
            StmError::Unsupported => write!(f, "unsupported: operation requires serial mode"),
        }
    }
}

impl std::error::Error for StmError {}

/// Result type returned by transactional closures.
pub type StmResult<T> = Result<T, StmError>;

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn retry_is_not_a_failure() {
        assert!(!StmError::Retry.counts_as_failure());
        assert!(StmError::Conflict.counts_as_failure());
        assert!(StmError::Capacity.counts_as_failure());
        assert!(StmError::Unsupported.counts_as_failure());
    }

    #[test]
    fn display_is_informative() {
        assert!(StmError::Retry.to_string().contains("retry"));
        assert!(StmError::Conflict.to_string().contains("conflict"));
        assert!(StmError::Capacity.to_string().contains("capacity"));
        assert!(StmError::Unsupported.to_string().contains("serial"));
    }
}
