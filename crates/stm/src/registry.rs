//! Thread activity registry and quiescence.
//!
//! The C++ TMTS does not segregate transactional from non-transactional
//! memory, so an STM must solve the *privatization problem* (paper §2): a
//! writer that commits must wait — *quiesce* — until every transaction that
//! started before its commit has finished, before its thread may touch
//! privatized data non-transactionally. The paper's Figure 1 shows how this
//! makes one long transaction stall completely unrelated threads, which is
//! precisely the pathology atomic deferral removes.
//!
//! Implementation: each thread owns an [`ActivitySlot`] per runtime holding
//! the read version (`rv`) of its in-flight transaction, or `INACTIVE`. A
//! committing writer with write version `wv` spins until no slot holds a
//! value `< wv`.
//!
//! Memory-safety note: in this Rust STM, values live behind `Arc`s, so
//! skipping quiescence can never cause a use-after-free — quiescence here
//! reproduces the *performance semantics* of a C/C++ STM (and programs may
//! still rely on it for logical privatization). It is switchable per
//! runtime for the quiescence ablation benchmark.

use ad_support::sync::atomic::{AtomicU64, Ordering};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use ad_support::sync::RwLock;

use crate::fxhash::FxHashMap;

/// Sentinel meaning "no transaction in flight on this thread".
pub(crate) const INACTIVE: u64 = u64::MAX;

/// One thread's activity word for one runtime.
pub(crate) struct ActivitySlot {
    active: AtomicU64,
}

impl ActivitySlot {
    fn new() -> Arc<Self> {
        Arc::new(ActivitySlot {
            active: AtomicU64::new(INACTIVE),
        })
    }

    /// Publish that this thread runs a transaction with read version `rv`.
    #[inline]
    pub(crate) fn begin(&self, rv: u64) {
        self.active.store(rv, Ordering::SeqCst);
    }

    /// Update the published read version after a snapshot extension. A later
    /// snapshot means later writers need not wait for us (DESIGN.md §7).
    #[inline]
    pub(crate) fn extend(&self, rv: u64) {
        self.active.store(rv, Ordering::SeqCst);
    }

    /// Publish that the transaction finished (committed or aborted).
    ///
    /// Idempotent and cheap to call twice: the commit path ends the slot
    /// eagerly (before quiescing) and the panic-safety guard ends it again
    /// on scope exit. Only the owning thread stores to its slot, so the
    /// `Relaxed` self-read below is exact, and the second call skips the
    /// (comparatively expensive) SeqCst store.
    #[inline]
    pub(crate) fn end(&self) {
        if self.active.load(Ordering::Relaxed) != INACTIVE {
            self.active.store(INACTIVE, Ordering::SeqCst);
        }
    }

    #[inline]
    fn load(&self) -> u64 {
        self.active.load(Ordering::SeqCst)
    }
}

/// All activity slots of one runtime.
#[derive(Default)]
pub(crate) struct Registry {
    slots: RwLock<Vec<Arc<ActivitySlot>>>,
}

thread_local! {
    /// runtime-id -> this thread's slot in that runtime's registry.
    static MY_SLOTS: RefCell<FxHashMap<u64, Arc<ActivitySlot>>> =
        RefCell::new(FxHashMap::default());

    /// Pooled scratch for [`Registry::quiesce`]: the slot list is copied
    /// here so the spin loop runs with the registry's `RwLock` released.
    /// Reused across commits, so steady state stays allocation-free (the
    /// per-slot `Arc` clone is a refcount bump).
    static QUIESCE_SCRATCH: RefCell<Vec<Arc<ActivitySlot>>> =
        const { RefCell::new(Vec::new()) };
}

impl Registry {
    /// Get (registering on first use) the calling thread's slot.
    pub(crate) fn my_slot(&self, runtime_id: u64) -> Arc<ActivitySlot> {
        MY_SLOTS.with(|m| {
            let mut m = m.borrow_mut();
            if let Some(slot) = m.get(&runtime_id) {
                return Arc::clone(slot);
            }
            let slot = ActivitySlot::new();
            self.slots.write().push(Arc::clone(&slot));
            m.insert(runtime_id, Arc::clone(&slot));
            slot
        })
    }

    /// Wait until every *other* transaction that started before `wv` has
    /// finished. Returns the nanoseconds spent waiting.
    ///
    /// The caller must have already marked its own slot inactive (a
    /// committed writer is no hazard to anyone, and clearing first prevents
    /// two quiescing writers from deadlocking on each other).
    pub(crate) fn quiesce(&self, wv: u64, my_slot: &Arc<ActivitySlot>) -> u64 {
        // Copy the slot list into pooled thread-local scratch and spin with
        // the registry lock *released*. Spinning under the read guard would
        // couple unrelated threads to the slowest transaction:
        // `std::sync::RwLock` is writer-preferring on Linux, so one quiesce
        // stalled behind a long-running older transaction blocks a
        // first-time thread's registration (the write side in `my_slot`)
        // and, behind that queued writer, every other thread's next
        // read-acquire. The copy is allocation-free in steady state (the
        // scratch Vec keeps its capacity; Arc clones are refcount bumps).
        // Threads that register after the copy was taken necessarily start
        // their next transaction after our `clock::tick`, i.e. with
        // rv >= wv, and need no check.
        QUIESCE_SCRATCH
            .try_with(|s| {
                let mut scratch = s.borrow_mut();
                self.copy_slots(my_slot, &mut scratch);
                let ns = Self::wait_inactive(wv, &scratch);
                scratch.clear();
                ns
            })
            .unwrap_or_else(|_| {
                // Thread-local teardown: fall back to a one-shot copy.
                let mut scratch = Vec::new();
                self.copy_slots(my_slot, &mut scratch);
                Self::wait_inactive(wv, &scratch)
            })
    }

    /// Copy every slot except `my_slot` into `out` (held lock: brief).
    fn copy_slots(&self, my_slot: &Arc<ActivitySlot>, out: &mut Vec<Arc<ActivitySlot>>) {
        out.clear();
        let slots = self.slots.read();
        out.extend(slots.iter().filter(|s| !Arc::ptr_eq(s, my_slot)).cloned());
    }

    /// Spin until every slot is inactive or running at `>= wv`. Returns the
    /// nanoseconds spent waiting; lazily timestamped, so only commits that
    /// actually wait pay for the `Instant::now` clock_gettime.
    fn wait_inactive(wv: u64, slots: &[Arc<ActivitySlot>]) -> u64 {
        let mut start: Option<Instant> = None;
        for slot in slots {
            let mut spins = 0u32;
            loop {
                let v = slot.load();
                if v == INACTIVE || v >= wv {
                    break;
                }
                start.get_or_insert_with(Instant::now);
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        match start {
            Some(s) => s.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn slot_count(&self) -> usize {
        self.slots.read().len()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn my_slot_is_stable_per_thread() {
        let r = Registry::default();
        let a = r.my_slot(7001);
        let b = r.my_slot(7001);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.slot_count(), 1);
    }

    #[test]
    fn distinct_runtimes_get_distinct_slots() {
        let r1 = Registry::default();
        let r2 = Registry::default();
        let a = r1.my_slot(7002);
        let b = r2.my_slot(7003);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn quiesce_passes_when_alone() {
        let r = Registry::default();
        let me = r.my_slot(7004);
        me.end();
        let ns = r.quiesce(100, &me);
        assert_eq!(ns, 0);
    }

    #[test]
    fn quiesce_ignores_newer_transactions() {
        let r = Registry::default();
        let me = r.my_slot(7005);
        me.end();
        // Another "thread" running a transaction that started after wv.
        let other = ActivitySlot::new();
        other.begin(200);
        r.slots.write().push(Arc::clone(&other));
        let ns = r.quiesce(100, &me);
        assert_eq!(ns, 0);
    }

    #[test]
    fn quiesce_waits_for_older_transaction() {
        let r = Arc::new(Registry::default());
        let me = r.my_slot(7006);
        me.end();
        let other = ActivitySlot::new();
        other.begin(50);
        r.slots.write().push(Arc::clone(&other));

        let other2 = Arc::clone(&other);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            other2.end();
        });
        let ns = r.quiesce(100, &me);
        h.join().unwrap();
        assert!(
            ns >= 10_000_000,
            "expected to wait ~30ms for the older transaction, waited {ns}ns"
        );
    }

    #[test]
    fn extend_releases_quiescer() {
        let r = Arc::new(Registry::default());
        let me = r.my_slot(7007);
        me.end();
        let other = ActivitySlot::new();
        other.begin(50);
        r.slots.write().push(Arc::clone(&other));

        let other2 = Arc::clone(&other);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            // The older transaction extends its snapshot past wv: the
            // quiescing writer no longer needs to wait for it.
            other2.extend(150);
        });
        r.quiesce(100, &me);
        h.join().unwrap();
    }
}
