//! Per-thread lock-free transaction event tracing.
//!
//! The paper's claims are *mechanistic* — "quiescence stalls unrelated
//! threads behind the long operation", "capacity aborts force
//! serialization" — and counters alone cannot witness ordering. This module
//! records the transaction lifecycle as timestamped events in per-thread
//! ring buffers, merged on demand into one timeline (`ad-bench --bin
//! txtrace` dumps it; `tests/observability.rs` asserts on it).
//!
//! ## Design constraints
//!
//! * **Off must be free**: with tracing disabled the hot path pays exactly
//!   one relaxed load + branch per attempt (the runner caches the flag into
//!   the `Tx`), nothing per event.
//! * **On must not serialize writers**: each thread owns a single-writer
//!   ring buffer ([`TraceBuf`]); recording is three relaxed stores and one
//!   release store, no locks, no shared cache line between threads.
//! * **Readers tolerate racing writers**: every slot carries a sequence
//!   word written last (release); the merger re-reads it after copying the
//!   payload and discards slots that changed underneath it (a per-slot
//!   seqlock). A wrapped ring overwrites oldest events — [`Trace::dropped`]
//!   reports how many were lost rather than pretending completeness.
//!
//! Timestamps are nanoseconds of monotonic time since the first trace use
//! in the process, so events from different threads and runtimes order
//! on one common axis. They come from the coarse TSC source
//! (`ad_support::tsc`): cheap enough for 200 ns transactions, accurate to
//! ~0.1 %, with possible tiny cross-core skew — the merge therefore keys
//! strict ordering on per-thread sequence numbers, not timestamps.

use ad_support::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use ad_support::sync::Mutex;

use crate::fxhash::FxHashMap;

/// Default ring capacity per thread, in events (see
/// `TmConfig::trace_ring_events` for the runtime override). 2^14 events
/// ≈ 393 KiB per traced thread; at a few million events/s this holds the
/// most recent few milliseconds of very hot threads and the entire run of
/// realistic ones.
pub(crate) const DEFAULT_RING_CAP: usize = 1 << 14;

/// What happened. The discriminants are stable — they appear in JSON
/// exports and `txtrace` output — so add variants only at the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A transaction attempt started; `arg` = its read version (`rv`).
    Begin = 1,
    /// The read set grew to a power-of-two size; `arg` = the new length.
    /// (Power-of-two sampling keeps large read-only transactions from
    /// flooding the ring with one event per read.)
    ReadSetGrow = 2,
    /// Snapshot extension or commit-time validation failed; `arg` = the
    /// id of the variable that failed (0 when unknown).
    ValidateFail = 3,
    /// The attempt aborted; `arg` = cause (1 conflict, 2 capacity,
    /// 3 unsupported — [`EventKind::abort_cause_name`]).
    Abort = 4,
    /// The attempt committed; `arg` = 0 speculative, 1 serial/irrevocable.
    Commit = 5,
    /// A writer commit entered quiescence and actually waited for older
    /// transactions; `arg` = its write version. Zero-wait quiescence (no
    /// older transaction in flight) emits no enter/exit pair.
    QuiesceEnter = 6,
    /// Quiescence finished; `arg` = nanoseconds spent waiting.
    QuiesceExit = 7,
    /// `defer_post_commit` queued a deferred operation inside the
    /// transaction; `arg` = the operation's queue index within it.
    DeferEnqueue = 8,
    /// A deferred operation started executing post-commit; `arg` = its
    /// queue index (pairs with the committing transaction's
    /// [`EventKind::DeferEnqueue`] of the same index).
    DeferExecStart = 9,
    /// A deferred operation finished; `arg` = its queue index.
    DeferExecEnd = 10,
    /// A transaction subscribed to a `TxLock` (`ad-defer`); `arg` = the
    /// lock's id (its owner `TVar`'s id).
    LockSubscribe = 11,
    /// A transaction buffered a `TxLock` acquisition; `arg` = the lock id.
    LockAcquire = 12,
    /// The runner backed off after a failed attempt; `arg` = nanoseconds.
    Backoff = 13,
    /// A WAL record was framed into the group-commit buffer (`ad-kv`,
    /// recorded from the deferred operation via [`Runtime::trace_app`]);
    /// `arg` = the framed record's size in bytes.
    ///
    /// [`Runtime::trace_app`]: crate::Runtime::trace_app
    WalAppend = 14,
    /// A WAL fsync batch completed; `arg` = the number of records the
    /// batch made durable (1 under fsync-per-commit; >1 means group commit
    /// coalesced concurrent transactions into one sync).
    WalFsync = 15,
    /// A committed transaction's deferred-op batch was handed to the
    /// `Pool` executor instead of running inline (`DeferExecCfg::Pool`);
    /// `arg` = the executor queue depth at submission (batches already
    /// waiting — a persistent non-zero depth means the workers are not
    /// keeping up and commits are about to feel backpressure). Emitted by
    /// the committing thread; the matching `defer_exec_start`/`_end` pair
    /// appears on the worker's timeline row.
    DeferOffload = 16,
    /// A snapshot extension advanced the shared clock word under the
    /// `Sloppy` commit-clock policy (the reader paid the CAS the writers
    /// skipped); `arg` = the new clock value.
    ClockBump = 17,
    /// A snapshot extension succeeded: the whole read set revalidated at a
    /// fresher timestamp; `arg` = the new read version.
    ValidationExtend = 18,
    /// A network server emitted a client acknowledgement *after* the
    /// request's deferred durability work resolved (`ad-net`, recorded via
    /// [`Runtime::trace_app`] between `DeferHandle::wait` returning and the
    /// response bytes being written); `arg` = the request id being acked.
    /// On a merged timeline every one of these must causally follow the
    /// `wal_fsync` that covered the request's redo record — the wire-level
    /// restatement of the store's "ack ⇒ durable" contract, asserted by
    /// `ad-kv-loadgen --smoke`.
    ///
    /// [`Runtime::trace_app`]: crate::Runtime::trace_app
    NetAckDurable = 19,
    /// A `DeferHandle::wait`/`wait_all` was entered on the sole worker of
    /// this runtime's own deferred-op pool — the self-deadlock hazard of
    /// DESIGN.md §10 (i): the waited-on op may be queued behind the job
    /// doing the waiting. `arg` = the pool's queue depth at the wait (jobs
    /// that can never be dispatched while this one blocks). Emitted (with
    /// the `defer_self_wait_hazards` counter bump) just before the wait
    /// blocks; in debug builds a `debug_assert!` fires as well.
    DeferSelfWaitHazard = 20,
    /// A checkpoint started (application event, `ad-kv`). `arg` = the
    /// durable WAL sequence at the moment the checkpointer woke up — the
    /// cut will be at least this.
    CkptBegin = 21,
    /// A checkpoint's snapshot was durably published (tmp written,
    /// fsynced, renamed over current, directory fsynced). `arg` = the
    /// snapshot's size in bytes.
    CkptPublish = 22,
    /// WAL segments covered by a published snapshot were deleted.
    /// `arg` = bytes freed.
    WalTruncate = 23,
    /// A `DeferHandle::wait`/`wait_all` was entered on a worker thread of
    /// a *different* runtime's deferred-op pool — the cross-runtime cousin
    /// of [`EventKind::DeferSelfWaitHazard`] (DESIGN.md §14): a shard
    /// coordinator's worker blocking on a remote shard's handle ties up a
    /// thread the remote runtime may itself be waiting on, and with
    /// symmetric traffic the two pools can deadlock against each other.
    /// `arg` = the waited-on runtime's id. Emitted (with the
    /// `defer_remote_wait_hazards` counter bump) just before the wait
    /// blocks; unlike the self-wait hazard it does not `debug_assert!`,
    /// because ad-shard's ascending-shard prepare order makes a bounded
    /// remote wait legal — the event is for audit, not prohibition.
    DeferRemoteWaitHazard = 24,
    /// A cross-shard coordinator sent (or a participant began applying) a
    /// prepare frame for a global batch (`ad-shard`, recorded via
    /// [`Runtime::trace_app`]); `arg` = the global batch id's low bits.
    ///
    /// [`Runtime::trace_app`]: crate::Runtime::trace_app
    ShardPrepare = 25,
    /// A participant acknowledged a prepare as durable on its shard;
    /// `arg` = the global batch id's low bits. On a merged timeline this
    /// must causally follow the participant's `wal_fsync` covering the
    /// prepare record.
    ShardAck = 26,
    /// The coordinator released a cross-shard batch after every
    /// participant acked (commit record durable); `arg` = the global
    /// batch id's low bits. Participant-side locks are held until their
    /// runtime observes this — the hold-until-all-ack invariant.
    ShardRelease = 27,
}

impl EventKind {
    /// Stable lowercase name (JSON / txtrace output).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::ReadSetGrow => "read_set_grow",
            EventKind::ValidateFail => "validate_fail",
            EventKind::Abort => "abort",
            EventKind::Commit => "commit",
            EventKind::QuiesceEnter => "quiesce_enter",
            EventKind::QuiesceExit => "quiesce_exit",
            EventKind::DeferEnqueue => "defer_enqueue",
            EventKind::DeferExecStart => "defer_exec_start",
            EventKind::DeferExecEnd => "defer_exec_end",
            EventKind::LockSubscribe => "lock_subscribe",
            EventKind::LockAcquire => "lock_acquire",
            EventKind::Backoff => "backoff",
            EventKind::WalAppend => "wal_append",
            EventKind::WalFsync => "wal_fsync",
            EventKind::DeferOffload => "defer_offload",
            EventKind::ClockBump => "clock_bump",
            EventKind::ValidationExtend => "validation_extend",
            EventKind::NetAckDurable => "ack_after_durable",
            EventKind::DeferSelfWaitHazard => "defer_self_wait_hazard",
            EventKind::CkptBegin => "ckpt_begin",
            EventKind::CkptPublish => "ckpt_publish",
            EventKind::WalTruncate => "wal_truncate",
            EventKind::DeferRemoteWaitHazard => "defer_remote_wait_hazard",
            EventKind::ShardPrepare => "shard_prepare",
            EventKind::ShardAck => "shard_ack",
            EventKind::ShardRelease => "shard_release",
        }
    }

    /// Name of an [`EventKind::Abort`] event's cause argument.
    pub fn abort_cause_name(arg: u64) -> &'static str {
        match arg {
            1 => "conflict",
            2 => "capacity",
            3 => "unsupported",
            _ => "unknown",
        }
    }

    fn from_code(code: u8) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::Begin,
            2 => EventKind::ReadSetGrow,
            3 => EventKind::ValidateFail,
            4 => EventKind::Abort,
            5 => EventKind::Commit,
            6 => EventKind::QuiesceEnter,
            7 => EventKind::QuiesceExit,
            8 => EventKind::DeferEnqueue,
            9 => EventKind::DeferExecStart,
            10 => EventKind::DeferExecEnd,
            11 => EventKind::LockSubscribe,
            12 => EventKind::LockAcquire,
            13 => EventKind::Backoff,
            14 => EventKind::WalAppend,
            15 => EventKind::WalFsync,
            16 => EventKind::DeferOffload,
            17 => EventKind::ClockBump,
            18 => EventKind::ValidationExtend,
            19 => EventKind::NetAckDurable,
            20 => EventKind::DeferSelfWaitHazard,
            21 => EventKind::CkptBegin,
            22 => EventKind::CkptPublish,
            23 => EventKind::WalTruncate,
            24 => EventKind::DeferRemoteWaitHazard,
            25 => EventKind::ShardPrepare,
            26 => EventKind::ShardAck,
            27 => EventKind::ShardRelease,
            _ => return None,
        })
    }
}

/// Abort-cause codes for [`EventKind::Abort`] events (shared with
/// `runtime.rs`).
pub(crate) mod cause {
    pub(crate) const CONFLICT: u64 = 1;
    pub(crate) const CAPACITY: u64 = 2;
    pub(crate) const UNSUPPORTED: u64 = 3;
}

/// Nanoseconds of monotonic time since the process's trace epoch.
///
/// Backed by `ad_support::tsc` — a calibrated `rdtsc` read (~6-10 ns)
/// where an invariant TSC is available, `Instant` otherwise — because two
/// of these stamps land on every traced transaction attempt and a
/// `clock_gettime` pair roughly doubles a ~200 ns transaction
/// (OBSERVABILITY.md "Tracing overhead").
#[inline]
pub(crate) fn now_ns() -> u64 {
    ad_support::tsc::now_ns()
}

/// One merged, decoded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Id of the [`Runtime`] whose sink recorded the event
    /// ([`Runtime::id`]) — what makes events from different runtimes
    /// distinguishable after [`Trace::merge`]. Thread ids are dense *per
    /// runtime*, so `(runtime, thread, seq)` is the global event identity;
    /// `(thread, seq)` alone collides across runtimes.
    ///
    /// [`Runtime`]: crate::Runtime
    /// [`Runtime::id`]: crate::Runtime::id
    pub runtime: u64,
    /// Trace-local thread id (dense, assigned per runtime in registration
    /// order; not an OS tid).
    pub thread: u32,
    /// Per-thread event sequence number (gap-free while the ring keeps up;
    /// gaps mean the ring wrapped).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Event argument (see each [`EventKind`] variant).
    pub arg: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12.3}us r{}.t{:<3} {:<16}",
            self.ts_ns as f64 / 1e3,
            self.runtime,
            self.thread,
            self.kind.name(),
        )?;
        match self.kind {
            EventKind::Abort => write!(f, " cause={}", EventKind::abort_cause_name(self.arg)),
            EventKind::Commit => write!(
                f,
                " mode={}",
                if self.arg == 1 {
                    "serial"
                } else {
                    "speculative"
                }
            ),
            EventKind::QuiesceExit | EventKind::Backoff => {
                write!(f, " waited={:.1}us", self.arg as f64 / 1e3)
            }
            EventKind::WalAppend => write!(f, " bytes={}", self.arg),
            EventKind::WalFsync => write!(f, " records={}", self.arg),
            EventKind::DeferOffload | EventKind::DeferSelfWaitHazard => {
                write!(f, " queue_depth={}", self.arg)
            }
            EventKind::DeferRemoteWaitHazard => write!(f, " remote_runtime={}", self.arg),
            EventKind::ShardPrepare | EventKind::ShardAck | EventKind::ShardRelease => {
                write!(f, " gid={}", self.arg)
            }
            EventKind::NetAckDurable => write!(f, " req_id={}", self.arg),
            _ => write!(f, " arg={}", self.arg),
        }
    }
}

/// A drained trace: the merged timeline plus how many events the rings
/// overwrote before they could be read.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events from every traced thread, sorted by timestamp (ties broken
    /// by thread then sequence number).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wrap-around (oldest-first overwrite).
    pub dropped: u64,
    /// Events rescued from ring wrap-around by the heap spill
    /// (`TmConfig::trace_spill`) and merged into `events`; always 0 with
    /// spill off.
    pub spilled: u64,
}

impl Trace {
    /// Events of one thread, in order. In a merged multi-runtime trace the
    /// same thread id can exist in several runtimes — use
    /// [`Trace::runtime_thread_events`] there.
    pub fn thread_events(&self, thread: u32) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.thread == thread)
    }

    /// Events of one `(runtime, thread)` row of a merged timeline, in order.
    pub fn runtime_thread_events(
        &self,
        runtime: u64,
        thread: u32,
    ) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.runtime == runtime && e.thread == thread)
    }

    /// The distinct runtime ids present, ascending.
    pub fn runtime_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.events.iter().map(|e| e.runtime).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Merge several per-runtime traces (each from its own
    /// `Runtime::take_trace`) into one timeline.
    ///
    /// This is how a multi-runtime system — ad-shard's router, or any
    /// embedding running one runtime per partition — renders a cross-shard
    /// commit as *one* story: events keep their `runtime` tag, duplicates
    /// are collapsed by the global event identity `(runtime, thread, seq)`
    /// (a spill-enabled ring can hand the same event to two consecutive
    /// drains that race a writer), and the result is re-sorted on the
    /// common timestamp axis exactly like a single-runtime take.
    /// `dropped`/`spilled` sum over the inputs.
    pub fn merge(traces: impl IntoIterator<Item = Trace>) -> Trace {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        let mut spilled = 0u64;
        for t in traces {
            events.extend(t.events);
            dropped += t.dropped;
            spilled += t.spilled;
        }
        events.sort_unstable_by_key(|e| (e.runtime, e.thread, e.seq));
        events.dedup_by_key(|e| (e.runtime, e.thread, e.seq));
        events.sort_unstable_by_key(|e| (e.ts_ns, e.runtime, e.thread, e.seq));
        Trace {
            events,
            dropped,
            spilled,
        }
    }

    /// Render the timeline as line-oriented text (one event per line).
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(self.events.len() * 48);
        for e in &self.events {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        if self.dropped > 0 {
            s.push_str(&format!("({} events dropped to ring wrap)\n", self.dropped));
        }
        if self.spilled > 0 {
            s.push_str(&format!("({} events spilled to heap)\n", self.spilled));
        }
        s
    }

    /// Render the timeline as chrome://tracing trace-event JSON
    /// (`{"traceEvents":[..]}`), loadable in Perfetto / `chrome://tracing`.
    ///
    /// Paired lifecycle events become complete (`"ph":"X"`) duration slices
    /// — `begin`→`commit`/`abort` as a `txn` slice, `quiesce_enter`→
    /// `quiesce_exit` as `quiesce`, `defer_exec_start`→`defer_exec_end`
    /// (matched by queue index) as `defer_op` — and everything else is an
    /// instant (`"ph":"i"`). Timestamps are microseconds since the process
    /// trace epoch; `pid` is the runtime id (so a merged multi-runtime
    /// trace renders one process group per runtime) and `tid` is the
    /// trace-local thread id within that runtime.
    pub fn to_chrome_json(&self) -> String {
        // Comma placement between events needs one bit of state; carrying
        // it with the buffer keeps every call site a plain `w.push(..)`.
        struct EventSink {
            out: String,
            first: bool,
        }
        impl EventSink {
            #[allow(clippy::too_many_arguments)]
            fn push(
                &mut self,
                name: &str,
                ph: char,
                runtime: u64,
                thread: u32,
                ts_ns: u64,
                dur_ns: Option<u64>,
                args: &[(&str, String)],
            ) {
                let out = &mut self.out;
                if !self.first {
                    out.push_str(",\n");
                }
                self.first = false;
                out.push_str(&format!(
                    "  {{\"name\":\"{name}\",\"ph\":\"{ph}\",\"pid\":{runtime},\"tid\":{thread},\
                     \"ts\":{:.3}",
                    ts_ns as f64 / 1e3,
                ));
                if let Some(d) = dur_ns {
                    out.push_str(&format!(",\"dur\":{:.3}", d as f64 / 1e3));
                }
                if ph == 'i' {
                    // Thread-scoped instants render as small arrows on the row.
                    out.push_str(",\"s\":\"t\"");
                }
                if !args.is_empty() {
                    out.push_str(",\"args\":{");
                    for (i, (k, v)) in args.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("\"{k}\":{v}"));
                    }
                    out.push('}');
                }
                out.push('}');
            }
        }

        let mut w = EventSink {
            out: String::with_capacity(64 + self.events.len() * 96),
            first: true,
        };
        w.out.push_str("{\"traceEvents\":[\n");
        // Open-slice state per (runtime, thread) row: transaction begin,
        // quiescence entry, and in-flight deferred ops keyed by queue
        // index. Thread ids alone collide across runtimes in a merged
        // trace, so every pairing key carries the runtime too.
        let mut open_txn: FxHashMap<(u64, u32), u64> = FxHashMap::default();
        let mut open_quiesce: FxHashMap<(u64, u32), u64> = FxHashMap::default();
        let mut open_defer: FxHashMap<(u64, u32, u64), u64> = FxHashMap::default();
        for e in &self.events {
            let row = (e.runtime, e.thread);
            match e.kind {
                EventKind::Begin => {
                    // A begin with no matching end (ring wrap, still
                    // running) is replaced by the next begin; emit nothing.
                    open_txn.insert(row, e.ts_ns);
                }
                EventKind::Commit | EventKind::Abort => {
                    let label = if e.kind == EventKind::Commit {
                        (
                            "mode",
                            format!("\"{}\"", if e.arg == 1 { "serial" } else { "speculative" }),
                        )
                    } else {
                        (
                            "cause",
                            format!("\"{}\"", EventKind::abort_cause_name(e.arg)),
                        )
                    };
                    match open_txn.remove(&row) {
                        Some(start) => w.push(
                            if e.kind == EventKind::Commit {
                                "txn"
                            } else {
                                "txn_abort"
                            },
                            'X',
                            e.runtime,
                            e.thread,
                            start,
                            Some(e.ts_ns.saturating_sub(start)),
                            &[label],
                        ),
                        None => w.push(
                            e.kind.name(),
                            'i',
                            e.runtime,
                            e.thread,
                            e.ts_ns,
                            None,
                            &[label],
                        ),
                    }
                }
                EventKind::QuiesceEnter => {
                    open_quiesce.insert(row, e.ts_ns);
                }
                EventKind::QuiesceExit => match open_quiesce.remove(&row) {
                    Some(start) => w.push(
                        "quiesce",
                        'X',
                        e.runtime,
                        e.thread,
                        start,
                        Some(e.ts_ns.saturating_sub(start)),
                        &[("waited_ns", e.arg.to_string())],
                    ),
                    None => w.push(
                        "quiesce_exit",
                        'i',
                        e.runtime,
                        e.thread,
                        e.ts_ns,
                        None,
                        &[("waited_ns", e.arg.to_string())],
                    ),
                },
                EventKind::DeferExecStart => {
                    open_defer.insert((e.runtime, e.thread, e.arg), e.ts_ns);
                }
                EventKind::DeferExecEnd => match open_defer.remove(&(e.runtime, e.thread, e.arg)) {
                    Some(start) => w.push(
                        "defer_op",
                        'X',
                        e.runtime,
                        e.thread,
                        start,
                        Some(e.ts_ns.saturating_sub(start)),
                        &[("index", e.arg.to_string())],
                    ),
                    None => w.push(
                        "defer_exec_end",
                        'i',
                        e.runtime,
                        e.thread,
                        e.ts_ns,
                        None,
                        &[("index", e.arg.to_string())],
                    ),
                },
                EventKind::DeferOffload => w.push(
                    "defer_offload",
                    'i',
                    e.runtime,
                    e.thread,
                    e.ts_ns,
                    None,
                    &[("queue_depth", e.arg.to_string())],
                ),
                EventKind::ShardPrepare | EventKind::ShardAck | EventKind::ShardRelease => w.push(
                    e.kind.name(),
                    'i',
                    e.runtime,
                    e.thread,
                    e.ts_ns,
                    None,
                    &[("gid", e.arg.to_string())],
                ),
                _ => w.push(
                    e.kind.name(),
                    'i',
                    e.runtime,
                    e.thread,
                    e.ts_ns,
                    None,
                    &[("arg", e.arg.to_string())],
                ),
            }
        }
        w.out.push_str("\n]}\n");
        w.out
    }

    /// Aggregate `validate_fail` events into a per-`TVar` contention
    /// report: the top-`n` hottest variables by failed-validation count.
    /// `validate_fail` carries the offending variable's id (0 when the
    /// failure could not be attributed), so this table pinpoints which
    /// shared variables cause aborts — `kv_bench` uses it to validate its
    /// shard count, `txtrace` prints it after the timeline.
    pub fn contention_report(&self, n: usize) -> ContentionReport {
        let mut by_var: FxHashMap<u64, u64> = FxHashMap::default();
        let mut total = 0u64;
        for e in &self.events {
            if e.kind == EventKind::ValidateFail {
                total += 1;
                *by_var.entry(e.arg).or_insert(0) += 1;
            }
        }
        let mut entries: Vec<ContentionEntry> = by_var
            .into_iter()
            .map(|(var, fails)| ContentionEntry { var, fails })
            .collect();
        entries.sort_unstable_by_key(|e| (std::cmp::Reverse(e.fails), e.var));
        entries.truncate(n);
        ContentionReport {
            entries,
            total_fails: total,
        }
    }
}

/// One row of a [`ContentionReport`]: a variable id and how many failed
/// validations it caused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionEntry {
    /// The `TVar` id (`TVar::id`), or 0 for unattributed failures.
    pub var: u64,
    /// Number of `validate_fail` events carrying this id.
    pub fails: u64,
}

/// Top-N "hottest TVars" table aggregated from a [`Trace`]'s
/// `validate_fail` events (see [`Trace::contention_report`]).
#[derive(Debug, Clone, Default)]
pub struct ContentionReport {
    /// Hottest variables, most-contended first (ties broken by id).
    pub entries: Vec<ContentionEntry>,
    /// All `validate_fail` events in the trace, including ones whose
    /// variable fell outside the top N.
    pub total_fails: u64,
}

impl ContentionReport {
    /// The share of all validation failures attributed to the single
    /// hottest variable, in `[0, 1]`; 0 when the trace has none. A value
    /// near 1 on a sharded structure means the sharding is not spreading
    /// conflicts.
    pub fn top_share(&self) -> f64 {
        match self.entries.first() {
            Some(e) if self.total_fails > 0 => e.fails as f64 / self.total_fails as f64,
            _ => 0.0,
        }
    }
}

impl fmt::Display for ContentionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.total_fails == 0 {
            return writeln!(f, "contention: no validate_fail events in trace");
        }
        writeln!(
            f,
            "hottest TVars by validate_fail ({} failures total):",
            self.total_fails
        )?;
        writeln!(f, "  {:>12}  {:>8}  share", "var", "fails")?;
        for e in &self.entries {
            let var = if e.var == 0 {
                "(unattributed)".to_string()
            } else {
                format!("var#{}", e.var)
            };
            writeln!(
                f,
                "  {:>12}  {:>8}  {:>5.1}%",
                var,
                e.fails,
                e.fails as f64 * 100.0 / self.total_fails as f64
            )?;
        }
        Ok(())
    }
}

/// One event slot: a per-slot seqlock. `seq` is 0 when empty, otherwise
/// the event's 1-based per-thread sequence number, stored *last* with
/// release ordering so a reader that observes `seq` also observes the
/// payload stores it covers.
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    /// `kind` in the top byte, `arg` in the low 56 bits.
    packed: AtomicU64,
}

const ARG_BITS: u32 = 56;
const ARG_MASK: u64 = (1 << ARG_BITS) - 1;

/// A single-writer ring buffer of trace events, owned by one thread and
/// readable (racily but safely) by the merger.
pub(crate) struct TraceBuf {
    /// Id of the runtime whose sink owns this ring — stamped on every
    /// event it emits, so merged traces keep their provenance.
    runtime: u64,
    thread: u32,
    /// Total events ever written by the owner (monotone).
    head: AtomicU64,
    slots: Box<[Slot]>,
    /// Ring-overflow rescue (`TmConfig::trace_spill`): events the owner is
    /// about to overwrite land here instead of being dropped. Touched only
    /// on overflow, so the keeping-up hot path never takes the lock.
    spill: Option<Mutex<Vec<TraceEvent>>>,
    /// Total events ever spilled by the owner (monotone, never reset —
    /// feeds the `trace_spilled_events` counter).
    spilled: AtomicU64,
}

impl TraceBuf {
    /// `capacity` is rounded up to a power of two (minimum 2) so the ring
    /// index stays a mask of the monotone head counter.
    fn new(runtime: u64, thread: u32, capacity: usize, spill: bool) -> Arc<TraceBuf> {
        let cap = capacity.max(2).next_power_of_two();
        Arc::new(TraceBuf {
            runtime,
            thread,
            head: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    ts: AtomicU64::new(0),
                    packed: AtomicU64::new(0),
                })
                .collect(),
            spill: if spill {
                Some(Mutex::new(Vec::new()))
            } else {
                None
            },
            spilled: AtomicU64::new(0),
        })
    }

    /// Append one event stamped `ts`. Owner thread only. The caller
    /// supplies the timestamp so emission sites that already read the
    /// clock (attempt start, commit latency end) don't pay for a second
    /// read — on a ~200 ns transaction every stamp shows up in the
    /// tracing-on overhead budget.
    #[inline]
    pub(crate) fn push(&self, ts: u64, kind: EventKind, arg: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head as usize) & (self.slots.len() - 1)];
        // Spill the event this push is about to overwrite. Owner-side
        // reads need no seqlock dance — only the owner writes slots.
        if let Some(spill) = &self.spill {
            let old_seq = slot.seq.load(Ordering::Relaxed);
            if old_seq != 0 {
                let old_packed = slot.packed.load(Ordering::Relaxed);
                if let Some(old_kind) = EventKind::from_code((old_packed >> ARG_BITS) as u8) {
                    spill.lock().push(TraceEvent {
                        ts_ns: slot.ts.load(Ordering::Relaxed),
                        runtime: self.runtime,
                        thread: self.thread,
                        seq: old_seq,
                        kind: old_kind,
                        arg: old_packed & ARG_MASK,
                    });
                    self.spilled.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Invalidate first so a concurrent reader can't pair the old seq
        // with the new payload, then publish payload before the new seq.
        slot.seq.store(0, Ordering::Relaxed);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.packed.store(
            ((kind as u64) << ARG_BITS) | (arg & ARG_MASK),
            Ordering::Relaxed,
        );
        slot.seq.store(head + 1, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Copy out every readable event, spilled ones first. Returns
    /// `(dropped, spilled_now)` — with spill on, a kept-up drain reports
    /// `dropped == 0` because every overwritten event was rescued.
    fn drain_into(&self, out: &mut Vec<TraceEvent>) -> (u64, u64) {
        let head = self.head.load(Ordering::Acquire);
        let mut spilled_now = 0u64;
        if let Some(spill) = &self.spill {
            let mut g = spill.lock();
            spilled_now = g.len() as u64;
            out.append(&mut g);
        }
        let mut readable = 0u64;
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 {
                continue;
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let packed = slot.packed.load(Ordering::Relaxed);
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 != s2 {
                continue; // overwritten mid-read; counts as dropped
            }
            let Some(kind) = EventKind::from_code((packed >> ARG_BITS) as u8) else {
                continue;
            };
            readable += 1;
            out.push(TraceEvent {
                ts_ns: ts,
                runtime: self.runtime,
                thread: self.thread,
                seq: s1,
                kind,
                arg: packed & ARG_MASK,
            });
        }
        (head.saturating_sub(readable + spilled_now), spilled_now)
    }

    /// Clear all slots (merger side; racing writers may lose the event
    /// they are writing, which is inherent to draining a live trace).
    fn clear(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Relaxed);
        }
        self.head.store(0, Ordering::Release);
    }
}

/// Per-runtime trace state: the enable flag, the configured per-thread
/// ring capacity, and every thread's ring.
pub(crate) struct TraceSink {
    enabled: AtomicBool,
    next_thread: AtomicU32,
    /// Per-thread ring capacity in events (already a power of two ≥ 2);
    /// applied to each ring as it registers.
    ring_cap: usize,
    /// Whether rings spill overflow to the heap (`TmConfig::trace_spill`);
    /// applied to each ring as it registers.
    spill: bool,
    bufs: Mutex<Vec<Arc<TraceBuf>>>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new(DEFAULT_RING_CAP, false)
    }
}

impl TraceSink {
    /// Create a sink whose per-thread rings hold `ring_cap` events
    /// (rounded up to a power of two, minimum 2) and spill overflow to
    /// the heap when `spill` is on.
    pub(crate) fn new(ring_cap: usize, spill: bool) -> Self {
        TraceSink {
            enabled: AtomicBool::new(false),
            next_thread: AtomicU32::new(0),
            ring_cap: ring_cap.max(2).next_power_of_two(),
            spill,
            bufs: Mutex::new(Vec::new()),
        }
    }
}

/// This thread's rings, one per runtime, with a one-entry cache in front:
/// nearly every thread traces into a single runtime, so the common path is
/// one id compare instead of a hash-map probe per event.
#[derive(Default)]
struct BufCache {
    last: Option<(u64, Arc<TraceBuf>)>,
    map: FxHashMap<u64, Arc<TraceBuf>>,
}

thread_local! {
    /// runtime-id -> this thread's ring in that runtime's sink.
    static MY_BUFS: RefCell<BufCache> = RefCell::new(BufCache::default());
}

impl TraceSink {
    /// Is tracing on? One relaxed load — the only cost the disabled hot
    /// path ever pays.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record one event, stamped `ts`, for the calling thread (registering
    /// its ring on first use). Callers must already have checked
    /// [`TraceSink::enabled`].
    pub(crate) fn push(&self, runtime_id: u64, ts: u64, kind: EventKind, arg: u64) {
        MY_BUFS
            .try_with(|m| {
                let mut cache = m.borrow_mut();
                if let Some((id, buf)) = &cache.last {
                    if *id == runtime_id {
                        buf.push(ts, kind, arg);
                        return;
                    }
                }
                let buf = cache.map.entry(runtime_id).or_insert_with(|| {
                    let buf = TraceBuf::new(
                        runtime_id,
                        self.next_thread.fetch_add(1, Ordering::Relaxed),
                        self.ring_cap,
                        self.spill,
                    );
                    self.bufs.lock().push(Arc::clone(&buf));
                    buf
                });
                buf.push(ts, kind, arg);
                let buf = Arc::clone(buf);
                cache.last = Some((runtime_id, buf));
            })
            // Thread teardown: losing an event beats panicking in a Drop.
            .ok();
    }

    /// Total events ever spilled to the heap across every thread's ring
    /// (monotone; feeds the `trace_spilled_events` counter).
    pub(crate) fn spilled_total(&self) -> u64 {
        self.bufs
            .lock()
            .iter()
            .map(|b| b.spilled.load(Ordering::Relaxed))
            .sum()
    }

    /// Merge every thread's ring into one timeline and clear the rings.
    pub(crate) fn take(&self) -> Trace {
        let bufs = self.bufs.lock();
        let mut events = Vec::new();
        let mut dropped = 0u64;
        let mut spilled = 0u64;
        for buf in bufs.iter() {
            let (d, s) = buf.drain_into(&mut events);
            dropped += d;
            spilled += s;
            buf.clear();
        }
        drop(bufs);
        if self.spill {
            // An event the merger drains from the ring can also be spilled
            // by a racing owner overwriting its slot before `clear` lands;
            // (runtime, thread, seq) identifies the event, so collapse
            // duplicates.
            events.sort_unstable_by_key(|e| (e.runtime, e.thread, e.seq));
            events.dedup_by_key(|e| (e.runtime, e.thread, e.seq));
        }
        events.sort_unstable_by_key(|e| (e.ts_ns, e.runtime, e.thread, e.seq));
        Trace {
            events,
            dropped,
            spilled,
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_roundtrip() {
        let sink = TraceSink::default();
        sink.set_enabled(true);
        sink.push(9001, now_ns(), EventKind::Begin, 42);
        sink.push(9001, now_ns(), EventKind::Commit, 0);
        let t = sink.take();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.events[0].kind, EventKind::Begin);
        assert_eq!(t.events[0].arg, 42);
        assert_eq!(t.events[1].kind, EventKind::Commit);
        assert!(t.events[0].ts_ns <= t.events[1].ts_ns);
        // Drained: a second take is empty.
        assert!(sink.take().events.is_empty());
    }

    #[test]
    fn ring_wrap_reports_drops() {
        let sink = TraceSink::default();
        sink.set_enabled(true);
        let n = (DEFAULT_RING_CAP + 100) as u64;
        for i in 0..n {
            sink.push(9002, now_ns(), EventKind::ReadSetGrow, i);
        }
        let t = sink.take();
        assert_eq!(t.events.len(), DEFAULT_RING_CAP);
        assert_eq!(t.dropped, n - DEFAULT_RING_CAP as u64);
        // The survivors are the newest events, in order.
        let min_seq = t.events.iter().map(|e| e.seq).min().unwrap();
        assert_eq!(min_seq, n - DEFAULT_RING_CAP as u64 + 1);
    }

    #[test]
    fn tiny_ring_reports_dropped_exactly() {
        // A configured 4-event ring receiving 10 events keeps the newest 4
        // and reports the other 6 dropped — the runtime-configurable ring
        // size must not break the drop accounting.
        let sink = TraceSink::new(4, false);
        sink.set_enabled(true);
        for i in 0..10 {
            sink.push(9005, now_ns(), EventKind::ReadSetGrow, i);
        }
        let t = sink.take();
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 6);
        assert_eq!(t.spilled, 0);
        let seqs: Vec<u64> = t.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
        let args: Vec<u64> = t.events.iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![6, 7, 8, 9]);
    }

    #[test]
    fn spill_rescues_overflow_instead_of_dropping() {
        // The same 10-events-into-a-4-slot-ring overload, but with spill
        // on: nothing is dropped, the 6 overwritten events are rescued to
        // the heap and merged back in order.
        let sink = TraceSink::new(4, true);
        sink.set_enabled(true);
        for i in 0..10 {
            sink.push(9007, now_ns(), EventKind::ReadSetGrow, i);
        }
        assert_eq!(sink.spilled_total(), 6);
        let t = sink.take();
        assert_eq!(t.events.len(), 10, "spill keeps every event");
        assert_eq!(t.dropped, 0);
        assert_eq!(t.spilled, 6);
        let seqs: Vec<u64> = t.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (1..=10).collect::<Vec<u64>>());
        let args: Vec<u64> = t.events.iter().map(|e| e.arg).collect();
        assert_eq!(args, (0..10).collect::<Vec<u64>>());
        // Drained: the next take carries nothing over, but the monotone
        // spilled total survives for the stats counter.
        let t2 = sink.take();
        assert!(t2.events.is_empty());
        assert_eq!(t2.spilled, 0);
        assert_eq!(sink.spilled_total(), 6);
    }

    #[test]
    fn ring_capacity_rounds_up_to_power_of_two() {
        // Requesting 3 events rounds the ring up to 4: pushing 4 must not
        // drop anything, pushing a 5th drops exactly one.
        let sink = TraceSink::new(3, false);
        sink.set_enabled(true);
        for i in 0..4 {
            sink.push(9006, now_ns(), EventKind::Begin, i);
        }
        let t = sink.take();
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 0);
        for i in 0..5 {
            sink.push(9006, now_ns(), EventKind::Begin, i);
        }
        let t = sink.take();
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 1);
    }

    #[test]
    fn threads_get_distinct_ids_and_merge_sorted() {
        let sink = Arc::new(TraceSink::default());
        sink.set_enabled(true);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let sink = Arc::clone(&sink);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    sink.push(9003, now_ns(), EventKind::Begin, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let t = sink.take();
        assert_eq!(t.events.len(), 400);
        let threads: std::collections::HashSet<u32> = t.events.iter().map(|e| e.thread).collect();
        assert_eq!(threads.len(), 4);
        assert!(t.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn event_kind_codes_roundtrip() {
        for k in [
            EventKind::Begin,
            EventKind::ReadSetGrow,
            EventKind::ValidateFail,
            EventKind::Abort,
            EventKind::Commit,
            EventKind::QuiesceEnter,
            EventKind::QuiesceExit,
            EventKind::DeferEnqueue,
            EventKind::DeferExecStart,
            EventKind::DeferExecEnd,
            EventKind::LockSubscribe,
            EventKind::LockAcquire,
            EventKind::Backoff,
            EventKind::WalAppend,
            EventKind::WalFsync,
            EventKind::DeferOffload,
            EventKind::ClockBump,
            EventKind::ValidationExtend,
            EventKind::NetAckDurable,
            EventKind::DeferSelfWaitHazard,
            EventKind::CkptBegin,
            EventKind::CkptPublish,
            EventKind::WalTruncate,
            EventKind::DeferRemoteWaitHazard,
            EventKind::ShardPrepare,
            EventKind::ShardAck,
            EventKind::ShardRelease,
        ] {
            assert_eq!(EventKind::from_code(k as u8), Some(k));
            assert!(!k.name().is_empty());
        }
        assert_eq!(EventKind::from_code(0), None);
        assert_eq!(EventKind::from_code(200), None);
    }

    #[test]
    fn display_renders_causes_and_modes() {
        let e = TraceEvent {
            ts_ns: 1500,
            runtime: 7,
            thread: 0,
            seq: 1,
            kind: EventKind::Abort,
            arg: super::cause::CAPACITY,
        };
        assert!(e.to_string().contains("cause=capacity"));
        // The runtime tag prefixes the thread id on every rendered line.
        assert!(e.to_string().contains("r7.t0"), "{e}");
        let c = TraceEvent {
            ts_ns: 1500,
            runtime: 7,
            thread: 0,
            seq: 2,
            kind: EventKind::Commit,
            arg: 1,
        };
        assert!(c.to_string().contains("mode=serial"));
        let g = TraceEvent {
            ts_ns: 1500,
            runtime: 2,
            thread: 1,
            seq: 3,
            kind: EventKind::ShardAck,
            arg: 41,
        };
        assert!(g.to_string().contains("gid=41"), "{g}");
    }

    #[test]
    fn chrome_json_pairs_lifecycle_events_into_slices() {
        let sink = TraceSink::default();
        sink.set_enabled(true);
        sink.push(9100, now_ns(), EventKind::Begin, 4);
        sink.push(9100, now_ns(), EventKind::QuiesceEnter, 6);
        sink.push(9100, now_ns(), EventKind::QuiesceExit, 10);
        sink.push(9100, now_ns(), EventKind::DeferEnqueue, 0);
        sink.push(9100, now_ns(), EventKind::Commit, 0);
        sink.push(9100, now_ns(), EventKind::DeferExecStart, 0);
        sink.push(9100, now_ns(), EventKind::WalAppend, 64);
        sink.push(9100, now_ns(), EventKind::WalFsync, 3);
        sink.push(9100, now_ns(), EventKind::DeferExecEnd, 0);
        let j = sink.take().to_chrome_json();
        assert!(j.starts_with("{\"traceEvents\":["), "bad envelope: {j}");
        // The three pairs became complete slices...
        assert!(j.contains("\"name\":\"txn\",\"ph\":\"X\""), "{j}");
        assert!(j.contains("\"name\":\"quiesce\",\"ph\":\"X\""), "{j}");
        assert!(j.contains("\"name\":\"defer_op\",\"ph\":\"X\""), "{j}");
        // ...the paired raw events are consumed by those slices...
        assert!(!j.contains("\"name\":\"begin\""), "{j}");
        assert!(!j.contains("\"name\":\"commit\""), "{j}");
        // ...and unpaired events stay as instants.
        assert!(j.contains("\"name\":\"defer_enqueue\",\"ph\":\"i\""), "{j}");
        assert!(j.contains("\"name\":\"wal_append\",\"ph\":\"i\""), "{j}");
        assert!(j.contains("\"name\":\"wal_fsync\",\"ph\":\"i\""), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn chrome_json_keeps_unpaired_ends_as_instants() {
        // A commit whose begin was lost to ring wrap degrades to an
        // instant rather than fabricating a slice.
        let sink = TraceSink::default();
        sink.set_enabled(true);
        sink.push(9101, now_ns(), EventKind::Commit, 1);
        sink.push(9101, now_ns(), EventKind::QuiesceExit, 5);
        let j = sink.take().to_chrome_json();
        assert!(j.contains("\"name\":\"commit\",\"ph\":\"i\""), "{j}");
        assert!(j.contains("\"name\":\"quiesce_exit\",\"ph\":\"i\""), "{j}");
        assert!(!j.contains("\"ph\":\"X\""), "{j}");
    }

    #[test]
    fn contention_report_ranks_hottest_vars() {
        let sink = TraceSink::default();
        sink.set_enabled(true);
        for _ in 0..5 {
            sink.push(9102, now_ns(), EventKind::ValidateFail, 77);
        }
        for _ in 0..2 {
            sink.push(9102, now_ns(), EventKind::ValidateFail, 31);
        }
        sink.push(9102, now_ns(), EventKind::ValidateFail, 99);
        sink.push(9102, now_ns(), EventKind::Begin, 0); // noise, not counted
        let t = sink.take();
        let r = t.contention_report(2);
        assert_eq!(r.total_fails, 8);
        assert_eq!(r.entries.len(), 2);
        assert_eq!((r.entries[0].var, r.entries[0].fails), (77, 5));
        assert_eq!((r.entries[1].var, r.entries[1].fails), (31, 2));
        assert!((r.top_share() - 5.0 / 8.0).abs() < 1e-9);
        let txt = r.to_string();
        assert!(txt.contains("var#77"), "{txt}");
        assert!(txt.contains("8 failures total"), "{txt}");
    }

    #[test]
    fn contention_report_empty_trace() {
        let r = Trace::default().contention_report(5);
        assert_eq!(r.total_fails, 0);
        assert!(r.entries.is_empty());
        assert_eq!(r.top_share(), 0.0);
        assert!(r.to_string().contains("no validate_fail"));
    }

    #[test]
    fn merge_combines_runtimes_and_dedups_by_identity() {
        // Two sinks standing in for two runtimes: events interleave on the
        // shared timestamp axis, keep their runtime tags, and overlapping
        // drains (same (runtime, thread, seq) twice) collapse to one.
        let a = TraceSink::default();
        let b = TraceSink::default();
        a.set_enabled(true);
        b.set_enabled(true);
        a.push(1, now_ns(), EventKind::Begin, 0);
        b.push(2, now_ns(), EventKind::Begin, 0);
        a.push(1, now_ns(), EventKind::Commit, 0);
        b.push(2, now_ns(), EventKind::Commit, 0);
        let ta = a.take();
        let tb = b.take();
        // Simulate a duplicated event across two drains of the same ring.
        let mut tb_dup = tb.clone();
        tb_dup.events.extend(tb.events.iter().copied());
        let m = Trace::merge([ta, tb_dup]);
        assert_eq!(m.events.len(), 4, "duplicates collapsed: {:#?}", m.events);
        assert_eq!(m.runtime_ids(), vec![1, 2]);
        assert!(m.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(m.runtime_thread_events(1, 0).count(), 2);
        assert_eq!(m.runtime_thread_events(2, 0).count(), 2);
        // Both runtimes' rows render with distinct tags.
        let text = m.render();
        assert!(text.contains("r1.t0"), "{text}");
        assert!(text.contains("r2.t0"), "{text}");
        // Chrome export keeps the rows apart via pid = runtime id.
        let j = m.to_chrome_json();
        assert!(j.contains("\"pid\":1"), "{j}");
        assert!(j.contains("\"pid\":2"), "{j}");
        // Each runtime's begin/commit pairs into its own txn slice — the
        // cross-runtime merge must not cross-pair rows that share tid 0.
        assert_eq!(j.matches("\"name\":\"txn\",\"ph\":\"X\"").count(), 2, "{j}");
    }

    #[test]
    fn merge_sums_dropped_and_spilled() {
        let a = TraceSink::new(4, true);
        a.set_enabled(true);
        for i in 0..10 {
            a.push(5, now_ns(), EventKind::ReadSetGrow, i);
        }
        let b = TraceSink::new(4, false);
        b.set_enabled(true);
        for i in 0..10 {
            b.push(6, now_ns(), EventKind::ReadSetGrow, i);
        }
        let m = Trace::merge([a.take(), b.take()]);
        assert_eq!(m.spilled, 6, "runtime 5's rescued overflow");
        assert_eq!(m.dropped, 6, "runtime 6's lost overflow");
        // The spill-enabled runtime stays gap-free after the merge.
        let seqs: Vec<u64> = m
            .events
            .iter()
            .filter(|e| e.runtime == 5)
            .map(|e| e.seq)
            .collect();
        assert_eq!(seqs, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn trace_render_is_line_per_event() {
        let sink = TraceSink::default();
        sink.push(9004, now_ns(), EventKind::Begin, 0);
        sink.push(9004, now_ns(), EventKind::Commit, 0);
        let t = sink.take();
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("begin"));
        assert!(text.contains("commit"));
    }
}
