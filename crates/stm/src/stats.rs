//! Per-runtime statistics counters.
//!
//! Every figure reproduction reports these alongside wall-clock time: they
//! are how we verify that the *mechanism* behind a speedup matches the
//! paper's story (e.g. "+DeferAll eliminates capacity serializations", or
//! "irrevoc serializes every output transaction").

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters. All increments are relaxed: the numbers are diagnostics,
/// not synchronization.
#[derive(Default)]
pub struct Stats {
    pub(crate) starts: AtomicU64,
    pub(crate) commits: AtomicU64,
    pub(crate) aborts_conflict: AtomicU64,
    pub(crate) aborts_capacity: AtomicU64,
    pub(crate) aborts_unsupported: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) serializations: AtomicU64,
    pub(crate) serial_commits: AtomicU64,
    pub(crate) quiesce_waits: AtomicU64,
    pub(crate) quiesce_ns: AtomicU64,
    pub(crate) deferred_ops: AtomicU64,
}

macro_rules! bump {
    ($($name:ident => $field:ident),* $(,)?) => {
        $(
            #[inline]
            pub(crate) fn $name(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )*
    };
}

impl Stats {
    bump! {
        on_start => starts,
        on_commit => commits,
        on_conflict => aborts_conflict,
        on_capacity => aborts_capacity,
        on_unsupported => aborts_unsupported,
        on_retry => retries,
        on_serialization => serializations,
        on_serial_commit => serial_commits,
        on_deferred_op => deferred_ops,
    }

    #[inline]
    pub(crate) fn on_quiesce(&self, ns: u64) {
        self.quiesce_waits.fetch_add(1, Ordering::Relaxed);
        self.quiesce_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Copy the counters out.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            starts: self.starts.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts_conflict: self.aborts_conflict.load(Ordering::Relaxed),
            aborts_capacity: self.aborts_capacity.load(Ordering::Relaxed),
            aborts_unsupported: self.aborts_unsupported.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            serializations: self.serializations.load(Ordering::Relaxed),
            serial_commits: self.serial_commits.load(Ordering::Relaxed),
            quiesce_waits: self.quiesce_waits.load(Ordering::Relaxed),
            quiesce_ns: self.quiesce_ns.load(Ordering::Relaxed),
            deferred_ops: self.deferred_ops.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters (between benchmark phases).
    pub fn reset(&self) {
        for c in [
            &self.starts,
            &self.commits,
            &self.aborts_conflict,
            &self.aborts_capacity,
            &self.aborts_unsupported,
            &self.retries,
            &self.serializations,
            &self.serial_commits,
            &self.quiesce_waits,
            &self.quiesce_ns,
            &self.deferred_ops,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable copy of a runtime's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Transaction attempts started (including re-executions).
    pub starts: u64,
    /// Speculative commits.
    pub commits: u64,
    /// Aborts due to validation/lock conflicts.
    pub aborts_conflict: u64,
    /// Simulated-HTM capacity aborts.
    pub aborts_capacity: u64,
    /// Aborts because the closure needed serial mode (irrevocable op in a
    /// speculative context).
    pub aborts_unsupported: u64,
    /// `retry` waits (condition synchronization, not failures).
    pub retries: u64,
    /// Escalations to serial/irrevocable execution.
    pub serializations: u64,
    /// Commits that completed in serial mode.
    pub serial_commits: u64,
    /// Writer commits that had to wait in quiescence.
    pub quiesce_waits: u64,
    /// Total nanoseconds spent quiescing.
    pub quiesce_ns: u64,
    /// Post-commit deferred operations executed.
    pub deferred_ops: u64,
}

impl StatsSnapshot {
    /// Total commits, speculative + serial.
    pub fn total_commits(&self) -> u64 {
        self.commits + self.serial_commits
    }

    /// Total aborts of all kinds (excluding retries).
    pub fn total_aborts(&self) -> u64 {
        self.aborts_conflict + self.aborts_capacity + self.aborts_unsupported
    }

    /// Difference of two snapshots (for measuring a phase).
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            starts: self.starts - earlier.starts,
            commits: self.commits - earlier.commits,
            aborts_conflict: self.aborts_conflict - earlier.aborts_conflict,
            aborts_capacity: self.aborts_capacity - earlier.aborts_capacity,
            aborts_unsupported: self.aborts_unsupported - earlier.aborts_unsupported,
            retries: self.retries - earlier.retries,
            serializations: self.serializations - earlier.serializations,
            serial_commits: self.serial_commits - earlier.serial_commits,
            quiesce_waits: self.quiesce_waits - earlier.quiesce_waits,
            quiesce_ns: self.quiesce_ns - earlier.quiesce_ns,
            deferred_ops: self.deferred_ops - earlier.deferred_ops,
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "commits={} (serial={}) aborts={} (conflict={} capacity={} unsupported={}) \
             retries={} serializations={} quiesce={}x/{:.1}ms deferred_ops={}",
            self.total_commits(),
            self.serial_commits,
            self.total_aborts(),
            self.aborts_conflict,
            self.aborts_capacity,
            self.aborts_unsupported,
            self.retries,
            self.serializations,
            self.quiesce_waits,
            self.quiesce_ns as f64 / 1e6,
            self.deferred_ops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = Stats::default();
        s.on_start();
        s.on_start();
        s.on_commit();
        s.on_conflict();
        s.on_retry();
        s.on_serialization();
        s.on_serial_commit();
        s.on_quiesce(1000);
        s.on_deferred_op();
        let snap = s.snapshot();
        assert_eq!(snap.starts, 2);
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.aborts_conflict, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.serializations, 1);
        assert_eq!(snap.serial_commits, 1);
        assert_eq!(snap.quiesce_waits, 1);
        assert_eq!(snap.quiesce_ns, 1000);
        assert_eq!(snap.deferred_ops, 1);
        assert_eq!(snap.total_commits(), 2);
        assert_eq!(snap.total_aborts(), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = Stats::default();
        s.on_start();
        s.on_capacity();
        s.on_unsupported();
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn delta_since_subtracts() {
        let s = Stats::default();
        s.on_commit();
        let a = s.snapshot();
        s.on_commit();
        s.on_conflict();
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.commits, 1);
        assert_eq!(d.aborts_conflict, 1);
    }

    #[test]
    fn display_contains_key_fields() {
        let s = Stats::default();
        s.on_commit();
        let txt = s.snapshot().to_string();
        assert!(txt.contains("commits=1"));
        assert!(txt.contains("serializations=0"));
    }
}
