//! Per-runtime statistics: counters plus latency histograms.
//!
//! Every figure reproduction reports these alongside wall-clock time: they
//! are how we verify that the *mechanism* behind a speedup matches the
//! paper's story (e.g. "+DeferAll eliminates capacity serializations", or
//! "irrevoc serializes every output transaction"). The histograms extend
//! the counters with distributions — a mean hides exactly the tail that
//! quiescence and deferral exist to fix, so the motivation scenario's
//! "readers stall behind the 50 ms op" is asserted on `quiesce_wait` p99,
//! not on a sum.
//!
//! Field names here are the stable observability schema: the same
//! snake_case names appear in [`StatsSnapshot`]'s `Display`, in
//! [`StatsReport::to_json`], and in `OBSERVABILITY.md`.

use ad_support::sync::atomic::{AtomicU64, Ordering};
use std::fmt;

use ad_support::hist::{Histogram, HistogramSnapshot};

/// Live counters and histograms. All updates are relaxed: the numbers are
/// diagnostics, not synchronization.
#[derive(Default)]
pub struct Stats {
    pub(crate) starts: AtomicU64,
    pub(crate) commits: AtomicU64,
    pub(crate) aborts_conflict: AtomicU64,
    pub(crate) aborts_capacity: AtomicU64,
    pub(crate) aborts_unsupported: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) serializations: AtomicU64,
    pub(crate) serial_commits: AtomicU64,
    pub(crate) deferred_ops: AtomicU64,
    pub(crate) defer_offloads: AtomicU64,
    pub(crate) defer_inline_fallbacks: AtomicU64,
    pub(crate) defer_self_wait_hazards: AtomicU64,
    pub(crate) defer_remote_wait_hazards: AtomicU64,
    pub(crate) clock_bumps: AtomicU64,
    pub(crate) validation_extends: AtomicU64,
    /// The latency histograms, boxed as one block: `Stats` lives inside the
    /// runtime's hot `RtInner`, and keeping it counter-sized preserves the
    /// cache layout of the fields around it (embedding the histograms
    /// inline measurably slowed uninstrumented transactions).
    hists: Box<LatencyHists>,
}

/// The five latency histograms (see the field docs for when each fills).
#[derive(Default)]
struct LatencyHists {
    /// Commit latency (begin of the committing attempt → commit done), ns.
    /// Recorded only while the runtime's observability toggle is on — it
    /// needs two `Instant::now()` calls per transaction.
    commit: Histogram,
    /// Quiescence wait per writer commit that actually waited, ns.
    /// Always on: the wait is already being timed when it happens.
    quiesce: Histogram,
    /// Contention-manager backoff per failed attempt, ns. Toggle-gated.
    backoff: Histogram,
    /// Deferred operation queue-to-completion (enqueue inside the
    /// transaction → post-commit execution finished), ns. Toggle-gated.
    defer: Histogram,
    /// Executor queue wait under `DeferExecCfg::Pool` (batch submitted by
    /// the committing thread → a worker picked it up), ns. Toggle-gated;
    /// always empty under the `Inline` executor.
    queue_wait: Histogram,
}

macro_rules! bump {
    ($($name:ident => $field:ident),* $(,)?) => {
        $(
            #[inline]
            pub(crate) fn $name(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )*
    };
}

impl Stats {
    bump! {
        on_start => starts,
        on_commit => commits,
        on_conflict => aborts_conflict,
        on_capacity => aborts_capacity,
        on_unsupported => aborts_unsupported,
        on_retry => retries,
        on_serialization => serializations,
        on_serial_commit => serial_commits,
        on_deferred_op => deferred_ops,
        on_defer_offload => defer_offloads,
        on_defer_inline_fallback => defer_inline_fallbacks,
        on_defer_self_wait_hazard => defer_self_wait_hazards,
        on_defer_remote_wait_hazard => defer_remote_wait_hazards,
        on_clock_bump => clock_bumps,
        on_validation_extend => validation_extends,
    }

    #[inline]
    pub(crate) fn on_quiesce(&self, ns: u64) {
        self.hists.quiesce.record(ns);
    }

    #[inline]
    pub(crate) fn on_commit_latency(&self, ns: u64) {
        self.hists.commit.record(ns);
    }

    #[inline]
    pub(crate) fn on_backoff(&self, ns: u64) {
        self.hists.backoff.record(ns);
    }

    #[inline]
    pub(crate) fn on_defer_latency(&self, ns: u64) {
        self.hists.defer.record(ns);
    }

    #[inline]
    pub(crate) fn on_defer_queue_wait(&self, ns: u64) {
        self.hists.queue_wait.record(ns);
    }

    /// Copy the counters out. (`quiesce_waits`/`quiesce_ns` are derived
    /// from the quiescence histogram, which replaced the old running sum.)
    pub fn snapshot(&self) -> StatsSnapshot {
        let q = self.hists.quiesce.snapshot();
        StatsSnapshot {
            starts: self.starts.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts_conflict: self.aborts_conflict.load(Ordering::Relaxed),
            aborts_capacity: self.aborts_capacity.load(Ordering::Relaxed),
            aborts_unsupported: self.aborts_unsupported.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            serializations: self.serializations.load(Ordering::Relaxed),
            serial_commits: self.serial_commits.load(Ordering::Relaxed),
            quiesce_waits: q.count(),
            quiesce_ns: q.sum(),
            deferred_ops: self.deferred_ops.load(Ordering::Relaxed),
            defer_offloads: self.defer_offloads.load(Ordering::Relaxed),
            defer_inline_fallbacks: self.defer_inline_fallbacks.load(Ordering::Relaxed),
            defer_self_wait_hazards: self.defer_self_wait_hazards.load(Ordering::Relaxed),
            defer_remote_wait_hazards: self.defer_remote_wait_hazards.load(Ordering::Relaxed),
            clock_bumps: self.clock_bumps.load(Ordering::Relaxed),
            validation_extends: self.validation_extends.load(Ordering::Relaxed),
            trace_spilled_events: 0,
        }
    }

    /// Copy counters *and* histograms out as one serializable report.
    pub fn report(&self) -> StatsReport {
        StatsReport {
            counters: self.snapshot(),
            commit_latency_ns: self.hists.commit.snapshot(),
            quiesce_wait_ns: self.hists.quiesce.snapshot(),
            retry_backoff_ns: self.hists.backoff.snapshot(),
            defer_queue_to_done_ns: self.hists.defer.snapshot(),
            defer_queue_wait_ns: self.hists.queue_wait.snapshot(),
        }
    }

    /// Zero all counters and histograms (between benchmark phases).
    pub fn reset(&self) {
        for c in [
            &self.starts,
            &self.commits,
            &self.aborts_conflict,
            &self.aborts_capacity,
            &self.aborts_unsupported,
            &self.retries,
            &self.serializations,
            &self.serial_commits,
            &self.deferred_ops,
            &self.defer_offloads,
            &self.defer_inline_fallbacks,
            &self.defer_self_wait_hazards,
            &self.defer_remote_wait_hazards,
            &self.clock_bumps,
            &self.validation_extends,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        self.hists.commit.reset();
        self.hists.quiesce.reset();
        self.hists.backoff.reset();
        self.hists.defer.reset();
        self.hists.queue_wait.reset();
    }
}

/// An immutable copy of a runtime's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Transaction attempts started (including re-executions).
    pub starts: u64,
    /// Speculative commits.
    pub commits: u64,
    /// Aborts due to validation/lock conflicts.
    pub aborts_conflict: u64,
    /// Simulated-HTM capacity aborts.
    pub aborts_capacity: u64,
    /// Aborts because the closure needed serial mode (irrevocable op in a
    /// speculative context).
    pub aborts_unsupported: u64,
    /// `retry` waits (condition synchronization, not failures).
    pub retries: u64,
    /// Escalations to serial/irrevocable execution.
    pub serializations: u64,
    /// Commits that completed in serial mode.
    pub serial_commits: u64,
    /// Writer commits that had to wait in quiescence.
    pub quiesce_waits: u64,
    /// Total nanoseconds spent quiescing.
    pub quiesce_ns: u64,
    /// Post-commit deferred operations executed.
    pub deferred_ops: u64,
    /// Deferred-op batches handed to the `Pool` executor instead of running
    /// inline (0 under the default `Inline` executor).
    pub defer_offloads: u64,
    /// Deferred-op batches that found the `Pool` executor's queue full and
    /// ran inline on the committing thread instead (backpressure fallback;
    /// a nonzero rate means the pool's workers are saturated).
    pub defer_inline_fallbacks: u64,
    /// Times a `DeferHandle::wait`/`wait_all` was entered on the sole
    /// worker of the runtime's own deferred-op pool — the self-deadlock
    /// hazard of DESIGN.md §10 (i): the waited-on op may be queued behind
    /// the very job doing the waiting, and no other worker exists to run
    /// it. Any nonzero value is a bug in the embedding application (the
    /// static rule `defer-waits-on-defer` catches the lexical cases;
    /// this counter is the runtime backstop).
    pub defer_self_wait_hazards: u64,
    /// Times a `DeferHandle::wait`/`wait_all` on this runtime's deferred
    /// work was entered from a worker thread of a *different* pool — the
    /// cross-runtime wait hazard of DESIGN.md §14: the wait ties up a
    /// thread the other runtime may itself be waiting on. Not necessarily
    /// a bug (ad-shard's coordinator legally blocks for participant acks
    /// this way, bounded by its ascending-shard prepare order), but a
    /// nonzero value is where to look when two runtimes' pools starve
    /// each other.
    pub defer_remote_wait_hazards: u64,
    /// Shared clock-word advances forced by snapshot extensions under the
    /// `Sloppy` commit-clock policy (always 0 under `Gv2`/`Sharded`): how
    /// often a reader had to pay the CAS the writers skipped.
    pub clock_bumps: u64,
    /// Successful snapshot extensions (a read witnessed a version above
    /// `rv` and the whole read set revalidated at a fresher timestamp).
    pub validation_extends: u64,
    /// Trace events rescued from ring wrap-around by the heap spill
    /// (`TmConfig::trace_spill`; always 0 with spill off). Maintained by
    /// the trace sink and overlaid by `Runtime::stats` /
    /// `Runtime::snapshot_stats` — `Stats::snapshot` alone reports 0.
    pub trace_spilled_events: u64,
}

impl StatsSnapshot {
    /// Total commits, speculative + serial.
    pub fn total_commits(&self) -> u64 {
        self.commits + self.serial_commits
    }

    /// Total aborts of all kinds (excluding retries).
    pub fn total_aborts(&self) -> u64 {
        self.aborts_conflict + self.aborts_capacity + self.aborts_unsupported
    }

    /// Difference of two snapshots (for measuring a phase).
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            starts: self.starts - earlier.starts,
            commits: self.commits - earlier.commits,
            aborts_conflict: self.aborts_conflict - earlier.aborts_conflict,
            aborts_capacity: self.aborts_capacity - earlier.aborts_capacity,
            aborts_unsupported: self.aborts_unsupported - earlier.aborts_unsupported,
            retries: self.retries - earlier.retries,
            serializations: self.serializations - earlier.serializations,
            serial_commits: self.serial_commits - earlier.serial_commits,
            quiesce_waits: self.quiesce_waits - earlier.quiesce_waits,
            quiesce_ns: self.quiesce_ns - earlier.quiesce_ns,
            deferred_ops: self.deferred_ops - earlier.deferred_ops,
            defer_offloads: self.defer_offloads - earlier.defer_offloads,
            defer_inline_fallbacks: self.defer_inline_fallbacks - earlier.defer_inline_fallbacks,
            defer_self_wait_hazards: self.defer_self_wait_hazards - earlier.defer_self_wait_hazards,
            defer_remote_wait_hazards: self.defer_remote_wait_hazards
                - earlier.defer_remote_wait_hazards,
            clock_bumps: self.clock_bumps - earlier.clock_bumps,
            validation_extends: self.validation_extends - earlier.validation_extends,
            trace_spilled_events: self.trace_spilled_events - earlier.trace_spilled_events,
        }
    }

    /// Counters as a JSON object, keys identical to the field names (the
    /// same schema `Display` and `OBSERVABILITY.md` use).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"starts\":{},\"commits\":{},\"serial_commits\":{},\
             \"aborts_conflict\":{},\"aborts_capacity\":{},\
             \"aborts_unsupported\":{},\"retries\":{},\"serializations\":{},\
             \"quiesce_waits\":{},\"quiesce_ns\":{},\"deferred_ops\":{},\
             \"defer_offloads\":{},\"defer_inline_fallbacks\":{},\
             \"defer_self_wait_hazards\":{},\"defer_remote_wait_hazards\":{},\
             \"clock_bumps\":{},\
             \"validation_extends\":{},\"trace_spilled_events\":{}}}",
            self.starts,
            self.commits,
            self.serial_commits,
            self.aborts_conflict,
            self.aborts_capacity,
            self.aborts_unsupported,
            self.retries,
            self.serializations,
            self.quiesce_waits,
            self.quiesce_ns,
            self.deferred_ops,
            self.defer_offloads,
            self.defer_inline_fallbacks,
            self.defer_self_wait_hazards,
            self.defer_remote_wait_hazards,
            self.clock_bumps,
            self.validation_extends,
            self.trace_spilled_events,
        )
    }
}

impl fmt::Display for StatsSnapshot {
    /// Two labelled sections — counts first, then durations — so values of
    /// different units never share a section. Every `name=` matches the
    /// JSON key of the same quantity.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "counters[commits={} serial_commits={} aborts={} (aborts_conflict={} \
             aborts_capacity={} aborts_unsupported={}) retries={} serializations={} \
             quiesce_waits={} deferred_ops={} defer_offloads={} \
             defer_inline_fallbacks={} defer_self_wait_hazards={} \
             defer_remote_wait_hazards={} \
             clock_bumps={} validation_extends={} trace_spilled_events={}] \
             durations[quiesce_ns={} ({:.1}ms)]",
            self.total_commits(),
            self.serial_commits,
            self.total_aborts(),
            self.aborts_conflict,
            self.aborts_capacity,
            self.aborts_unsupported,
            self.retries,
            self.serializations,
            self.quiesce_waits,
            self.deferred_ops,
            self.defer_offloads,
            self.defer_inline_fallbacks,
            self.defer_self_wait_hazards,
            self.defer_remote_wait_hazards,
            self.clock_bumps,
            self.validation_extends,
            self.trace_spilled_events,
            self.quiesce_ns,
            self.quiesce_ns as f64 / 1e6,
        )
    }
}

/// A full observability report: the counters plus the four latency
/// histograms. Returned by `Runtime::snapshot_stats()`, serialized by the
/// bench bins' `--stats-json` flag.
#[derive(Debug, Clone, Default)]
pub struct StatsReport {
    /// The counter snapshot (same values as `Runtime::stats()`).
    pub counters: StatsSnapshot,
    /// Commit latency in nanoseconds (observability toggle required).
    pub commit_latency_ns: HistogramSnapshot,
    /// Quiescence wait in nanoseconds (always recorded when a wait occurs).
    pub quiesce_wait_ns: HistogramSnapshot,
    /// Contention-manager backoff in nanoseconds (toggle required).
    pub retry_backoff_ns: HistogramSnapshot,
    /// Deferred-op enqueue → execution-complete in nanoseconds (toggle
    /// required).
    pub defer_queue_to_done_ns: HistogramSnapshot,
    /// Executor queue wait under `DeferExecCfg::Pool` — batch submission by
    /// the committing thread → worker pickup — in nanoseconds (toggle
    /// required; always empty under `Inline`).
    pub defer_queue_wait_ns: HistogramSnapshot,
}

impl StatsReport {
    /// Serialize the whole report as one JSON object:
    /// `{"counters":{..},"histograms":{"commit_latency_ns":{..},..}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"counters\":{},\"histograms\":{{\
             \"commit_latency_ns\":{},\"quiesce_wait_ns\":{},\
             \"retry_backoff_ns\":{},\"defer_queue_to_done_ns\":{},\
             \"defer_queue_wait_ns\":{}}}}}",
            self.counters.to_json(),
            self.commit_latency_ns.to_json(),
            self.quiesce_wait_ns.to_json(),
            self.retry_backoff_ns.to_json(),
            self.defer_queue_to_done_ns.to_json(),
            self.defer_queue_wait_ns.to_json(),
        )
    }

    /// The interval report between `earlier` and `self` — two reports from
    /// the *same* runtime, `earlier` taken first. Counters subtract via
    /// [`StatsSnapshot::delta_since`]; histograms subtract per bucket (their
    /// `max` stays the whole-run max, an upper bound for the interval).
    /// This is how `kv_bench` separates warm-up from steady state without
    /// resetting the runtime mid-run.
    pub fn delta(&self, earlier: &StatsReport) -> StatsReport {
        StatsReport {
            counters: self.counters.delta_since(&earlier.counters),
            commit_latency_ns: self
                .commit_latency_ns
                .delta_since(&earlier.commit_latency_ns),
            quiesce_wait_ns: self.quiesce_wait_ns.delta_since(&earlier.quiesce_wait_ns),
            retry_backoff_ns: self.retry_backoff_ns.delta_since(&earlier.retry_backoff_ns),
            defer_queue_to_done_ns: self
                .defer_queue_to_done_ns
                .delta_since(&earlier.defer_queue_to_done_ns),
            defer_queue_wait_ns: self
                .defer_queue_wait_ns
                .delta_since(&earlier.defer_queue_wait_ns),
        }
    }

    /// Merge another report into this one (summing counters and histogram
    /// buckets) — used to aggregate per-cell reports in the bench bins.
    pub fn merge(&mut self, other: &StatsReport) {
        let c = &mut self.counters;
        let o = &other.counters;
        c.starts += o.starts;
        c.commits += o.commits;
        c.aborts_conflict += o.aborts_conflict;
        c.aborts_capacity += o.aborts_capacity;
        c.aborts_unsupported += o.aborts_unsupported;
        c.retries += o.retries;
        c.serializations += o.serializations;
        c.serial_commits += o.serial_commits;
        c.quiesce_waits += o.quiesce_waits;
        c.quiesce_ns += o.quiesce_ns;
        c.deferred_ops += o.deferred_ops;
        c.defer_offloads += o.defer_offloads;
        c.defer_inline_fallbacks += o.defer_inline_fallbacks;
        c.defer_self_wait_hazards += o.defer_self_wait_hazards;
        c.defer_remote_wait_hazards += o.defer_remote_wait_hazards;
        c.clock_bumps += o.clock_bumps;
        c.validation_extends += o.validation_extends;
        c.trace_spilled_events += o.trace_spilled_events;
        self.commit_latency_ns.merge(&other.commit_latency_ns);
        self.quiesce_wait_ns.merge(&other.quiesce_wait_ns);
        self.retry_backoff_ns.merge(&other.retry_backoff_ns);
        self.defer_queue_to_done_ns
            .merge(&other.defer_queue_to_done_ns);
        self.defer_queue_wait_ns.merge(&other.defer_queue_wait_ns);
    }
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.counters)?;
        writeln!(f, "  commit_latency_ns:        {}", self.commit_latency_ns)?;
        writeln!(f, "  quiesce_wait_ns:          {}", self.quiesce_wait_ns)?;
        writeln!(f, "  retry_backoff_ns:         {}", self.retry_backoff_ns)?;
        writeln!(
            f,
            "  defer_queue_to_done_ns:   {}",
            self.defer_queue_to_done_ns
        )?;
        write!(
            f,
            "  defer_queue_wait_ns:      {}",
            self.defer_queue_wait_ns
        )
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = Stats::default();
        s.on_start();
        s.on_start();
        s.on_commit();
        s.on_conflict();
        s.on_retry();
        s.on_serialization();
        s.on_serial_commit();
        s.on_quiesce(1000);
        s.on_deferred_op();
        let snap = s.snapshot();
        assert_eq!(snap.starts, 2);
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.aborts_conflict, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.serializations, 1);
        assert_eq!(snap.serial_commits, 1);
        assert_eq!(snap.quiesce_waits, 1);
        assert_eq!(snap.quiesce_ns, 1000);
        assert_eq!(snap.deferred_ops, 1);
        assert_eq!(snap.total_commits(), 2);
        assert_eq!(snap.total_aborts(), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = Stats::default();
        s.on_start();
        s.on_capacity();
        s.on_unsupported();
        s.on_quiesce(500);
        s.on_commit_latency(700);
        s.on_defer_offload();
        s.on_defer_queue_wait(900);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
        assert_eq!(s.report().commit_latency_ns.count(), 0);
        assert_eq!(s.report().defer_queue_wait_ns.count(), 0);
    }

    #[test]
    fn delta_since_subtracts() {
        let s = Stats::default();
        s.on_commit();
        let a = s.snapshot();
        s.on_commit();
        s.on_conflict();
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.commits, 1);
        assert_eq!(d.aborts_conflict, 1);
    }

    #[test]
    fn display_contains_key_fields() {
        let s = Stats::default();
        s.on_commit();
        let txt = s.snapshot().to_string();
        assert!(txt.contains("commits=1"));
        assert!(txt.contains("serializations=0"));
        // Counters and durations live in separate sections.
        assert!(txt.contains("counters["));
        assert!(txt.contains("durations["));
        let counters_end = txt.find(']').unwrap();
        let durations_start = txt.find("durations[").unwrap();
        assert!(counters_end < durations_start);
        assert!(!txt[..counters_end].contains("_ns="));
        assert!(txt[durations_start..].contains("quiesce_ns="));
    }

    #[test]
    fn report_collects_all_five_histograms() {
        let s = Stats::default();
        s.on_commit_latency(1_000);
        s.on_quiesce(2_000);
        s.on_backoff(3_000);
        s.on_defer_latency(4_000);
        s.on_defer_queue_wait(5_000);
        let r = s.report();
        assert_eq!(r.commit_latency_ns.count(), 1);
        assert_eq!(r.quiesce_wait_ns.count(), 1);
        assert_eq!(r.retry_backoff_ns.count(), 1);
        assert_eq!(r.defer_queue_to_done_ns.count(), 1);
        assert_eq!(r.defer_queue_wait_ns.count(), 1);
        assert_eq!(r.counters.quiesce_waits, 1);
        assert_eq!(r.counters.quiesce_ns, 2_000);
    }

    #[test]
    fn report_json_has_stable_schema() {
        let s = Stats::default();
        s.on_commit();
        s.on_commit_latency(123);
        let j = s.report().to_json();
        for key in [
            "\"counters\"",
            "\"commits\":1",
            "\"serializations\":0",
            "\"histograms\"",
            "\"commit_latency_ns\"",
            "\"quiesce_wait_ns\"",
            "\"retry_backoff_ns\"",
            "\"defer_queue_to_done_ns\"",
            "\"defer_queue_wait_ns\"",
            "\"defer_offloads\":0",
            "\"defer_inline_fallbacks\":0",
            "\"defer_self_wait_hazards\":0",
            "\"defer_remote_wait_hazards\":0",
            "\"clock_bumps\":0",
            "\"validation_extends\":0",
            "\"trace_spilled_events\":0",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // Balanced braces (cheap well-formedness check).
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON: {j}"
        );
    }

    #[test]
    fn report_delta_subtracts_counters_and_histograms() {
        let s = Stats::default();
        s.on_commit();
        s.on_commit_latency(100);
        s.on_quiesce(1_000);
        let warmup = s.report();
        s.on_commit();
        s.on_commit();
        s.on_commit_latency(200);
        s.on_commit_latency(300);
        s.on_defer_latency(50);
        let total = s.report();
        let steady = total.delta(&warmup);
        assert_eq!(steady.counters.commits, 2);
        assert_eq!(steady.commit_latency_ns.count(), 2);
        assert_eq!(steady.commit_latency_ns.sum(), 500);
        // The warm-up-only quiescence wait is excluded from the interval.
        assert_eq!(steady.counters.quiesce_waits, 0);
        assert_eq!(steady.quiesce_wait_ns.count(), 0);
        assert_eq!(steady.defer_queue_to_done_ns.count(), 1);
        // The delta serializes like any report.
        assert!(steady.to_json().contains("\"commits\":2"));
    }

    #[test]
    fn merge_sums_counters_and_buckets() {
        let a = Stats::default();
        a.on_commit();
        a.on_commit_latency(100);
        let b = Stats::default();
        b.on_commit();
        b.on_commit();
        b.on_commit_latency(200);
        let mut r = a.report();
        r.merge(&b.report());
        assert_eq!(r.counters.commits, 3);
        assert_eq!(r.commit_latency_ns.count(), 2);
    }
}
