//! Condition synchronization: what happens after a closure returns
//! [`StmError::Retry`](crate::StmError::Retry).
//!
//! The paper (§4.2) implements `retry` by aborting and immediately
//! re-executing, spinning in a loop — "until the C++ TMTS includes efficient
//! retry, this cost is unavoidable" — and Figure 2 attributes measurable
//! overhead to exactly this. We implement that policy
//! ([`RetryPolicy::Spin`](crate::config::RetryPolicy)) *and* the efficient
//! parking-based retry the paper wishes for, where the waiting thread
//! registers on every variable in its read set and is unparked by the next
//! committer that writes one of them. The difference between the two is an
//! ablation benchmark (`retry_ablation`).

use ad_support::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::Thread;
use std::time::Duration;

use crate::clock;
use crate::var::VarCore;

/// A parked thread waiting for one of several variables to change.
///
/// One `Waiter` is shared (via `Arc`) between every variable in the
/// transaction's read set. Committers drain the lists of the variables they
/// wrote, set `woken`, and unpark. Stale registrations on unrelated
/// variables are harmless: their eventual drain unparks a thread that simply
/// rechecks its condition.
pub(crate) struct Waiter {
    thread: Thread,
    woken: AtomicBool,
}

impl Waiter {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Waiter {
            thread: std::thread::current(),
            woken: AtomicBool::new(false),
        })
    }

    /// Mark woken and unpark the owning thread. Called by committers.
    pub(crate) fn wake(&self) {
        self.woken.store(true, Ordering::Release);
        self.thread.unpark();
    }

    pub(crate) fn is_woken(&self) -> bool {
        self.woken.load(Ordering::Acquire)
    }
}

/// Snapshot of a read set taken when a transaction retries: the variables it
/// observed and the versions it observed them at.
pub(crate) struct WatchList {
    entries: Vec<(Arc<VarCore>, u64)>,
}

impl WatchList {
    pub(crate) fn new(entries: Vec<(Arc<VarCore>, u64)>) -> Self {
        WatchList { entries }
    }

    /// Give the entry vector back (the runner recycles its capacity into
    /// the pooled transaction descriptor after the wait finishes).
    pub(crate) fn into_entries(self) -> Vec<(Arc<VarCore>, u64)> {
        self.entries
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Has any watched variable changed (or is currently being changed)
    /// since it was read?
    fn any_changed(&self) -> bool {
        self.entries.iter().any(|(core, seen)| {
            let v = core.version();
            clock::is_locked(v) || v != *seen
        })
    }

    /// Spin-based retry, as implemented in the paper: poll the watched
    /// versions, yielding the CPU with increasing reluctance. Returns as
    /// soon as a change is visible (or immediately if the read set is empty,
    /// in which case waiting would be futile — the closure is re-executed
    /// and will typically retry again; an empty-read-set retry is a
    /// programming error that we surface by spinning politely).
    pub(crate) fn wait_spin(&self) {
        if self.is_empty() {
            std::thread::yield_now();
            return;
        }
        let mut spins = 0u32;
        while !self.any_changed() {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Parking-based retry: register a waiter on every watched variable,
    /// recheck (to close the race with a committer that published between
    /// our read and our registration), then park until a committer wakes us.
    ///
    /// A bounded `park_timeout` recheck makes the mechanism robust against
    /// missed wakeups from non-transactional stores.
    pub(crate) fn wait_park(&self) {
        if self.is_empty() {
            std::thread::yield_now();
            return;
        }
        let waiter = Waiter::new();
        for (core, _) in &self.entries {
            core.register_waiter(Arc::clone(&waiter));
        }
        // Recheck after registration: a commit that happened in between has
        // already drained (or will drain) our registration, but its version
        // bump is visible now, so we must not park.
        if self.any_changed() {
            return;
        }
        while !waiter.is_woken() {
            std::thread::park_timeout(Duration::from_millis(1));
            if self.any_changed() {
                return;
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::var::new_value;

    fn core_with(v: u64) -> Arc<VarCore> {
        let c = VarCore::new(new_value(0u32));
        c.force_version_for_test(v);
        c
    }

    #[test]
    fn empty_watchlist_returns_immediately() {
        let wl = WatchList::new(Vec::new());
        wl.wait_spin();
        wl.wait_park();
    }

    #[test]
    fn spin_wait_observes_change() {
        let core = core_with(10);
        let wl = WatchList::new(vec![(Arc::clone(&core), 10)]);
        let c2 = Arc::clone(&core);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            c2.force_version_for_test(12);
        });
        wl.wait_spin();
        h.join().unwrap();
        assert_eq!(core.version(), 12);
    }

    #[test]
    fn park_wait_woken_by_waker() {
        let core = core_with(10);
        let wl = WatchList::new(vec![(Arc::clone(&core), 10)]);
        let c2 = Arc::clone(&core);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            c2.force_version_for_test(12);
            c2.wake_waiters();
        });
        wl.wait_park();
        h.join().unwrap();
    }

    #[test]
    fn park_wait_does_not_park_when_already_changed() {
        let core = core_with(10);
        // Watch a stale version: should return without parking at all.
        let wl = WatchList::new(vec![(Arc::clone(&core), 8)]);
        let start = std::time::Instant::now();
        wl.wait_park();
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn waiter_wake_is_idempotent() {
        let w = Waiter::new();
        assert!(!w.is_woken());
        w.wake();
        w.wake();
        assert!(w.is_woken());
    }
}
