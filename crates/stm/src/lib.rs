//! # ad-stm — a TL2-style software transactional memory
//!
//! The TM substrate for the *atomic deferral* reproduction (Zhou, Luchangco,
//! Spear — OPODIS 2017 / SPAA 2017 brief announcement). It provides the
//! features of a GCC-libitm-class runtime that the paper's mechanism and
//! evaluation depend on:
//!
//! * **Optimistic transactions** over typed transactional variables
//!   ([`TVar`]): invisible reads with commit-time validation and snapshot
//!   extension, lazy versioning, per-variable version locks, and a global
//!   version clock (TL2).
//! * **`retry` condition synchronization** (Harris et al.) with two wait
//!   policies: the paper's spin-and-re-execute and an efficient
//!   parking-based variant.
//! * **Irrevocability** ([`Runtime::synchronized`], [`Tx::require_irrevocable`]):
//!   serial execution under a global serial lock, used for operations that
//!   cannot be rolled back (I/O) and by the contention manager as a last
//!   resort.
//! * **Quiescence**: writer commits wait for all earlier concurrent
//!   transactions (privatization safety, paper §2) — the very cost that
//!   motivates atomic deferral (Figure 1).
//! * **Contention management**: randomized backoff, then serialization
//!   after a configurable number of failures (GCC defaults: 100 STM / 2 HTM).
//! * **Simulated best-effort HTM** ([`TmConfig::htm`]): capacity-bounded
//!   footprint with [`StmError::Capacity`] aborts, no quiescence,
//!   abort-on-irrevocable-op, and a low retry budget before the serial
//!   fallback lock — a behavioural stand-in for Intel TSX (DESIGN.md §5).
//! * **Post-commit hooks** ([`Tx::defer_post_commit`], [`Tx::defer_drop`]):
//!   the runtime half of the paper's modified `TxEnd` (Listing 1), on which
//!   the `ad-defer` crate builds `atomic_defer`.
//!
//! ## Example
//!
//! ```
//! use ad_stm::{atomically, TVar};
//!
//! let from = TVar::new(100i64);
//! let to = TVar::new(0i64);
//!
//! atomically(|tx| {
//!     let a = tx.read(&from)?;
//!     let b = tx.read(&to)?;
//!     tx.write(&from, a - 10)?;
//!     tx.write(&to, b + 10)
//! });
//!
//! assert_eq!(from.load(), 90);
//! assert_eq!(to.load(), 10);
//! ```
//!
//! ## Blocking on a condition
//!
//! ```
//! use ad_stm::{atomically, TVar};
//! use std::thread;
//!
//! let ready = TVar::new(false);
//! let r2 = ready.clone();
//! let waiter = thread::spawn(move || {
//!     atomically(|tx| {
//!         if !tx.read(&r2)? {
//!             return tx.retry();
//!         }
//!         Ok(())
//!     });
//! });
//! atomically(|tx| tx.write(&ready, true));
//! waiter.join().unwrap();
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the one module allowed to use `unsafe` is
// `snapshot` (the epoch-reclaimed lock-free value cell), which opts in
// with a scoped `#![allow(unsafe_code)]` and documents its invariants.
// Everything else in the crate remains safe Rust.
#![deny(unsafe_code)]

mod clock;
mod cm;
mod config;
mod error;
mod fxhash;
mod registry;
mod retry;
mod runtime;
mod smallmap;
mod snapshot;
mod stats;
mod trace;
mod tx;
mod var;

/// Loom-style concurrency models of the crate's riskiest protocols
/// (epoch retirement vs. pinned readers, quiescence vs. in-flight
/// commits). Compiled only under `RUSTFLAGS="--cfg loom"` test builds —
/// see VERIFICATION.md for what each model proves and how to run them.
#[cfg(all(test, loom))]
mod verify;

pub use clock::ClockPolicy;
pub use config::{DeferExecCfg, HtmConfig, Mode, RetryPolicy, TmConfig};
pub use error::{StmError, StmResult};
pub use runtime::{atomically, synchronized, Runtime};
pub use stats::{StatsReport, StatsSnapshot};
pub use trace::{ContentionEntry, ContentionReport, EventKind, Trace, TraceEvent};
pub use tx::{PostCommitFn, Tx};
pub use var::TVar;

/// Re-exported histogram snapshot type ([`StatsReport`]'s field type), so
/// downstream crates can consume quantiles without naming `ad-support`.
pub use ad_support::hist::HistogramSnapshot;

/// Process-wide epoch-reclamation gauges: `(retired, freed)` value counts
/// since process start. `retired - freed` approximates the deferred-free
/// backlog (OBSERVABILITY.md); global across runtimes because reclamation
/// itself is.
pub fn reclaim_counters() -> (u64, u64) {
    snapshot::reclaim_counters()
}

/// Re-exported internals used by sibling crates' benchmarks and tests.
pub mod internals {
    /// Current global clock value (even).
    pub use crate::clock::now as clock_now;
    /// Fx-hashed map/set aliases shared with sibling crates.
    pub use crate::fxhash::{FxHashMap, FxHashSet};
}
