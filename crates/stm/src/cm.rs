//! Contention management (paper §2).
//!
//! On conflict aborts we back off with randomized exponential delay; after
//! `serialize_after` failed attempts the runtime escalates the transaction
//! to serial, irrevocable execution — "most TM implementations employ
//! serialization as a last resort". The threshold is the knob explored by
//! the `serialize_threshold` ablation bench (cf. Diegues et al. [4]).

use std::cell::Cell;

thread_local! {
    /// Per-thread xorshift state for backoff jitter. Seeded from the
    /// thread's slot address so threads desynchronize without needing an
    /// RNG dependency inside the STM.
    static JITTER: Cell<u64> = Cell::new({
        let local = 0u8;
        (&local as *const u8 as u64) | 1
    });
}

fn next_jitter() -> u64 {
    JITTER.with(|s| {
        let mut x = s.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        x
    })
}

/// Tracks one logical transaction's attempts and provides backoff.
pub(crate) struct ContentionManager {
    failures: u32,
    serialize_after: u32,
    max_spins: u32,
}

impl ContentionManager {
    pub(crate) fn new(serialize_after: u32, max_spins: u32) -> Self {
        ContentionManager {
            failures: 0,
            serialize_after,
            max_spins: max_spins.max(1),
        }
    }

    /// Record a failed attempt (conflict/capacity/unsupported) and back off.
    pub(crate) fn on_failure(&mut self) {
        self.failures += 1;
        self.backoff();
    }

    /// Record an `unsupported` abort: the closure needs serial mode. No
    /// point in backing off or re-trying speculatively more than the HTM/
    /// STM policy allows — we still count it so `should_serialize` fires,
    /// but callers may also force serialization immediately.
    pub(crate) fn on_unsupported(&mut self) {
        self.failures = self.failures.max(self.serialize_after);
    }

    /// Should the next attempt run serially/irrevocably?
    pub(crate) fn should_serialize(&self) -> bool {
        self.failures >= self.serialize_after
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn failures(&self) -> u32 {
        self.failures
    }

    /// Randomized exponential backoff: spin between 0 and
    /// `min(64 << failures, max_spins)` iterations, yielding occasionally
    /// for long waits.
    fn backoff(&self) {
        let ceiling = (64u64 << self.failures.min(20)).min(self.max_spins as u64);
        let spins = next_jitter() % (ceiling + 1);
        for i in 0..spins {
            if i % 1024 == 1023 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn serializes_after_threshold() {
        let mut cm = ContentionManager::new(3, 64);
        assert!(!cm.should_serialize());
        cm.on_failure();
        cm.on_failure();
        assert!(!cm.should_serialize());
        cm.on_failure();
        assert!(cm.should_serialize());
        assert_eq!(cm.failures(), 3);
    }

    #[test]
    fn threshold_zero_serializes_immediately() {
        let cm = ContentionManager::new(0, 64);
        assert!(cm.should_serialize());
    }

    #[test]
    fn unsupported_jumps_to_threshold() {
        let mut cm = ContentionManager::new(100, 64);
        cm.on_unsupported();
        assert!(cm.should_serialize());
    }

    #[test]
    fn jitter_advances() {
        let a = next_jitter();
        let b = next_jitter();
        assert_ne!(a, b);
    }

    #[test]
    fn backoff_terminates_even_at_high_failure_counts() {
        let mut cm = ContentionManager::new(1000, 1 << 10);
        for _ in 0..64 {
            cm.on_failure();
        }
        // Reaching here means backoff() didn't overflow or hang.
        assert_eq!(cm.failures(), 64);
    }
}
