//! The transaction runner: attempt loop, contention management, retry
//! waiting, serial escalation, and post-commit (deferred-operation)
//! execution.

use ad_support::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use ad_support::sync::RwLock;

use crate::clock;
use crate::cm::ContentionManager;
use crate::config::{RetryPolicy, TmConfig};
use crate::error::{StmError, StmResult};
use crate::registry::{ActivitySlot, Registry};
use crate::stats::{Stats, StatsReport, StatsSnapshot};
use crate::trace::{cause, EventKind, Trace, TraceSink};
use crate::tx::{CommitOutput, Tx, TxBuffers};

static NEXT_RUNTIME_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Is this thread currently executing a transaction attempt (any
    /// runtime)? Starting an independent transaction from inside one is a
    /// deadlock hazard (the serial lock's read side is held, and a queued
    /// irrevocable writer would block the inner read acquisition forever),
    /// so the runner refuses it loudly. Nesting is *flat*: nested atomic
    /// blocks simply use the enclosing `Tx`.
    static IN_TRANSACTION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Clears the in-transaction marker even on unwind.
struct InTxGuard;

impl InTxGuard {
    fn enter(what: &str) -> InTxGuard {
        IN_TRANSACTION.with(|c| {
            assert!(
                !c.get(),
                "{what} called from inside a transaction on the same thread: \
                 nesting is flat — use the enclosing `Tx` for nested atomic \
                 blocks, or move the call into a post-commit (deferred) action"
            );
            c.set(true);
        });
        InTxGuard
    }
}

impl Drop for InTxGuard {
    fn drop(&mut self) {
        IN_TRANSACTION.with(|c| c.set(false));
    }
}

pub(crate) struct RtInner {
    id: u64,
    cfg: TmConfig,
    /// GCC-libitm-style serial lock: every transaction attempt holds the
    /// read side; serial/irrevocable execution takes the write side,
    /// excluding all speculation. In simulated-HTM mode this doubles as the
    /// fallback lock that all hardware transactions implicitly subscribe to.
    serial: RwLock<()>,
    registry: Registry,
    stats: Stats,
    /// Observability: the per-thread event rings plus the master on/off
    /// toggle that also gates the optional hot-path timing (commit latency,
    /// backoff). One relaxed load per attempt when off.
    sink: TraceSink,
    /// The worker pool behind [`DeferExecCfg::Pool`]; `None` under the
    /// default `Inline` executor. Not built under `--cfg loom` (the pool
    /// spawns real OS threads; the executor hand-off protocol is modeled
    /// directly in the `verify` suites instead).
    #[cfg(not(loom))]
    defer_pool: Option<ad_support::pool::Pool>,
}

/// A TM runtime: a policy configuration plus the machinery (serial lock,
/// activity registry, statistics) shared by the transactions that run under
/// it.
///
/// `TVar`s are plain shared memory and are not tied to a runtime, but **all
/// transactions that access a given set of `TVar`s must use the same
/// runtime** — the serial lock only excludes speculation within one runtime.
/// Use [`Runtime::global`] (or the free functions [`atomically`] /
/// [`synchronized`]) unless an experiment needs custom policy.
///
/// Cloning a `Runtime` clones a handle to the same runtime.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RtInner>,
}

impl Runtime {
    /// Create a runtime with the given policy configuration.
    pub fn new(cfg: TmConfig) -> Self {
        #[cfg(loom)]
        assert!(
            !cfg.defer_exec.is_pool(),
            "DeferExecCfg::Pool spawns OS threads and is not available under --cfg loom"
        );
        // Non-transactional stamps must merge the shard cells once any
        // sharded runtime exists (TVars are shared across runtimes).
        clock::note_policy_in_use(cfg.clock);
        Runtime {
            inner: Arc::new(RtInner {
                id: NEXT_RUNTIME_ID.fetch_add(1, Ordering::Relaxed),
                cfg,
                serial: RwLock::new(()),
                registry: Registry::default(),
                stats: Stats::default(),
                sink: TraceSink::new(cfg.trace_ring_events, cfg.trace_spill),
                #[cfg(not(loom))]
                defer_pool: match cfg.defer_exec {
                    crate::config::DeferExecCfg::Inline => None,
                    crate::config::DeferExecCfg::Pool { workers, queue_cap } => {
                        Some(ad_support::pool::Pool::new(workers, queue_cap))
                    }
                    crate::config::DeferExecCfg::AutoPool {
                        min_workers,
                        max_workers,
                        queue_cap,
                        idle_timeout_ms,
                    } => Some(ad_support::pool::Pool::with_limits(
                        min_workers,
                        max_workers,
                        queue_cap,
                        std::time::Duration::from_millis(idle_timeout_ms),
                    )),
                },
            }),
        }
    }

    /// The process-wide default runtime (STM defaults).
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| Runtime::new(TmConfig::stm()))
    }

    /// This runtime's policy configuration.
    ///
    /// Returned by reference: `TmConfig` is `Copy`, so callers that want a
    /// value can dereference, but hot paths (per-access mode checks) read
    /// fields without copying the whole struct.
    pub fn config(&self) -> &TmConfig {
        &self.inner.cfg
    }

    pub(crate) fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    pub(crate) fn stats_ref(&self) -> &Stats {
        &self.inner.stats
    }

    /// Snapshot of this runtime's statistics counters.
    pub fn stats(&self) -> StatsSnapshot {
        let mut s = self.inner.stats.snapshot();
        // Spill accounting lives in the trace sink (per-thread monotone
        // counters), not the Stats block; overlay it here so consumers
        // see one coherent snapshot.
        s.trace_spilled_events = self.inner.sink.spilled_total();
        s
    }

    /// Full observability report: the counters plus the four latency
    /// histograms (commit latency, quiescence wait, retry backoff,
    /// deferred-op queue-to-completion). Serializable via
    /// [`StatsReport::to_json`]. Commit-latency, backoff and defer
    /// histograms only fill while [`Runtime::set_tracing`] is on; the
    /// quiescence histogram is always live.
    pub fn snapshot_stats(&self) -> StatsReport {
        let mut r = self.inner.stats.report();
        r.counters.trace_spilled_events = self.inner.sink.spilled_total();
        r
    }

    /// Zero the statistics counters and histograms.
    pub fn reset_stats(&self) {
        self.inner.stats.reset();
    }

    /// Turn the observability layer on or off. Off (the default) costs one
    /// relaxed atomic load per transaction attempt; on, every transaction
    /// records lifecycle events into its thread's ring buffer and the
    /// toggle-gated histograms start filling.
    pub fn set_tracing(&self, on: bool) {
        self.inner.sink.set_enabled(on);
    }

    /// Is event tracing currently enabled?
    pub fn tracing_enabled(&self) -> bool {
        self.inner.sink.enabled()
    }

    /// Drain every thread's event ring into one timestamp-sorted timeline,
    /// clearing the rings. [`Trace::dropped`] counts events lost to ring
    /// wrap-around.
    pub fn take_trace(&self) -> Trace {
        self.inner.sink.take()
    }

    /// Record one event for the calling thread, if tracing is on. Used by
    /// sibling crates (via [`Tx::trace`]) to put their own lifecycle points
    /// — e.g. `ad-defer`'s lock subscriptions — on the same timeline.
    ///
    /// `#[cold]`/`#[inline(never)]`: every call site is behind an
    /// `if obs` that is false in the common (tracing-off) configuration.
    /// Keeping the body out of line stops the dozen emission sites from
    /// bloating the transaction hot path (measurably: ~8% on short
    /// read-mostly transactions when this was a plain `#[inline]`).
    #[cold]
    #[inline(never)]
    pub(crate) fn trace_event(&self, kind: EventKind, arg: u64) {
        self.inner
            .sink
            .push(self.inner.id, crate::trace::now_ns(), kind, arg);
    }

    /// [`trace_event`](Self::trace_event) with a caller-supplied timestamp,
    /// for the two per-attempt events (`Begin`, `Commit`) whose emission
    /// sites already read the clock for latency accounting — reusing the
    /// stamp halves the clock reads on a traced commit. `#[inline]` unlike
    /// [`trace_event`](Self::trace_event): every call site is already
    /// behind a tracing-on branch, so the tracing-off path never sees it.
    #[inline]
    pub(crate) fn trace_event_at(&self, ts: u64, kind: EventKind, arg: u64) {
        self.inner.sink.push(self.inner.id, ts, kind, arg);
    }

    /// Record an application-level event on this runtime's timeline from
    /// *outside* any transaction — deferred operations, I/O helper threads.
    /// A no-op (one relaxed load) when tracing is off. This is how `ad-kv`
    /// puts its [`EventKind::WalAppend`]/[`EventKind::WalFsync`] points
    /// next to the STM lifecycle events; inside a transaction use
    /// [`Tx::trace`] instead, which caches the toggle.
    #[inline]
    pub fn trace_app(&self, kind: EventKind, arg: u64) {
        if self.inner.sink.enabled() {
            self.trace_event(kind, arg);
        }
    }

    /// Run `f` as an atomic transaction, re-executing on conflicts and
    /// blocking on [`retry`](Tx::retry), until it commits; returns the
    /// closure's result.
    ///
    /// The closure may run many times and must be side-effect-free apart
    /// from its transactional accesses — effects that cannot be repeated
    /// belong in a deferred operation (`ad-defer`) or behind
    /// [`Tx::require_irrevocable`].
    pub fn atomically<T>(&self, f: impl FnMut(&mut Tx) -> StmResult<T>) -> T {
        self.run(f, false)
    }

    /// Run `f` irrevocably from the start (the TMTS `synchronized` block):
    /// the transaction executes under the serial lock, excluding all other
    /// transactions in this runtime, and may perform I/O directly.
    pub fn synchronized<T>(&self, f: impl FnMut(&mut Tx) -> StmResult<T>) -> T {
        self.run(f, true)
    }

    fn run<T>(&self, mut f: impl FnMut(&mut Tx) -> StmResult<T>, start_serial: bool) -> T {
        let cfg = self.inner.cfg;
        let mut cm = ContentionManager::new(cfg.serialize_after, cfg.max_backoff_spins);
        let slot = self.inner.registry.my_slot(self.inner.id);
        let mut counted_serialization = false;
        // One pooled descriptor bundle for every attempt of this
        // transaction: conflicts and retries re-use its collections
        // instead of reallocating them.
        let mut bufs = crate::tx::take_buffers();

        loop {
            let serial = start_serial || cm.should_serialize();
            self.inner.stats.on_start();
            if serial && !counted_serialization {
                self.inner.stats.on_serialization();
                counted_serialization = true;
            }

            // The whole observability layer hangs off this one relaxed
            // load: when off, no event is recorded and no clock is read.
            // Timing uses the coarse TSC source: two clock_gettime calls
            // per attempt were most of tracing's ~2× cost on 200 ns
            // transactions (OBSERVABILITY.md "Tracing overhead").
            let obs = self.inner.sink.enabled();
            let started = if obs {
                Some(crate::trace::now_ns())
            } else {
                None
            };

            let outcome = if serial {
                self.attempt_serial(&mut f, &slot, &mut bufs, started)
            } else {
                self.attempt_speculative(&mut f, &slot, &mut bufs, started)
            };

            match outcome {
                AttemptOutcome::Committed(value, output) => {
                    if serial {
                        self.inner.stats.on_serial_commit();
                    } else {
                        self.inner.stats.on_commit();
                    }
                    if let Some(t0) = started {
                        let end = crate::trace::now_ns();
                        self.inner.stats.on_commit_latency(end.saturating_sub(t0));
                        self.trace_event_at(end, EventKind::Commit, serial as u64);
                    }
                    // Pool the buffers before running post-commit actions:
                    // a deferred operation may start its own transaction on
                    // this thread and should find them waiting.
                    crate::tx::put_buffers(bufs);
                    // Reclamation safe point (snapshot.rs invariant 5):
                    // every guard — epoch pin, activity slot, serial lock —
                    // dropped when the attempt returned, and commit released
                    // all version locks, so freed values may run arbitrary
                    // user Drop code (even transactions) without deadlock.
                    crate::snapshot::flush();
                    self.run_post_commit(output);
                    return value;
                }
                AttemptOutcome::Waiting(watch) => {
                    self.inner.stats.on_retry();
                    // Safe point before a potentially long park, so this
                    // thread's retired values from earlier commits are not
                    // stranded while it sleeps.
                    crate::snapshot::flush();
                    match cfg.retry_policy {
                        RetryPolicy::Spin => watch.wait_spin(),
                        RetryPolicy::Park => watch.wait_park(),
                    }
                    bufs.recycle_watch(watch);
                }
                AttemptOutcome::Failed(err) => {
                    match err {
                        StmError::Conflict => self.inner.stats.on_conflict(),
                        StmError::Capacity => self.inner.stats.on_capacity(),
                        StmError::Unsupported => self.inner.stats.on_unsupported(),
                        StmError::Retry => unreachable!("retry handled as Waiting"),
                    }
                    if obs {
                        let code = match err {
                            StmError::Conflict => cause::CONFLICT,
                            StmError::Capacity => cause::CAPACITY,
                            StmError::Unsupported => cause::UNSUPPORTED,
                            StmError::Retry => unreachable!(),
                        };
                        self.trace_event(EventKind::Abort, code);
                    }
                    if err == StmError::Unsupported {
                        // No point re-speculating: go straight to serial.
                        cm.on_unsupported();
                    } else if obs {
                        let b0 = crate::trace::now_ns();
                        cm.on_failure();
                        let ns = crate::trace::now_ns().saturating_sub(b0);
                        self.inner.stats.on_backoff(ns);
                        self.trace_event(EventKind::Backoff, ns);
                    } else {
                        cm.on_failure();
                    }
                }
            }
        }
    }

    fn attempt_speculative<T>(
        &self,
        f: &mut impl FnMut(&mut Tx) -> StmResult<T>,
        slot: &Arc<ActivitySlot>,
        bufs: &mut TxBuffers,
        started: Option<u64>,
    ) -> AttemptOutcome<T> {
        let _in_tx = InTxGuard::enter("atomically");
        // Hold the serial lock's read side for the whole attempt, commit
        // and quiescence included: an irrevocable transaction can only run
        // once we are completely done.
        let _guard = self.inner.serial.read();
        let _slot_guard = SlotGuard(slot);
        // Pin the epoch once for the whole attempt: every snapshot read
        // inside is then a plain depth increment instead of a fence. The
        // guard drops before any retry wait, so parked threads never stall
        // reclamation.
        let _epoch = crate::snapshot::pin_scope();
        let mut tx = Tx::new(self, bufs, Arc::clone(slot), false, started);
        slot.begin(tx.read_version());

        match f(&mut tx) {
            Ok(value) => match tx.commit() {
                Ok(output) => AttemptOutcome::Committed(value, output),
                Err(err) => AttemptOutcome::Failed(err),
            },
            Err(StmError::Retry) => AttemptOutcome::Waiting(tx.watch_list()),
            Err(err) => AttemptOutcome::Failed(err),
        }
    }

    fn attempt_serial<T>(
        &self,
        f: &mut impl FnMut(&mut Tx) -> StmResult<T>,
        slot: &Arc<ActivitySlot>,
        bufs: &mut TxBuffers,
        started: Option<u64>,
    ) -> AttemptOutcome<T> {
        let _in_tx = InTxGuard::enter("synchronized/serial execution");
        let _guard = self.inner.serial.write();
        let _slot_guard = SlotGuard(slot);
        let _epoch = crate::snapshot::pin_scope();
        let mut tx = Tx::new(self, bufs, Arc::clone(slot), true, started);
        slot.begin(clock::now());

        match f(&mut tx) {
            Ok(value) => {
                let output = tx.finish_serial();
                AttemptOutcome::Committed(value, output)
            }
            Err(StmError::Retry) => {
                // Condition synchronization from serial mode is only
                // possible before any irrevocable write has happened —
                // afterwards there is nothing to roll back.
                assert!(
                    !tx.serial_wrote(),
                    "retry after writes in an irrevocable transaction: \
                     irrevocable effects cannot be rolled back"
                );
                AttemptOutcome::Waiting(tx.watch_list())
            }
            Err(err) => {
                assert!(
                    !tx.serial_wrote(),
                    "abort ({err}) after writes in an irrevocable transaction"
                );
                AttemptOutcome::Failed(err)
            }
        }
    }

    /// Hand one committed transaction's post-commit work to the configured
    /// executor — the tail of the paper's `TxEnd` (Listing 1). Runs with no
    /// locks held (the serial guard is released).
    ///
    /// `Inline` (default): the batch runs here, on the committing thread, in
    /// commit order, before `atomically` returns. `Pool`: the batch is
    /// queued to the worker pool and `atomically` returns immediately; a
    /// worker runs the ops and their closing `TxLock` releases. If the
    /// pool's bounded queue is full, the batch falls back to running inline
    /// — blocking the committer on a saturated pool would only add
    /// queue-wait latency on top of work it could already be doing itself
    /// (the `defer_inline_fallbacks` counter reports how often). Wherever
    /// it runs, the ops of one transaction run sequentially in call order,
    /// and ops of different transactions that share a `TxLock` serialize in
    /// lock-acquisition order — the later committer's lock acquisition
    /// conflicts until the earlier batch releases — so the fallback running
    /// ahead of still-queued batches cannot reorder conflicting ops.
    fn run_post_commit(&self, output: CommitOutput) {
        if output.is_empty() {
            // The common no-defer transaction never touches the executor.
            return;
        }
        #[cfg(not(loom))]
        if let Some(pool) = &self.inner.defer_pool {
            let obs = self.inner.sink.enabled();
            let t_submit = if obs {
                Some(crate::trace::now_ns())
            } else {
                None
            };
            let rt = self.clone();
            let job = Box::new(move || {
                if let Some(t0) = t_submit {
                    let waited = crate::trace::now_ns().saturating_sub(t0);
                    rt.inner.stats.on_defer_queue_wait(waited);
                }
                rt.run_batch(output);
            });
            match pool.try_submit(job) {
                Ok(depth) => {
                    self.inner.stats.on_defer_offload();
                    if obs {
                        self.trace_event(EventKind::DeferOffload, depth as u64);
                    }
                }
                Err(job) => {
                    // Queue full: degrade to inline execution.
                    self.inner.stats.on_defer_inline_fallback();
                    job();
                }
            }
            return;
        }
        self.run_batch(output);
    }

    /// Execute one committed batch: deferred operations in call order, then
    /// deferred frees. Called on the committing thread (`Inline`) or on a
    /// pool worker (`Pool`); deferred operations may start transactions of
    /// their own in either venue (workers are ordinary threads with no
    /// transaction in flight).
    fn run_batch(&self, output: CommitOutput) {
        let CommitOutput {
            actions,
            drops,
            enqueue_ts,
        } = output;
        let obs = self.inner.sink.enabled();
        for (i, action) in actions.into_iter().enumerate() {
            self.inner.stats.on_deferred_op();
            if obs {
                self.trace_event(EventKind::DeferExecStart, i as u64);
            }
            action(self);
            if obs {
                self.trace_event(EventKind::DeferExecEnd, i as u64);
                // Queue-to-completion: enqueue inside the transaction →
                // execution finished here. The timestamp vector is only
                // populated when the committing attempt ran with obs on.
                if let Some(&t_enq) = enqueue_ts.get(i) {
                    let done = crate::trace::now_ns();
                    self.inner
                        .stats
                        .on_defer_latency(done.saturating_sub(t_enq));
                }
            }
        }
        drop(drops);
    }

    /// Block until every deferred-op batch handed to the `Pool` executor so
    /// far has completed (ops run, locks released). A no-op under `Inline`,
    /// where `atomically` only returns after its batch ran. Useful at
    /// shutdown and in tests/benchmarks that need an "all quiet" point;
    /// per-operation completion is better served by an `ad-defer`
    /// `DeferHandle`.
    pub fn drain_deferred(&self) {
        #[cfg(not(loom))]
        if let Some(pool) = &self.inner.defer_pool {
            pool.drain();
        }
    }

    /// Deferred-op batches currently queued or running on the `Pool`
    /// executor (always 0 under `Inline`).
    pub fn deferred_pending(&self) -> usize {
        #[cfg(not(loom))]
        if let Some(pool) = &self.inner.defer_pool {
            return pool.pending();
        }
        0
    }

    /// Would blocking on deferred work from the calling thread risk the
    /// single-worker self-deadlock of DESIGN.md §10 (i)? True exactly when
    /// this thread is the *sole* worker of this runtime's `Pool` executor:
    /// whatever it waits for is queued behind the batch it is running and
    /// can never be dispatched. Always false under `Inline` (no workers)
    /// and with two or more workers (another worker can serve the queue).
    pub fn defer_wait_would_self_deadlock(&self) -> bool {
        #[cfg(not(loom))]
        if let Some(pool) = &self.inner.defer_pool {
            return pool.wait_would_self_deadlock();
        }
        false
    }

    /// Record a detected self-wait hazard (see
    /// [`Runtime::defer_wait_would_self_deadlock`]): bump the
    /// `defer_self_wait_hazards` counter, emit a `DeferSelfWaitHazard`
    /// trace event carrying the pool's queue depth, and — in debug builds —
    /// panic via `debug_assert!` so tests and dev runs fail loudly instead
    /// of hanging. Returns whether the hazard was present (callers may use
    /// this to degrade, e.g. drain inline instead of blocking).
    ///
    /// `ad-defer`'s `DeferHandle::wait`/`wait_all` call this before
    /// blocking; it is public so other blocking-on-deferred-work paths can
    /// reuse the same detection.
    pub fn check_defer_self_wait(&self) -> bool {
        if !self.defer_wait_would_self_deadlock() {
            return false;
        }
        self.inner.stats.on_defer_self_wait_hazard();
        #[cfg(not(loom))]
        {
            let depth = self
                .inner
                .defer_pool
                .as_ref()
                .map_or(0, |p| p.queue_len() as u64);
            self.trace_event(EventKind::DeferSelfWaitHazard, depth);
        }
        debug_assert!(
            false,
            "DeferHandle wait on the runtime's only defer-pool worker: the \
             waited-on op may be queued behind this job and can never run \
             (self-deadlock, DESIGN.md §10). Size the pool with >= 2 workers \
             or complete the dependency before this op."
        );
        true
    }

    /// Live worker count of the `Pool`/`AutoPool` executor (0 under
    /// `Inline`). On an autoscaling pool this floats between the
    /// configured min and max with load.
    pub fn defer_worker_count(&self) -> usize {
        #[cfg(not(loom))]
        if let Some(pool) = &self.inner.defer_pool {
            return pool.worker_count();
        }
        0
    }

    /// Would blocking on *this* runtime's deferred work from the calling
    /// thread tie up a worker of some **other** pool? True when the caller
    /// is a pool worker but not one of this runtime's own — the
    /// cross-runtime wait hazard of DESIGN.md §14: runtime A's worker
    /// blocking on runtime B's `DeferHandle` occupies a thread A may
    /// itself be waiting on, and with symmetric traffic the two pools can
    /// starve each other. Unlike the single-worker self-wait this is not
    /// necessarily a deadlock (ad-shard's ascending-shard prepare order
    /// bounds it), so it is reported, not asserted.
    pub fn defer_wait_is_remote_from_worker(&self) -> bool {
        #[cfg(not(loom))]
        {
            if !ad_support::pool::Pool::current_thread_is_any_worker() {
                return false;
            }
            if let Some(pool) = &self.inner.defer_pool {
                if pool.current_thread_is_worker() {
                    return false; // own-pool worker: the self-wait check owns this case
                }
            }
            true
        }
        #[cfg(loom)]
        false
    }

    /// Record a detected cross-runtime wait hazard (see
    /// [`Runtime::defer_wait_is_remote_from_worker`]): bump the
    /// `defer_remote_wait_hazards` counter and emit a
    /// `DeferRemoteWaitHazard` trace event carrying this (the waited-on)
    /// runtime's id. No `debug_assert!`, unlike
    /// [`Runtime::check_defer_self_wait`] — a bounded remote wait is legal
    /// (it is exactly how ad-shard's coordinator blocks for participant
    /// acks); the counter and event exist so an embedding can audit where
    /// its pools block on each other. Returns whether the hazard was
    /// present.
    pub fn check_defer_remote_wait(&self) -> bool {
        if !self.defer_wait_is_remote_from_worker() {
            return false;
        }
        self.inner.stats.on_defer_remote_wait_hazard();
        self.trace_app(EventKind::DeferRemoteWaitHazard, self.inner.id);
        true
    }

    /// Internal identifier (stable for the lifetime of the runtime).
    pub fn id(&self) -> u64 {
        self.inner.id
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("id", &self.inner.id)
            .field("cfg", &self.inner.cfg)
            .finish()
    }
}

enum AttemptOutcome<T> {
    Committed(T, CommitOutput),
    Waiting(crate::retry::WatchList),
    Failed(StmError),
}

/// Ensures a panicking closure cannot leave its activity slot marked active,
/// which would hang every future quiescing writer.
struct SlotGuard<'a>(&'a Arc<ActivitySlot>);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.0.end();
    }
}

/// Run a transaction on the [global runtime](Runtime::global).
pub fn atomically<T>(f: impl FnMut(&mut Tx) -> StmResult<T>) -> T {
    Runtime::global().atomically(f)
}

/// Run an irrevocable transaction on the [global runtime](Runtime::global).
pub fn synchronized<T>(f: impl FnMut(&mut Tx) -> StmResult<T>) -> T {
    Runtime::global().synchronized(f)
}
