//! The global version clock (TL2), with pluggable commit-clock policies.
//!
//! Every committed value carries an *even* version timestamp; an odd value
//! in a variable's version word means "write-locked by a committing
//! transaction". Where those timestamps come from is the commit-clock
//! policy ([`ClockPolicy`], selected per runtime via
//! `TmConfig::with_clock`):
//!
//! * [`ClockPolicy::Gv2`] — the classic TL2 clock: one process-wide word,
//!   advanced with a `fetch_add(2, SeqCst)` by every committing writer.
//!   Timestamps are unique, which enables the `wv == rv + 2` validation
//!   fast path, but every commit does a cross-core RMW on the same cache
//!   line — the single point all write curves collapse onto as threads are
//!   added. Kept as the paper-faithful default for A/B runs.
//! * [`ClockPolicy::Sloppy`] — GV5/GV7-style: a committing writer *reads*
//!   the shared word and stamps its write set at `max(now, rv, pre) + 2`
//!   without an RMW. The shared word only moves when a reader's snapshot
//!   extension witnesses a version above it (a CAS-max "bump"), so
//!   uncontended commits do zero cross-core stores on the clock line.
//!   Timestamps are *not* unique — two concurrent writers may stamp equal
//!   versions — which is safe for disjoint write sets (see the opacity
//!   argument below) but rules out the Gv2 fast path.
//! * [`ClockPolicy::Sharded`] — per-thread, cache-line-padded clock cells.
//!   A committing writer scans all cells (after locking its write set),
//!   takes the max plus 2, and publishes its new timestamp to its own cell
//!   *before* stamping any variable. Readers amortize the scan through a
//!   thread-local cached bound that is only refreshed (by a full max-merge)
//!   on a validation miss, and advanced for free to the thread's own last
//!   write version after each commit.
//!
//! ## Why sloppy/sharded timestamps preserve opacity
//!
//! TL2's safety needs exactly one clock property: if a transaction's read
//! version satisfies `rv >= wv` for some writer, then that writer had
//! already locked its entire write set before the reader began — so the
//! reader observes each written variable either locked (and retries) or
//! fully stamped, never a torn mix. Under `Gv2` this follows from the RMW
//! total order. Under `Sloppy`, `rv >= wv` means the shared word advanced
//! past the writer's post-lock read before the reader's begin, which
//! orders the writer's locks before the reader. Under `Sharded`, the
//! writer publishes `wv` to its cell (a `SeqCst` max) after locking and
//! before stamping, so any merge that returns `rv >= wv` read that cell
//! after the publish — again ordering the locks first. Per-variable
//! monotonicity (no ABA on version words) is kept by folding each locked
//! variable's pre-lock version into the stamp: `wv >= pre + 2`.
//!
//! The thread-local cached bound is only ever *stale-low*, which is always
//! safe: a too-small `rv` merely triggers extra snapshot extensions.
//! Advancing the cache to the thread's own `wv` after a sharded commit is
//! sound because any writer whose `wv' <= wv` scanned this thread's cell
//! before the publish of `wv`, hence locked before this thread's next
//! transaction begins. (The same boost would be *unsound* under `Sloppy`:
//! two sloppy writers can share a `wv` with neither ordered before the
//! other's next begin.)
//!
//! Non-transactional stores ([`nontx_tick`]) use one policy-independent
//! stamp — max-merge over the shared word (and the shard cells once any
//! sharded runtime exists) plus the cell's pre-lock version, published to
//! the shared word with a CAS-max before write-back — so runtimes with
//! different policies sharing `TVar`s stay mutually safe.

use ad_support::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::cell::Cell;

/// Which commit-clock algorithm a runtime's transactions use. See the
/// module docs for the three algorithms and their trade-offs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockPolicy {
    /// TL2's GV2: `fetch_add(2, SeqCst)` per writer commit. Unique
    /// timestamps, validation fast path, but a global RMW hotspot.
    #[default]
    Gv2,
    /// GV5/GV7-style sloppy stamps: read-only commits on the clock line;
    /// the shared word is bumped only on a reader's validation miss.
    Sloppy,
    /// Cache-line-padded per-thread clock cells, max-merged on demand and
    /// amortized through a thread-local cached read bound.
    Sharded,
}

impl ClockPolicy {
    /// Stable lowercase name (used by bench CLIs and JSON output).
    pub fn name(self) -> &'static str {
        match self {
            ClockPolicy::Gv2 => "gv2",
            ClockPolicy::Sloppy => "sloppy",
            ClockPolicy::Sharded => "sharded",
        }
    }

    /// Parse a policy name as accepted by `baseline --clock=<policy>`.
    pub fn parse(s: &str) -> Option<ClockPolicy> {
        match s {
            "gv2" => Some(ClockPolicy::Gv2),
            "sloppy" => Some(ClockPolicy::Sloppy),
            "sharded" => Some(ClockPolicy::Sharded),
            _ => None,
        }
    }
}

static GLOBAL_CLOCK: AtomicU64 = AtomicU64::new(0);

/// Number of sharded clock cells. A small power of two: enough that
/// committing threads rarely share a cell, few enough that the max-merge
/// scan stays a handful of cache lines.
const SHARD_COUNT: usize = 16;

/// One clock cell on its own cache-line pair (128-byte alignment covers
/// adjacent-line prefetching).
#[repr(align(128))]
struct ShardCell(AtomicU64);

#[allow(clippy::declare_interior_mutable_const)]
const SHARD_ZERO: ShardCell = ShardCell(AtomicU64::new(0));
static SHARDS: [ShardCell; SHARD_COUNT] = [SHARD_ZERO; SHARD_COUNT];

/// Round-robin shard assignment for committing threads.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

/// Set once any runtime is created with [`ClockPolicy::Sharded`]; makes
/// non-transactional stamps include the shard cells in their merge. Never
/// cleared — scanning cold cells is a few cache-hot loads.
static SHARDED_IN_USE: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// This thread's shard index (`usize::MAX` = not yet assigned).
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Sharded policy: cached lower bound on the merged clock, used as the
    /// read version without scanning. Only ever stale-low (safe); refreshed
    /// by [`refresh`] and advanced by [`note_commit`].
    static CACHED_RV: Cell<u64> = const { Cell::new(0) };
}

fn my_shard() -> usize {
    MY_SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
            s.set(idx);
        }
        idx
    })
}

/// Max-merge of the shared word and every shard cell. The `Acquire` loads
/// pair with the `SeqCst` publishes in [`tick`]/[`nontx_tick`]: a merge
/// that observes a writer's `wv` also observes everything the writer did
/// before publishing it (its write-set locks in particular).
fn read_merged() -> u64 {
    let mut m = GLOBAL_CLOCK.load(Ordering::Acquire);
    for cell in SHARDS.iter() {
        let v = cell.0.load(Ordering::Acquire);
        if v > m {
            m = v;
        }
    }
    m
}

/// Advance the shared word to at least `target` (CAS-max). Returns true if
/// this call moved it — the `clock_bumps` statistic.
fn bump_to(target: u64) -> bool {
    let mut cur = GLOBAL_CLOCK.load(Ordering::Relaxed);
    while cur < target {
        match GLOBAL_CLOCK.compare_exchange(cur, target, Ordering::SeqCst, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
    false
}

/// Record that a runtime using `policy` exists, so policy-independent paths
/// (non-transactional stamps) account for it.
pub(crate) fn note_policy_in_use(policy: ClockPolicy) {
    if policy == ClockPolicy::Sharded {
        SHARDED_IN_USE.store(true, Ordering::Release);
    }
}

/// Current shared-word value (always even). Under `Gv2`/`Sloppy` this is
/// the transaction read version; under `Sharded` it may lag the shard
/// cells, which is still a valid (stale-low) lower bound.
///
/// `Acquire` (not `SeqCst`) suffices, per TL2's own argument: correctness
/// only needs the result to be a *lower bound* on the clock at the moment
/// the transaction starts. `Acquire` synchronizes with the `SeqCst`
/// publishes in the commit tick, so a transaction that reads `rv = t` sees every
/// write-back of the commit that produced `t`. A stale (smaller) value is
/// always safe: the transaction merely extends its snapshot (or aborts)
/// more often.
#[inline]
pub fn now() -> u64 {
    GLOBAL_CLOCK.load(Ordering::Acquire)
}

/// Read version for a starting speculative transaction.
#[inline]
pub(crate) fn begin(policy: ClockPolicy) -> u64 {
    match policy {
        ClockPolicy::Gv2 | ClockPolicy::Sloppy => now(),
        // The cached bound is stale-low by construction; fall back to the
        // shared word during thread teardown.
        ClockPolicy::Sharded => CACHED_RV.try_with(Cell::get).unwrap_or_else(|_| now()),
    }
}

/// Acquire a write version for a committing transaction. Must be called
/// *after* the write set is locked; `rv` is the transaction's (possibly
/// extended) read version and `max_pre` the maximum pre-lock version among
/// the locked variables (keeps per-variable version words monotone under
/// the non-unique policies).
#[inline]
pub(crate) fn tick(policy: ClockPolicy, rv: u64, max_pre: u64) -> u64 {
    match policy {
        ClockPolicy::Gv2 => {
            let wv = GLOBAL_CLOCK.fetch_add(2, Ordering::SeqCst) + 2;
            debug_assert!(wv > max_pre);
            wv
        }
        ClockPolicy::Sloppy => {
            // The fence orders the write-set lock CASes before this load in
            // the SeqCst total order (insurance on weaker hardware; the
            // verify models run under SC where it is a no-op).
            ad_support::sync::atomic::fence(Ordering::SeqCst);
            let now = GLOBAL_CLOCK.load(Ordering::SeqCst);
            now.max(rv).max(max_pre) + 2
        }
        ClockPolicy::Sharded => {
            let wv = read_merged().max(rv).max(max_pre) + 2;
            // Publish before any variable is stamped: a reader whose merge
            // returns rv >= wv is thereby ordered after our write-set locks.
            SHARDS[my_shard()].0.fetch_max(wv, Ordering::SeqCst);
            wv
        }
    }
}

/// Compute a new read version for snapshot extension, guaranteed to be at
/// least `witness` (the version that exceeded the old `rv`). Returns
/// `(new_rv, bumped)` where `bumped` reports whether this call advanced
/// the shared clock word (the `Sloppy` policy's lazy clock progress).
#[inline]
pub(crate) fn refresh(policy: ClockPolicy, witness: u64) -> (u64, bool) {
    match policy {
        ClockPolicy::Gv2 => {
            // Gv2 stamps come from the shared word's RMW, and nontx stamps
            // publish there before write-back, so the word already covers
            // the witness.
            let rv = now();
            debug_assert!(rv >= witness);
            (rv, false)
        }
        ClockPolicy::Sloppy => {
            // Sloppy stamps live *above* the shared word until someone
            // witnesses them: push the word up so this and future readers
            // get rv >= witness.
            let bumped = bump_to(witness);
            let rv = GLOBAL_CLOCK.load(Ordering::SeqCst);
            debug_assert!(rv >= witness);
            (rv, bumped)
        }
        ClockPolicy::Sharded => {
            // Writers publish to their cell before stamping, so the merge
            // covers every version a reader can witness.
            let rv = read_merged();
            debug_assert!(rv >= witness);
            let _ = CACHED_RV.try_with(|c| c.set(rv));
            (rv, false)
        }
    }
}

/// Hook for a successfully committed writer: under `Sharded`, advance this
/// thread's cached read bound to its own `wv` (sound — see module docs;
/// the same boost is unsound under `Sloppy` and a no-op under `Gv2`).
#[inline]
pub(crate) fn note_commit(policy: ClockPolicy, wv: u64) {
    if policy == ClockPolicy::Sharded {
        let _ = CACHED_RV.try_with(|c| {
            if c.get() < wv {
                c.set(wv);
            }
        });
    }
}

/// Policy-independent stamp for a non-transactional store
/// (`TVar::store`/serial writes). Called with the cell's write lock held;
/// `pre` is its pre-lock version. Publishes the stamp to the shared word
/// *before* returning (hence before the caller's write-back), so readers
/// under every policy order correctly against it.
#[inline]
pub(crate) fn nontx_tick(pre: u64) -> u64 {
    let mut m = GLOBAL_CLOCK.load(Ordering::Acquire);
    if SHARDED_IN_USE.load(Ordering::Acquire) {
        m = m.max(read_merged());
    }
    let wv = m.max(pre) + 2;
    GLOBAL_CLOCK.fetch_max(wv, Ordering::SeqCst);
    wv
}

/// True if a version word is write-locked (odd).
#[inline]
pub fn is_locked(version: u64) -> bool {
    version & 1 == 1
}

/// Test/model hooks for the `verify::` clock models.
#[cfg(any(test, loom))]
pub(crate) mod model_hooks {
    use super::*;

    /// The shard index the calling thread's sharded ticks publish to.
    pub(crate) fn my_shard_index() -> usize {
        my_shard()
    }

    /// Max-merge over the shared word and all shard cells (what a correct
    /// sharded refresh computes).
    pub(crate) fn merged() -> u64 {
        read_merged()
    }

    /// **Deliberately broken** merge that skips shard `skip` — the seeded
    /// clock-skew bug for the regression model: a reader refreshing through
    /// this can miss a writer's published `wv` and keep a too-small `rv`,
    /// accepting a version above its snapshot without revalidation.
    pub(crate) fn merged_skipping(skip: usize) -> u64 {
        let mut m = GLOBAL_CLOCK.load(Ordering::Acquire);
        for (i, cell) in SHARDS.iter().enumerate() {
            if i == skip {
                continue;
            }
            let v = cell.0.load(Ordering::Acquire);
            if v > m {
                m = v;
            }
        }
        m
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_even() {
        let a = now();
        assert_eq!(a % 2, 0);
        let b = tick(ClockPolicy::Gv2, 0, 0);
        assert_eq!(b % 2, 0);
        assert!(b > a);
        assert!(now() >= b);
    }

    #[test]
    fn locked_bit_detection() {
        assert!(!is_locked(0));
        assert!(!is_locked(42));
        assert!(is_locked(1));
        assert!(is_locked(43));
    }

    #[test]
    fn concurrent_gv2_ticks_are_unique() {
        // Uniqueness is a Gv2-only property (sloppy/sharded stamps may
        // collide by design); it is what the validation fast path rests on.
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(std::thread::spawn(|| {
                (0..1000)
                    .map(|_| tick(ClockPolicy::Gv2, 0, 0))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let len = all.len();
        all.dedup();
        assert_eq!(all.len(), len, "two ticks returned the same version");
    }

    #[test]
    fn policy_names_roundtrip() {
        for p in [ClockPolicy::Gv2, ClockPolicy::Sloppy, ClockPolicy::Sharded] {
            assert_eq!(ClockPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(ClockPolicy::parse("gv7"), None);
        assert_eq!(ClockPolicy::Gv2, ClockPolicy::default());
    }

    #[test]
    fn sloppy_tick_does_not_move_the_shared_word() {
        let before = now();
        let wv = tick(ClockPolicy::Sloppy, before, 0);
        assert!(wv >= before + 2);
        assert_eq!(wv % 2, 0);
        assert_eq!(now(), before, "sloppy tick must not RMW the clock");
    }

    #[test]
    fn sloppy_tick_exceeds_rv_and_pre_lock_versions() {
        let base = now();
        // A stale word plus a fresher pre-lock version: the stamp must
        // clear both, or version words would go non-monotone (ABA).
        let wv = tick(ClockPolicy::Sloppy, base, base + 40);
        assert!(wv >= base + 42);
        let wv2 = tick(ClockPolicy::Sloppy, base + 100, base);
        assert!(wv2 >= base + 102);
    }

    #[test]
    fn sloppy_refresh_bumps_shared_word_to_witness() {
        let witness = now() + 1000;
        let (rv, bumped) = refresh(ClockPolicy::Sloppy, witness);
        assert!(rv >= witness);
        assert!(bumped, "a witness above the word must advance it");
        assert!(now() >= witness);
        // Re-witnessing the same version is not another bump.
        let (_, bumped_again) = refresh(ClockPolicy::Sloppy, witness);
        assert!(!bumped_again);
    }

    #[test]
    fn sharded_tick_publishes_to_own_cell() {
        let wv = tick(ClockPolicy::Sharded, 0, 0);
        assert_eq!(wv % 2, 0);
        let merged = model_hooks::merged();
        assert!(merged >= wv, "tick must publish before returning");
        // A refresh (full merge) must therefore cover the new stamp.
        let (rv, _) = refresh(ClockPolicy::Sharded, wv);
        assert!(rv >= wv);
        // And the commit hook advances this thread's cached begin bound.
        note_commit(ClockPolicy::Sharded, wv);
        assert!(begin(ClockPolicy::Sharded) >= wv);
    }

    #[test]
    fn sharded_ticks_are_monotone_within_a_thread() {
        let a = tick(ClockPolicy::Sharded, 0, 0);
        let b = tick(ClockPolicy::Sharded, 0, 0);
        assert!(b > a, "second scan must see the first publish");
    }

    #[test]
    fn skewed_merge_misses_own_shard() {
        // The seeded clock-skew bug: dropping one shard from the merge can
        // lose that shard's freshest stamp. This is the defect the loom
        // regression model must catch end-to-end.
        let wv = tick(ClockPolicy::Sharded, model_hooks::merged(), 0);
        let me = model_hooks::my_shard_index();
        assert!(model_hooks::merged() >= wv);
        assert!(
            model_hooks::merged_skipping(me) < wv,
            "skipping the publishing shard must lose its stamp"
        );
    }

    #[test]
    fn nontx_tick_clears_shared_word_and_pre_version() {
        let base = now();
        let wv = nontx_tick(base + 10);
        assert!(wv >= base + 12);
        assert_eq!(wv % 2, 0);
        assert!(now() >= wv, "nontx stamp must publish to the shared word");
        // With sharded cells in play the merge is included too.
        SHARDED_IN_USE.store(true, Ordering::Release);
        let swv = tick(ClockPolicy::Sharded, 0, 0);
        let nwv = nontx_tick(0);
        assert!(nwv > swv, "nontx stamp must clear published shard stamps");
    }

    #[test]
    fn begin_is_stale_low_only() {
        // The cached sharded bound never exceeds what a full merge returns.
        let rv = begin(ClockPolicy::Sharded);
        assert!(rv <= model_hooks::merged());
        assert!(begin(ClockPolicy::Gv2) == now());
    }
}
